#!/usr/bin/env python3
"""Quickstart: solve an oriented list defective coloring with Two-Sweep.

Builds a random oriented graph, generates a feasible OLDC instance (lists
of p^2 colors with weight above p * beta_v, the headline parameterization
of Theorem 1.1), runs Algorithm 1, validates the output, and prints the
resource accounting the paper's theorems bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import render_table, theorem_11_rounds
from repro.coloring import check_oldc, random_oldc_instance
from repro.core import two_sweep
from repro.graphs import gnp_graph, orient_by_id, sequential_ids
from repro.sim import CostLedger


def main() -> None:
    # 1. A communication graph with an input edge orientation.
    network = gnp_graph(n=80, p=0.08, seed=7)
    graph = orient_by_id(network)
    print(
        f"graph: n={len(network)} m={network.edge_count()} "
        f"Delta={network.raw_max_degree()} beta={graph.max_outdegree()}"
    )

    # 2. A feasible instance: every node gets p^2 = 9 colors whose defect
    #    mass clears Eq. (2) for p = 3.
    p = 3
    instance = random_oldc_instance(graph, p=p, seed=42)
    print(
        f"instance: lists of {instance.max_list_size()} colors from a "
        f"space of {instance.color_space_size}"
    )

    # 3. The initial proper coloring (here: the node identifiers).
    initial_colors = sequential_ids(network)
    q = len(network)

    # 4. Run Algorithm 1 and validate.
    ledger = CostLedger()
    result = two_sweep(instance, initial_colors, q, p, ledger=ledger)
    violations = check_oldc(instance, result.colors)
    assert violations == [], violations

    # 5. Report.
    print(render_table(
        ["quantity", "measured", "paper bound"],
        [
            ["rounds", ledger.rounds, f"O(q) = O({q})"],
            ["theorem 1.1 bound", "",
             f"{theorem_11_rounds(q, p, 0.0):.0f}"],
            ["max message bits", ledger.max_message_bits,
             "p colors + header"],
            ["colors used", result.color_count(),
             instance.color_space_size],
        ],
        title="\nTwo-Sweep (Algorithm 1) on a random oriented graph",
    ))
    sample = list(result.colors.items())[:5]
    print(f"\nsample output colors: {sample}")
    print("oriented list defective coloring verified: OK")


if __name__ == "__main__":
    main()
