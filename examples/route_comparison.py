#!/usr/bin/env python3
"""All four (Delta+1)-coloring routes side by side, with activity traces.

Runs the Theorem 1.3 pipeline, the Theorem 1.5 bounded-theta recursion,
the classic Linial + color-reduction baseline, and the randomized
O(log n) trial coloring on the same graph, validates each, and prints a
comparison table plus a per-round message-activity timeline for the two
deterministic pipelines.

Run:  python examples/route_comparison.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.coloring import check_proper_coloring
from repro.core import (
    delta_plus_one_coloring,
    linial_reduction_baseline,
    theta_delta_plus_one_coloring,
)
from repro.graphs import (
    neighborhood_independence,
    random_bounded_degree_graph,
    random_ids,
)
from repro.sim import CostLedger
from repro.substrates import randomized_delta_plus_one


def main() -> None:
    network = random_bounded_degree_graph(n=48, max_degree=6, seed=11)
    ids = random_ids(network, seed=11, bits=20)
    theta = neighborhood_independence(network, exact=len(network) <= 80)
    delta = network.raw_max_degree()
    print(f"graph: n={len(network)} Delta={delta} theta={theta}\n")

    rows = []
    for name, runner in (
        ("Theorem 1.3 (CONGEST list coloring)",
         lambda led: delta_plus_one_coloring(network, ids=ids, ledger=led)),
        ("Theorem 1.5 (bounded-theta recursion)",
         lambda led: theta_delta_plus_one_coloring(
             network, theta, ids=ids, ledger=led)),
        ("Linial + color reduction (classic)",
         lambda led: linial_reduction_baseline(
             network, ids=ids, ledger=led)),
        ("randomized trial coloring [Lub86]",
         lambda led: randomized_delta_plus_one(
             network, seed=11, ledger=led)),
    ):
        ledger = CostLedger()
        result = runner(ledger)
        assert check_proper_coloring(network, result.colors) == []
        rows.append([
            name, ledger.rounds, ledger.messages,
            ledger.max_message_bits, result.color_count(),
        ])

    print(render_table(
        ["route", "rounds", "messages", "max msg bits", "colors"],
        rows,
        title="(Delta+1)-coloring: four routes on one graph",
    ))
    print(
        "\nall four outputs verified proper and within the Delta+1 "
        "palette."
    )


if __name__ == "__main__":
    main()
