#!/usr/bin/env python3
"""(deg+1)-list coloring in CONGEST -- the Theorem 1.3 pipeline.

Runs the full stack (Linial bootstrap -> Lemma A.1 slack reduction ->
Theorem 1.2 CONGEST OLDC solver -> proper list coloring), with the
simulator *enforcing* the CONGEST message budget, and compares the round
count against the classic O(Delta^2 + log* n) baseline.

Run:  python examples/congest_delta_plus_one.py
"""

from __future__ import annotations

import math
import random

from repro.analysis import render_table, substituted_13_rounds
from repro.coloring import check_proper_coloring
from repro.core import deg_plus_one_list_coloring, linial_reduction_baseline
from repro.graphs import random_bounded_degree_graph
from repro.sim import CongestModel, CostLedger


def main() -> None:
    network = random_bounded_degree_graph(n=30, max_degree=4, seed=5)
    delta = network.raw_max_degree()
    print(f"graph: n={len(network)} Delta={delta}")

    # Per-node lists: deg(v) + 1 colors from a space of Delta + 3.
    rng = random.Random(9)
    space = delta + 3
    lists = {
        node: tuple(
            sorted(rng.sample(range(space), network.degree(node) + 1))
        )
        for node in network
    }

    # CONGEST budget: O(log n + log C) bits per edge per round.
    bits_c = max(1, math.ceil(math.log2(space)))
    bandwidth = CongestModel(n=len(network), factor=8, extra_bits=bits_c)

    ledger = CostLedger()
    result = deg_plus_one_list_coloring(
        network, lists, ledger=ledger, bandwidth=bandwidth,
        color_space_size=space,
    )
    assert check_proper_coloring(network, result.colors) == []
    for node in network:
        assert result.colors[node] in lists[node]

    baseline_ledger = CostLedger()
    baseline = linial_reduction_baseline(network, ledger=baseline_ledger)

    print(render_table(
        ["route", "rounds", "max message bits", "colors"],
        [
            ["Theorem 1.3 (substituted framework)", ledger.rounds,
             ledger.max_message_bits, result.color_count()],
            ["Linial + color reduction baseline",
             baseline_ledger.rounds,
             baseline_ledger.max_message_bits, baseline.color_count()],
        ],
        title="\n(deg+1)-list coloring under an enforced CONGEST budget",
    ))
    print(
        f"\nsubstituted framework round model: "
        f"~{substituted_13_rounds(delta, len(network)):.0f} "
        f"(paper's black-box framework would shave a ~sqrt(Delta) factor;"
        f" see DESIGN.md substitution 2)"
    )
    print("list coloring verified proper and within lists: OK")


if __name__ == "__main__":
    main()
