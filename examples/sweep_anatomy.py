#!/usr/bin/env python3
"""Anatomy of the Two-Sweep algorithm -- the paper's Figure 1 as a trace.

Figure 1 illustrates a node v with its earlier out-neighbors N_<(v)
(whose sub-lists S_u are known when v picks S_v in Phase I) and its later
out-neighbors N_>(v) (whose final colors are known when v commits in
Phase II).  This script runs Algorithm 1 on a small instance with the
trace hook enabled and prints, for one node, exactly those quantities.

Run:  python examples/sweep_anatomy.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.coloring import check_oldc, random_oldc_instance
from repro.core import two_sweep
from repro.graphs import gnp_graph, orient_by_id, sequential_ids


def main() -> None:
    network = gnp_graph(n=12, p=0.4, seed=21)
    graph = orient_by_id(network)
    ids = sequential_ids(network)
    p = 2
    instance = random_oldc_instance(graph, p=p, seed=2)

    trace: list = []
    result = two_sweep(instance, ids, len(network), p, trace=trace)
    assert check_oldc(instance, result.colors) == []

    # Pick the node with the most out-neighbors: the richest picture.
    focus = max(graph.nodes, key=graph.outdegree)
    earlier = [u for u in graph.out_neighbors(focus) if ids[u] < ids[focus]]
    later = [u for u in graph.out_neighbors(focus) if ids[u] > ids[focus]]
    print(f"focus node v = {focus} (initial color {ids[focus]})")
    print(f"  N_<(v) (earlier out-neighbors, blue in Fig. 1): {earlier}")
    print(f"  N_>(v) (later out-neighbors, green in Fig. 1):  {later}\n")

    events = [event for event in trace if event["node"] == focus]
    phase1 = next(event for event in events if event["phase"] == 1)
    phase2 = next(event for event in events if event["phase"] == 2)

    print(render_table(
        ["color x", "d_v(x)", "k_v(x)", "d_v(x) - k_v(x)", "in S_v"],
        [
            [color, instance.defect(focus, color),
             phase1["k"][color],
             instance.defect(focus, color) - phase1["k"][color],
             color in phase1["sublist"]]
            for color in instance.lists[focus]
        ],
        title=f"Phase I (round {phase1['round']}): v ranks its list by "
              f"d_v(x) - k_v(x) and keeps the top p = 2",
    ))

    print()
    print(render_table(
        ["color x", "k_v(x)", "r_v(x)", "k+r", "d_v(x)", "feasible"],
        [
            [color, phase2["k"][color], phase2["r"][color],
             phase2["k"][color] + phase2["r"][color],
             instance.defect(focus, color),
             phase2["k"][color] + phase2["r"][color]
             <= instance.defect(focus, color)]
            for color in phase1["sublist"]
        ],
        title=f"Phase II (round {phase2['round']}): v commits to the "
              f"first feasible color of S_v (Eq. 5)",
    ))
    print(f"\nfinal color of v: {phase2['color']}")
    print(f"whole run: {result.ledger.rounds} rounds for q = {len(network)}"
          f" initial colors (2q + 1 sweep schedule)")


if __name__ == "__main__":
    main()
