#!/usr/bin/env python3
"""The production workflow: generate, persist, plan, solve, audit, trace.

Demonstrates the library surface around the algorithms themselves --
JSON instance files, the exact-cost planner, tightness audits, and the
round observer's activity timeline.

Run:  python examples/instance_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import render_table
from repro.coloring import (
    audit_oriented,
    check_oldc,
    load_instance,
    random_oldc_instance,
    save_instance,
    save_result,
)
from repro.core import plan_oldc, solve_oldc_auto
from repro.graphs import gnp_graph, orient_by_id, random_ids
from repro.sim import CostLedger


def main() -> None:
    # 1. Generate and persist an instance.
    network = gnp_graph(n=50, p=0.12, seed=17)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=17, epsilon=0.5)
    workdir = Path(tempfile.mkdtemp(prefix="repro-"))
    instance_path = save_instance(instance, workdir / "instance.json")
    print(f"instance saved to {instance_path}")

    # 2. Reload it (as a collaborator would) and plan.
    loaded = load_instance(instance_path)
    ids = random_ids(network, seed=17, bits=24)
    q = 2 ** 24
    plans = plan_oldc(loaded, q)
    print("\nexecution plans, cheapest first:")
    for plan in plans[:4]:
        print(f"  {plan.describe()}")

    # 3. Solve with the cheapest plan and audit the output.
    ledger = CostLedger()
    result = solve_oldc_auto(loaded, ids, q, ledger=ledger)
    assert check_oldc(loaded, result.colors) == []
    save_result(result, workdir / "solution.json")
    audit = audit_oriented(loaded, result.colors)
    print(f"\nsolved: {result!r}")
    print(f"audit:  {audit.summary()}")

    # 4. Resource table.
    print()
    print(render_table(
        ["quantity", "value"],
        [
            ["chosen plan", f"p={result.stats['p']}, "
                            f"eps={result.stats['epsilon']}"],
            ["estimated rounds", result.stats["estimated_rounds"]],
            ["measured rounds", ledger.rounds],
            ["max message bits", ledger.max_message_bits],
            ["defect budget tight at", f"{audit.tight_nodes} nodes"],
        ],
        title="planner estimate vs measured run",
    ))
    print(f"\nartifacts in {workdir}")


if __name__ == "__main__":
    main()
