#!/usr/bin/env python3
"""List d-defective 3-coloring around the paper's threshold.

Section 1.1: the Two-Sweep algorithm yields a list d-defective 3-coloring
whenever d > (2 Delta - 3) / 3 -- generalizing the d >= (2 Delta - 4) / 3
bound of [BHL+19] for non-list 3-coloring.  Defects here bound *all*
same-colored neighbors, so the graph is fed to Two-Sweep through the
bidirected view (every neighbor is an out-neighbor, beta_v = deg(v)).

The script sweeps d through the threshold on a Delta-regular graph: above
it Eq. (2) holds with p = 2 and the sweep must succeed; below it the
precondition fails and the instance is rejected.

Run:  python examples/defective_3coloring.py
"""

from __future__ import annotations

import math

from repro.analysis import defective_3coloring_threshold, render_table
from repro.coloring import (
    OLDCInstance,
    check_oldc,
    uniform_lists,
)
from repro.graphs import (
    orient_all_out,
    random_regular_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import two_sweep


def attempt(network, defect: int) -> list:
    graph = orient_all_out(network)
    lists, defects = uniform_lists(network.nodes, (0, 1, 2), defect)
    instance = OLDCInstance(graph, lists, defects, 3)
    ids = sequential_ids(network)
    threshold = defective_3coloring_threshold(network.raw_max_degree())
    ledger = CostLedger()
    try:
        result = two_sweep(instance, ids, len(network), p=2, ledger=ledger)
    except InfeasibleInstanceError:
        return [defect, f"{threshold:.2f}", defect > threshold,
                "rejected (Eq. 2)", "-", "-"]
    violations = check_oldc(instance, result.colors)
    worst = max(
        sum(
            1 for u in network.neighbors(v)
            if result.colors[u] == result.colors[v]
        )
        for v in network
    )
    status = "solved" if not violations else "INVALID"
    return [defect, f"{threshold:.2f}", defect > threshold, status,
            worst, ledger.rounds]


def main() -> None:
    delta = 9
    network = random_regular_graph(n=30, degree=delta, seed=13)
    print(f"graph: {delta}-regular, n={len(network)}")
    threshold = defective_3coloring_threshold(delta)
    print(f"paper threshold: d > (2*{delta} - 3)/3 = {threshold:.2f}\n")
    low = max(0, int(math.floor(threshold)) - 2)
    rows = [attempt(network, d) for d in range(low, int(threshold) + 4)]
    print(render_table(
        ["defect d", "threshold", "d > thr", "outcome",
         "worst observed defect", "rounds"],
        rows,
        title="List d-defective 3-coloring via Two-Sweep (p = 2)",
    ))
    print(
        "\nabove the threshold every run is solved with observed defect "
        "<= d;\nbelow it the Eq. (2) precondition correctly rejects the "
        "instance."
    )


if __name__ == "__main__":
    main()
