#!/usr/bin/env python3
"""(2 Delta - 1)-edge coloring via Theorem 1.5 on line graphs.

The paper's flagship application of the bounded-neighborhood-independence
recursion: the line graph of a graph has theta <= 2 (and the line graph
of a rank-r hypergraph has theta <= r), so Theorem 1.5's
(Delta + 1)-coloring of the line graph is a (2 Delta - 1)-edge coloring
of the base graph.

Run:  python examples/edge_coloring.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.coloring import check_proper_coloring
from repro.core import theta_delta_plus_one_coloring
from repro.graphs import (
    edge_coloring_from_line_coloring,
    gnp_graph,
    is_proper_edge_coloring,
    line_graph_of_hypergraph,
    line_graph_of_network,
    neighborhood_independence,
    random_uniform_hypergraph,
)
from repro.sim import CostLedger


def color_graph_edges() -> list:
    base = gnp_graph(n=18, p=0.22, seed=3)
    line, edge_of = line_graph_of_network(base)
    theta = neighborhood_independence(line)
    ledger = CostLedger()
    result = theta_delta_plus_one_coloring(line, theta=2, ledger=ledger)
    edge_colors = edge_coloring_from_line_coloring(result.colors, edge_of)
    assert is_proper_edge_coloring(base, edge_colors)
    return [
        "graph edges",
        base.raw_max_degree(),
        theta,
        len(line),
        result.color_count(),
        2 * base.raw_max_degree() - 1,
        ledger.rounds,
    ]


def color_hypergraph_edges(rank: int) -> list:
    hypergraph = random_uniform_hypergraph(
        n_vertices=24, n_edges=30, rank=rank, seed=rank * 11
    )
    line, _ = line_graph_of_hypergraph(hypergraph)
    theta = neighborhood_independence(line)
    ledger = CostLedger()
    result = theta_delta_plus_one_coloring(
        line, theta=max(1, theta), ledger=ledger
    )
    assert check_proper_coloring(line, result.colors) == []
    return [
        f"rank-{rank} hyperedges",
        line.raw_max_degree(),
        theta,
        len(line),
        result.color_count(),
        line.raw_max_degree() + 1,
        ledger.rounds,
    ]


def main() -> None:
    rows = [color_graph_edges()]
    for rank in (2, 3, 4):
        rows.append(color_hypergraph_edges(rank))
    print(render_table(
        ["workload", "Delta", "theta", "line nodes", "colors used",
         "palette bound", "rounds"],
        rows,
        title="Edge coloring through Theorem 1.5 "
              "(line graphs have theta <= rank)",
    ))
    print("\nall edge colorings verified proper: OK")


if __name__ == "__main__":
    main()
