#!/usr/bin/env python3
"""Validate Prometheus text-exposition output (format 0.0.4).

A small dependency-free checker for the ``GET /metrics`` endpoint of the
coloring daemon, used by CI's serve-smoke job and available standalone::

    python scripts/validate_prometheus.py metrics.txt
    curl -s localhost:8421/metrics | python scripts/validate_prometheus.py -

Checks the structural rules a scraper relies on:

* every sample line parses as ``name{labels} value`` with a legal metric
  name and quoted, escaped label values;
* every ``# TYPE`` names a known kind and precedes its samples;
* samples appear under a matching ``# TYPE`` family (histogram samples
  under their ``_bucket``/``_sum``/``_count`` suffixes);
* histogram ``le`` buckets are cumulative (non-decreasing counts), end
  in ``+Inf``, and the ``+Inf`` bucket equals ``_count``;
* sample values parse as floats (``NaN``/``+Inf``/``-Inf`` included);
* no metric family or labelset is emitted twice.

Exits 0 when the text passes, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, List, Optional, Tuple

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
KINDS = ("counter", "gauge", "histogram", "summary", "untyped")

_SAMPLE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*\Z"
)
_LABEL = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)='
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|\Z)'
)


def _parse_value(raw: str) -> Optional[float]:
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        return None


def _parse_labels(raw: str) -> Optional[Dict[str, str]]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL.match(raw, position)
        if match is None:
            return None
        labels[match.group("name")] = match.group("value")
        position = match.end()
    return labels


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    """The declared family a sample belongs to, honoring suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return None


def validate_text(text: str) -> List[str]:
    """All structural violations in an exposition body (empty = valid)."""
    errors: List[str] = []
    types: Dict[str, str] = {}
    helped: set = set()
    seen_series: set = set()
    # family -> labelset-without-le -> [(le, value)]
    buckets: Dict[str, Dict[Tuple, List[Tuple[float, float]]]] = {}
    counts: Dict[str, Dict[Tuple, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment
            _, directive, name = parts[:3]
            if not METRIC_NAME.match(name):
                errors.append(f"line {lineno}: bad metric name {name!r}")
                continue
            if directive == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in KINDS:
                    errors.append(
                        f"line {lineno}: unknown TYPE {kind!r} for {name}"
                    )
                if name in types:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                types[name] = kind
            else:
                if name in helped:
                    errors.append(
                        f"line {lineno}: duplicate HELP for {name}"
                    )
                helped.add(name)
            continue

        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: bad value {match.group('value')!r}"
            )
            continue
        labels = _parse_labels(match.group("labels") or "")
        if labels is None:
            errors.append(
                f"line {lineno}: unparsable labels in {line!r}"
            )
            continue
        family = _family_of(name, types)
        if family is None:
            errors.append(
                f"line {lineno}: sample {name} has no preceding TYPE"
            )
            continue
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            errors.append(
                f"line {lineno}: duplicate series {name}{labels}"
            )
        seen_series.add(series_key)

        if types.get(family) == "histogram":
            base_labels = tuple(sorted(
                item for item in labels.items() if item[0] != "le"
            ))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: _bucket without le label"
                    )
                    continue
                edge = _parse_value(labels["le"])
                if edge is None:
                    errors.append(
                        f"line {lineno}: bad le value {labels['le']!r}"
                    )
                    continue
                buckets.setdefault(family, {}).setdefault(
                    base_labels, []
                ).append((edge, value))
            elif name.endswith("_count"):
                counts.setdefault(family, {})[base_labels] = value

    for family, by_labels in buckets.items():
        for base_labels, series in by_labels.items():
            ordered = sorted(series, key=lambda pair: pair[0])
            label_text = dict(base_labels) or ""
            if not ordered or not math.isinf(ordered[-1][0]):
                errors.append(
                    f"{family}{label_text}: missing +Inf bucket"
                )
                continue
            cumulative = [count for _, count in ordered]
            if any(b < a for a, b in zip(cumulative, cumulative[1:])):
                errors.append(
                    f"{family}{label_text}: bucket counts not cumulative"
                )
            total = counts.get(family, {}).get(base_labels)
            if total is not None and ordered[-1][1] != total:
                errors.append(
                    f"{family}{label_text}: +Inf bucket "
                    f"{ordered[-1][1]} != _count {total}"
                )
    return errors


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: validate_prometheus.py FILE|-", file=sys.stderr)
        return 2
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0], encoding="utf-8") as handle:
            text = handle.read()
    errors = validate_text(text)
    for error in errors:
        print(error)
    if errors:
        print(f"{len(errors)} violation(s)")
        return 1
    families = sum(
        1 for line in text.splitlines() if line.startswith("# TYPE")
    )
    samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"ok: {families} metric families, {samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
