#!/usr/bin/env python3
"""Warn-only benchmark drift gate for CI.

Compares headline metrics between a committed full-scale benchmark
report (``BENCH_*.json``) and the smoke-sized rerun CI just produced.
Shared runners are far too noisy for hard throughput gates, so a
regression never fails the build: a metric landing below its floor
prints a GitHub Actions ``::warning`` annotation and the process still
exits 0.  The value of the gate is the annotation trail -- a real
regression shows up as the same warning on every push, noise does not.

Usage::

    python scripts/check_bench_drift.py BENCH_engine.json \\
        BENCH_engine_smoke.json \\
        --metric headline.speedup:0.7 \\
        --metric "workloads[workload=linial_algebraic].vectorized_vs_fast"

Each ``--metric`` is a dotted path resolved in *both* reports, with an
optional ``:FACTOR`` floor (default 0.9 -- warn on a >10% slowdown).
A path segment may select a row from a list of objects with
``key[field=value]``.  Paths missing from either report are reported
and skipped rather than failing: smoke reports legitimately trail the
committed schema while a benchmark is being extended.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any

#: Default floor: warn when the smoke metric drops more than 10% below
#: the committed one.
DEFAULT_FACTOR = 0.9

_ROW_SELECTOR = re.compile(r"(\w+)\[(\w+)=([^\]]+)\]\Z")


def resolve(report: Any, path: str) -> Any:
    """Walk ``path`` into ``report``; raises KeyError when absent.

    Segments are dict keys, except ``key[field=value]`` which indexes
    into a list of objects by matching ``field`` (string-compared, so
    numeric literals work unquoted).
    """
    node = report
    for segment in path.split("."):
        selector = _ROW_SELECTOR.match(segment)
        if selector:
            key, field, value = selector.groups()
            rows = node[key]
            for row in rows:
                if str(row.get(field)) == value:
                    node = row
                    break
            else:
                raise KeyError(f"{key}[{field}={value}]")
        else:
            node = node[segment]
    return node


def check_metric(committed: Any, smoke: Any, spec: str,
                 name: str) -> bool:
    """Compare one metric spec; returns True when a warning fired."""
    path, _, raw_factor = spec.partition(":")
    factor = float(raw_factor) if raw_factor else DEFAULT_FACTOR
    try:
        want = resolve(committed, path)
    except (KeyError, IndexError, TypeError):
        print(f"{path}: missing from committed report, skipped")
        return False
    try:
        got = resolve(smoke, path)
    except (KeyError, IndexError, TypeError):
        print(f"{path}: missing from smoke report, skipped")
        return False
    if got is None or want is None:
        print(f"{path}: unmeasured (None), skipped")
        return False
    if got < factor * want:
        print(
            f"::warning title={name} drift::{path}: smoke {got} vs "
            f"committed {want} (floor {factor}x)"
        )
        return True
    print(f"{path}: smoke {got} vs committed {want} "
          f"(floor {factor}x): ok")
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Warn-only committed-vs-smoke benchmark comparison",
    )
    parser.add_argument("committed", help="committed full-scale report")
    parser.add_argument("smoke", help="freshly produced smoke report")
    parser.add_argument(
        "--metric", action="append", required=True,
        metavar="PATH[:FACTOR]",
        help="dotted metric path, optional warn floor "
             f"(default {DEFAULT_FACTOR} = warn on >10%% slowdown); "
             "repeatable",
    )
    parser.add_argument(
        "--name", default=None,
        help="benchmark name for warning titles "
             "(default: committed filename)",
    )
    args = parser.parse_args(argv)
    with open(args.committed, encoding="utf-8") as handle:
        committed = json.load(handle)
    with open(args.smoke, encoding="utf-8") as handle:
        smoke = json.load(handle)
    name = args.name or args.committed
    warned = sum(
        check_metric(committed, smoke, spec, name)
        for spec in args.metric
    )
    if warned:
        print(f"{warned} drift warning(s) -- warn-only, exiting 0")
    else:
        print("no drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
