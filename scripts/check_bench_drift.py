#!/usr/bin/env python3
"""Hard-fail benchmark drift gate for CI.

Compares headline metrics between a committed full-scale benchmark
report (``BENCH_*.json``) and the smoke-sized rerun CI just produced.
A metric landing below its floor prints a GitHub Actions ``::error``
annotation and the process exits 1, failing the build.

Two escape hatches keep shared-runner noise manageable:

* ``--warn-only`` restores the historical behaviour -- annotate with
  ``::warning`` and exit 0 regardless -- for branches where the gate is
  informational;
* ``--allowlist FILE`` names metric paths (one per line, ``#`` comments)
  whose regressions only warn.  Absolute throughputs on shared runners
  (``headline.nodes_per_s``) belong here; dimensionless ratios measured
  within one run (``headline.speedup``) do not, because both sides see
  the same machine.

Usage::

    python scripts/check_bench_drift.py BENCH_engine.json \\
        BENCH_engine_smoke.json \\
        --metric headline.speedup:0.7 \\
        --metric "workloads[workload=linial_algebraic].vectorized_vs_fast" \\
        --allowlist scripts/bench_drift_allowlist.txt

Each ``--metric`` is a dotted path resolved in *both* reports, with an
optional ``:FACTOR`` floor (default 0.9 -- fail on a >10% slowdown).
A path segment may select a row from a list of objects with
``key[field=value]``.  Paths missing from either report are reported
and skipped rather than failing: smoke reports legitimately trail the
committed schema while a benchmark is being extended.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, FrozenSet

#: Default floor: fail when the smoke metric drops more than 10% below
#: the committed one.
DEFAULT_FACTOR = 0.9

_ROW_SELECTOR = re.compile(r"(\w+)\[(\w+)=([^\]]+)\]\Z")


def resolve(report: Any, path: str) -> Any:
    """Walk ``path`` into ``report``; raises KeyError when absent.

    Segments are dict keys, except ``key[field=value]`` which indexes
    into a list of objects by matching ``field`` (string-compared, so
    numeric literals work unquoted).
    """
    node = report
    for segment in path.split("."):
        selector = _ROW_SELECTOR.match(segment)
        if selector:
            key, field, value = selector.groups()
            rows = node[key]
            for row in rows:
                if str(row.get(field)) == value:
                    node = row
                    break
            else:
                raise KeyError(f"{key}[{field}={value}]")
        else:
            node = node[segment]
    return node


def load_allowlist(path: str) -> FrozenSet[str]:
    """Metric paths that only warn: one per line, ``#`` starts a comment."""
    entries = set()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            entry = line.split("#", 1)[0].strip()
            if entry:
                entries.add(entry)
    return frozenset(entries)


def check_metric(committed: Any, smoke: Any, spec: str, name: str,
                 warn_only: bool = False) -> bool:
    """Compare one metric spec; returns True on a blocking regression.

    ``warn_only`` (from ``--warn-only`` or an allowlist hit) downgrades
    the annotation to ``::warning`` and makes the return value False.
    """
    path, _, raw_factor = spec.partition(":")
    factor = float(raw_factor) if raw_factor else DEFAULT_FACTOR
    try:
        want = resolve(committed, path)
    except (KeyError, IndexError, TypeError):
        print(f"{path}: missing from committed report, skipped")
        return False
    try:
        got = resolve(smoke, path)
    except (KeyError, IndexError, TypeError):
        print(f"{path}: missing from smoke report, skipped")
        return False
    if got is None or want is None:
        print(f"{path}: unmeasured (None), skipped")
        return False
    if got < factor * want:
        level = "warning" if warn_only else "error"
        print(
            f"::{level} title={name} drift::{path}: smoke {got} vs "
            f"committed {want} (floor {factor}x)"
        )
        return not warn_only
    print(f"{path}: smoke {got} vs committed {want} "
          f"(floor {factor}x): ok")
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Committed-vs-smoke benchmark regression gate",
    )
    parser.add_argument("committed", help="committed full-scale report")
    parser.add_argument("smoke", help="freshly produced smoke report")
    parser.add_argument(
        "--metric", action="append", required=True,
        metavar="PATH[:FACTOR]",
        help="dotted metric path, optional regression floor "
             f"(default {DEFAULT_FACTOR} = fail on >10%% slowdown); "
             "repeatable",
    )
    parser.add_argument(
        "--name", default=None,
        help="benchmark name for annotation titles "
             "(default: committed filename)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="annotate regressions as warnings and always exit 0 "
             "(the pre-gate behaviour)",
    )
    parser.add_argument(
        "--allowlist", default=None, metavar="FILE",
        help="file of metric paths (one per line, # comments) whose "
             "regressions warn instead of failing",
    )
    args = parser.parse_args(argv)
    with open(args.committed, encoding="utf-8") as handle:
        committed = json.load(handle)
    with open(args.smoke, encoding="utf-8") as handle:
        smoke = json.load(handle)
    allowlist = (load_allowlist(args.allowlist)
                 if args.allowlist else frozenset())
    name = args.name or args.committed
    failed = 0
    for spec in args.metric:
        path = spec.partition(":")[0]
        failed += check_metric(
            committed, smoke, spec, name,
            warn_only=args.warn_only or path in allowlist,
        )
    if failed:
        print(f"{failed} blocking regression(s) -- failing the build")
        return 1
    print("no blocking drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
