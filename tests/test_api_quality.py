"""Meta-tests: public API hygiene.

Every public symbol exported by the package must carry a docstring, and
every name in an ``__all__`` must resolve -- cheap guards that keep the
"documented public API" deliverable true as the code evolves.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.graphs",
    "repro.coloring",
    "repro.substrates",
    "repro.core",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_symbols_have_docstrings(package_name):
    module = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name}: undocumented public symbols {undocumented}"
    )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_modules_have_docstrings(package_name):
    module = importlib.import_module(package_name)
    assert (module.__doc__ or "").strip(), f"{package_name} lacks a docstring"


def test_public_classes_document_their_methods():
    """Public methods of the core public classes must be documented."""
    from repro.coloring import (
        ArbdefectiveInstance,
        ListDefectiveInstance,
        OLDCInstance,
    )
    from repro.sim import CostLedger, Network, Scheduler

    for cls in (OLDCInstance, ListDefectiveInstance, ArbdefectiveInstance,
                Network, Scheduler, CostLedger):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert (member.__doc__ or "").strip() or (
                getattr(getattr(cls.__bases__[0], name, None), "__doc__",
                        None)
            ), f"{cls.__name__}.{name} lacks a docstring"
