"""Chunked kernel execution: a memory knob that is never a semantics knob.

``REPRO_SIM_CHUNK`` bounds how many nodes the algebraic kernel's array
path materializes per round; every chunk granularity (including
degenerate ones) must be bit-identical to the unchunked run on every
engine and both backends -- outputs, palettes, and ledger streams.  The
per-chunk allocation gate is what lets populations whose *total* match
matrix would be oversized keep the array path: that switch is pinned
via the kernel stats backend counters.
"""

from __future__ import annotations

import pytest

from repro.graphs import gnp_graph, sequential_ids
from repro.sim import CostLedger, use_engine
from repro.sim import arrays
from repro.sim.kernels import kernel_stats, reset_kernel_stats
from repro.substrates import linial_coloring


class TestChunkKnob:
    @pytest.mark.parametrize("value,expected", [
        (None, 0), ("", 0), ("0", 0), ("-3", 0), ("abc", 0),
        ("7", 7), ("125000", 125000),
    ])
    def test_chunk_size_parsing(self, monkeypatch, value, expected):
        if value is None:
            monkeypatch.delenv(arrays.CHUNK_ENV, raising=False)
        else:
            monkeypatch.setenv(arrays.CHUNK_ENV, value)
        assert arrays.chunk_size() == expected

    def test_iter_chunks_covers_range(self):
        assert list(arrays.iter_chunks(10, 4)) == [(0, 4), (4, 8), (8, 10)]
        assert list(arrays.iter_chunks(10, 0)) == [(0, 10)]
        assert list(arrays.iter_chunks(10, 100)) == [(0, 10)]
        assert list(arrays.iter_chunks(0, 4)) == []

    def test_iter_chunks_partitions(self):
        for total, chunk in [(17, 1), (17, 5), (17, 17), (1, 3)]:
            spans = list(arrays.iter_chunks(total, chunk))
            assert spans[0][0] == 0
            assert spans[-1][1] == total
            for (_, hi), (lo, _) in zip(spans, spans[1:]):
                assert hi == lo


# ----------------------------------------------------------------------
# Bit-identity: every chunk granularity equals the unchunked run
# ----------------------------------------------------------------------
def _run_linial(network, engine):
    ledger = CostLedger()
    with use_engine(engine):
        colors, palette = linial_coloring(
            network, sequential_ids(network), len(network), ledger=ledger
        )
    return (sorted(colors.items()), palette,
            (ledger.rounds, ledger.messages, ledger.bits,
             ledger.max_message_bits, ledger.broadcasts))


class TestBitIdentity:
    @pytest.fixture
    def network(self):
        return gnp_graph(90, 0.08, seed=21)

    @pytest.mark.parametrize("engine", ["reference", "fast", "vectorized"])
    def test_chunked_equals_unchunked(self, monkeypatch, network, engine):
        monkeypatch.delenv(arrays.CHUNK_ENV, raising=False)
        baseline = _run_linial(network, engine)
        for chunk in ("1", "7", "32", "1000000"):
            monkeypatch.setenv(arrays.CHUNK_ENV, chunk)
            assert _run_linial(network, engine) == baseline, \
                f"{engine} diverged at chunk={chunk}"

    def test_chunked_equals_unchunked_both_backends(self, monkeypatch,
                                                    network):
        pytest.importorskip("numpy")
        monkeypatch.setattr(arrays, "MIN_BATCH", 0)
        monkeypatch.setattr(arrays, "MIN_TALLY", 0)
        results = []
        previous = arrays.set_arrays_override(None)
        try:
            for enabled in (True, False):
                arrays.set_arrays_override(enabled)
                monkeypatch.delenv(arrays.CHUNK_ENV, raising=False)
                results.append(_run_linial(network, "vectorized"))
                monkeypatch.setenv(arrays.CHUNK_ENV, "13")
                results.append(_run_linial(network, "vectorized"))
        finally:
            arrays.set_arrays_override(previous)
        assert all(entry == results[0] for entry in results[1:])

    def test_engines_agree_under_chunking(self, monkeypatch, network):
        monkeypatch.setenv(arrays.CHUNK_ENV, "11")
        runs = {engine: _run_linial(network, engine)
                for engine in ("reference", "fast", "vectorized")}
        assert runs["reference"] == runs["fast"] == runs["vectorized"]


# ----------------------------------------------------------------------
# Per-chunk allocation gating
# ----------------------------------------------------------------------
class TestPerChunkGating:
    """Chunking gates the match-matrix guard on the widest *chunk*."""

    @pytest.fixture
    def force_arrays(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setattr(arrays, "MIN_BATCH", 0)
        monkeypatch.setattr(arrays, "MIN_TALLY", 0)
        previous = arrays.set_arrays_override(True)
        yield
        arrays.set_arrays_override(previous)

    def test_chunking_rescues_the_array_path(self, monkeypatch,
                                             force_arrays):
        from repro.substrates.algebraic import run_recoloring
        from repro.substrates.cover_free import proper_schedule

        network = gnp_graph(70, 0.1, seed=5)
        compiled = network.compile()
        delta = network.raw_max_degree()
        schedule = proper_schedule(4096, delta)
        max_m = max(step.m for step in schedule)
        total_edges = len(compiled.indices)
        # Between the widest single-node chunk and the whole relation:
        # unchunked runs must decline the array path, chunk=1 runs keep
        # it because only one node's row is ever materialized.
        threshold = delta * max_m
        assert threshold < total_edges * max_m
        monkeypatch.setattr(arrays, "MAX_MATCH_ELEMENTS", threshold)

        ids = sequential_ids(network)
        initial = {node: ids[node] for node in network}
        relevant = {node: frozenset(network.neighbors(node))
                    for node in network}

        def run():
            ledger = CostLedger()
            with use_engine("vectorized"):
                colors, palette = run_recoloring(
                    network, initial, schedule, relevant, ledger=ledger
                )
            return sorted(colors.items()), palette, ledger.rounds

        monkeypatch.delenv(arrays.CHUNK_ENV, raising=False)
        reset_kernel_stats()
        unchunked = run()
        stats = kernel_stats()
        assert stats["by_backend"].get("AlgebraicRecoloringKernel[python]")
        assert not stats["by_backend"].get(
            "AlgebraicRecoloringKernel[numpy]")

        monkeypatch.setenv(arrays.CHUNK_ENV, "1")
        reset_kernel_stats()
        chunked = run()
        stats = kernel_stats()
        assert stats["by_backend"].get("AlgebraicRecoloringKernel[numpy]")

        assert chunked == unchunked
