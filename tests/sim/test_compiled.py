"""Tests for the compiled (dense-id, CSR) network view."""

from __future__ import annotations

from repro.graphs import binary_tree, complete_graph, gnp_graph, path_graph
from repro.sim import CompiledNetwork, Network


class TestCompilation:
    def test_cached_on_network(self, medium_random):
        assert medium_random.compile() is medium_random.compile()

    def test_order_and_index_are_inverse(self, medium_random):
        compiled = medium_random.compile()
        assert len(compiled.order) == len(medium_random)
        for i, node in enumerate(compiled.order):
            assert compiled.index[node] == i
        assert tuple(compiled.order) == medium_random.nodes

    def test_counts(self, medium_random):
        compiled = medium_random.compile()
        assert compiled.n == len(medium_random)
        assert compiled.m == medium_random.edge_count()
        assert len(compiled) == compiled.n

    def test_from_network_equals_compile(self, small_ring):
        direct = CompiledNetwork.from_network(small_ring)
        cached = small_ring.compile()
        assert list(direct.indptr) == list(cached.indptr)
        assert list(direct.indices) == list(cached.indices)


class TestCSR:
    def test_csr_matches_neighbors(self):
        network = gnp_graph(50, 0.12, seed=4)
        compiled = network.compile()
        for node in network:
            i = compiled.index[node]
            ids = list(compiled.neighbor_ids(i))
            assert ids == [
                compiled.index[neighbor]
                for neighbor in network.neighbors(node)
            ]
            assert compiled.neighbor_objects[i] == network.neighbors(node)
            assert compiled.neighbor_sets[i] == network.neighbor_set(node)

    def test_degrees(self):
        network = binary_tree(4)
        compiled = network.compile()
        for node in network:
            i = compiled.index[node]
            assert compiled.degree(i) == network.degree(node)
            assert compiled.degrees[i] == network.degree(node)
        assert compiled.max_degree() == network.raw_max_degree()

    def test_max_degree_empty(self):
        compiled = Network({0: []}).compile()
        assert compiled.max_degree() == 0

    def test_has_edge_ids(self):
        network = path_graph(4)
        compiled = network.compile()
        assert compiled.has_edge_ids(0, 1)
        assert not compiled.has_edge_ids(0, 2)

    def test_edge_ids_match_edges(self):
        network = gnp_graph(30, 0.2, seed=8)
        compiled = network.compile()
        by_objects = list(network.edges())
        by_ids = [
            (compiled.order[i], compiled.order[j])
            for i, j in compiled.edge_ids()
        ]
        assert by_ids == by_objects

    def test_edge_ids_cover_clique(self):
        compiled = complete_graph(5).compile()
        assert sorted(compiled.edge_ids()) == [
            (i, j) for i in range(5) for j in range(i + 1, 5)
        ]


class TestNetworkCaches:
    def test_edges_unique_and_complete(self):
        network = gnp_graph(40, 0.15, seed=2)
        edges = list(network.edges())
        assert len(edges) == network.edge_count()
        assert len({frozenset(edge) for edge in edges}) == len(edges)
        for u, v in edges:
            assert network.has_edge(u, v)

    def test_cached_stats_stable(self, medium_random):
        assert medium_random.raw_max_degree() == medium_random.raw_max_degree()
        assert medium_random.edge_count() == medium_random.edge_count()
        fresh = Network({
            node: list(medium_random.neighbors(node))
            for node in medium_random
        })
        assert fresh.raw_max_degree() == medium_random.raw_max_degree()
        assert fresh.edge_count() == medium_random.edge_count()

    def test_subgraph_not_polluted_by_parent_cache(self, medium_random):
        medium_random.compile()
        nodes = list(medium_random.nodes)[:10]
        sub = medium_random.subgraph(nodes)
        assert len(sub) == 10
        assert sub.compile().n == 10
