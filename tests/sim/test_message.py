"""Tests for message envelopes and bit accounting."""

from __future__ import annotations

import pytest

from repro.sim import Message, color_bits, int_bits, payload_bits


class TestIntBits:
    def test_zero_costs_one_bit(self):
        assert int_bits(0) == 1

    def test_one_costs_one_bit(self):
        assert int_bits(1) == 1

    def test_powers_of_two(self):
        assert int_bits(2) == 2
        assert int_bits(255) == 8
        assert int_bits(256) == 9

    def test_negative_costs_sign_bit(self):
        assert int_bits(-5) == int_bits(5) + 1


class TestColorBits:
    def test_tiny_spaces(self):
        assert color_bits(1) == 1
        assert color_bits(2) == 1

    def test_exact_powers(self):
        assert color_bits(4) == 2
        assert color_bits(1024) == 10

    def test_non_powers_round_up(self):
        assert color_bits(5) == 3
        assert color_bits(1000) == 10


class TestPayloadBits:
    def test_none_is_free(self):
        assert payload_bits(None) == 0

    def test_bool_is_one_bit(self):
        assert payload_bits(True) == 1

    def test_int(self):
        assert payload_bits(7) == 3

    def test_sequence_sums_plus_header(self):
        assert payload_bits([1, 2, 4]) == 8 + 1 + 2 + 3

    def test_dict_counts_keys_and_values(self):
        assert payload_bits({1: 1}) == 8 + 1 + 1

    def test_string_eight_bits_per_char(self):
        assert payload_bits("ab") == 16

    def test_unknown_object_charged_conservatively(self):
        class Opaque:
            pass

        assert payload_bits(Opaque()) == 64

    def test_nested(self):
        nested = [(1, 2), (3,)]
        assert payload_bits(nested) == 8 + (8 + 1 + 2) + (8 + 2)


class TestMessage:
    def test_declared_bits_override_estimator(self):
        message = Message("a", "b", "tag", payload=[1] * 100, bits=5)
        assert message.size_bits == 5

    def test_estimated_bits_fallback(self):
        message = Message("a", "b", "tag", payload=3)
        assert message.size_bits == 2

    def test_messages_are_frozen(self):
        message = Message("a", "b", "tag")
        with pytest.raises(AttributeError):
            message.payload = 42


class TestSizeBitsMemoization:
    def test_memoized_matches_fresh_estimate(self):
        payloads = [None, True, 7, -3, "abc", [1, (2, 3)], {4: "x"},
                    frozenset({5, 6})]
        for payload in payloads:
            message = Message("a", "b", "tag", payload=payload)
            first = message.size_bits
            assert first == payload_bits(payload)
            # Second access serves the cache and must agree.
            assert message.size_bits == first
            assert message._size_cache == first

    def test_declared_bits_bypass_cache(self):
        message = Message("a", "b", "tag", payload=[1] * 50, bits=9)
        assert message.size_bits == 9
        assert message._size_cache is None

    def test_cache_excluded_from_equality(self):
        left = Message("a", "b", "tag", payload=11)
        right = Message("a", "b", "tag", payload=11)
        assert left.size_bits == right.size_bits
        _ = left.size_bits  # populate only one cache
        assert left == right
