"""Tests for message envelopes and bit accounting."""

from __future__ import annotations

import pytest

from repro.sim import (
    Broadcast,
    Message,
    clear_payload_memo,
    color_bits,
    int_bits,
    intern_payload,
    payload_bits,
)
from repro.sim.message import set_payload_memo_enabled


class TestIntBits:
    def test_zero_costs_one_bit(self):
        assert int_bits(0) == 1

    def test_one_costs_one_bit(self):
        assert int_bits(1) == 1

    def test_powers_of_two(self):
        assert int_bits(2) == 2
        assert int_bits(255) == 8
        assert int_bits(256) == 9

    def test_negative_costs_sign_bit(self):
        assert int_bits(-5) == int_bits(5) + 1


class TestColorBits:
    def test_tiny_spaces(self):
        assert color_bits(1) == 1
        assert color_bits(2) == 1

    def test_degenerate_spaces_still_cost_one_bit(self):
        assert color_bits(0) == 1
        assert color_bits(-5) == 1

    def test_exact_powers(self):
        assert color_bits(4) == 2
        assert color_bits(1024) == 10

    def test_exact_powers_need_no_extra_bit(self):
        # ceil(log2(2^k)) must come out as exactly k, not k+1, even
        # where floating-point log2 could land just above the integer.
        for k in range(1, 40):
            assert color_bits(2 ** k) == k

    def test_non_powers_round_up(self):
        assert color_bits(5) == 3
        assert color_bits(1000) == 10
        for k in range(2, 20):
            assert color_bits(2 ** k + 1) == k + 1


class TestPayloadBits:
    def test_none_is_free(self):
        assert payload_bits(None) == 0

    def test_bool_is_one_bit(self):
        assert payload_bits(True) == 1

    def test_int(self):
        assert payload_bits(7) == 3

    def test_sequence_sums_plus_header(self):
        assert payload_bits([1, 2, 4]) == 8 + 1 + 2 + 3

    def test_dict_counts_keys_and_values(self):
        assert payload_bits({1: 1}) == 8 + 1 + 1

    def test_string_eight_bits_per_char(self):
        assert payload_bits("ab") == 16

    def test_unknown_object_charged_conservatively(self):
        class Opaque:
            pass

        assert payload_bits(Opaque()) == 64

    def test_nested(self):
        nested = [(1, 2), (3,)]
        assert payload_bits(nested) == 8 + (8 + 1 + 2) + (8 + 2)

    def test_negative_ints_carry_sign_bit(self):
        assert payload_bits(-1) == 2
        assert payload_bits(-7) == int_bits(7) + 1
        assert payload_bits((-1, 1)) == 8 + 2 + 1

    def test_nested_dict_payload(self):
        nested = {"a": {1: (2, 3)}, "b": None}
        inner = 8 + 1 + (8 + 2 + 2)          # {1: (2, 3)}
        assert payload_bits(nested) == 8 + (8 + inner) + (8 + 0)

    def test_set_payloads_sum_like_sequences(self):
        assert payload_bits({4}) == 8 + 3
        assert payload_bits(frozenset({4})) == 8 + 3

    def test_nested_unknown_object_falls_back_to_64(self):
        class Opaque:
            pass

        assert payload_bits([Opaque(), 1]) == 8 + 64 + 1

    def test_bool_inside_container_not_conflated_with_int(self):
        # True == 1 but bools cost 1 bit while e.g. 255 costs 8; the
        # memo key must distinguish the types.
        clear_payload_memo()
        assert payload_bits(1) == 1
        assert payload_bits(True) == 1
        assert payload_bits(255) == 8
        assert payload_bits(False) == 1


class TestPayloadMemo:
    def test_memo_agrees_with_disabled_estimator(self):
        payloads = [0, -9, "xyz", (1, (2, -3)), frozenset({7}), True]
        clear_payload_memo()
        memoized = [payload_bits(p) for p in payloads]
        memoized_again = [payload_bits(p) for p in payloads]
        previous = set_payload_memo_enabled(False)
        try:
            raw = [payload_bits(p) for p in payloads]
        finally:
            set_payload_memo_enabled(previous)
        assert memoized == raw == memoized_again

    def test_unhashable_payloads_skip_the_memo(self):
        clear_payload_memo()
        assert payload_bits([1, [2]]) == 8 + 1 + (8 + 2)
        assert payload_bits({1: {2}}) == 8 + 1 + (8 + 2)

    def test_intern_returns_one_canonical_object(self):
        clear_payload_memo()
        a = (1, 2, 3)
        b = (1, 2, 3)
        assert intern_payload(a) is intern_payload(b)

    def test_intern_passes_through_unhashable_and_none(self):
        assert intern_payload(None) is None
        lst = [1, 2]
        assert intern_payload(lst) is lst

    def test_intern_distinguishes_types(self):
        clear_payload_memo()
        assert intern_payload(True) is True
        assert intern_payload(1) == 1
        assert intern_payload(1) is not True


class TestMessage:
    def test_declared_bits_override_estimator(self):
        message = Message("a", "b", "tag", payload=[1] * 100, bits=5)
        assert message.size_bits == 5

    def test_estimated_bits_fallback(self):
        message = Message("a", "b", "tag", payload=3)
        assert message.size_bits == 2

    def test_messages_are_frozen(self):
        message = Message("a", "b", "tag")
        with pytest.raises(AttributeError):
            message.payload = 42


class TestSizeBitsMemoization:
    def test_memoized_matches_fresh_estimate(self):
        payloads = [None, True, 7, -3, "abc", [1, (2, 3)], {4: "x"},
                    frozenset({5, 6})]
        for payload in payloads:
            message = Message("a", "b", "tag", payload=payload)
            first = message.size_bits
            assert first == payload_bits(payload)
            # Second access serves the cache and must agree.
            assert message.size_bits == first
            assert message._size_cache == first

    def test_declared_bits_bypass_cache(self):
        message = Message("a", "b", "tag", payload=[1] * 50, bits=9)
        assert message.size_bits == 9
        assert message._size_cache is None

    def test_cache_excluded_from_equality(self):
        left = Message("a", "b", "tag", payload=11)
        right = Message("a", "b", "tag", payload=11)
        assert left.size_bits == right.size_bits
        _ = left.size_bits  # populate only one cache
        assert left == right


class TestBroadcast:
    def test_declared_bits_override_estimator(self):
        envelope = Broadcast("a", "tag", payload=[1] * 100, bits=5)
        assert envelope.size_bits == 5

    def test_estimated_bits_memoized_on_envelope(self):
        envelope = Broadcast("a", "tag", payload=(1, 2))
        assert envelope.size_bits == 8 + 1 + 2
        assert envelope._size_cache == 8 + 1 + 2
        assert envelope.size_bits == 8 + 1 + 2

    def test_receiver_is_none(self):
        assert Broadcast("a", "t").receiver is None

    def test_equality_ignores_declared_bits(self):
        assert Broadcast("a", "t", 1, bits=4) == Broadcast("a", "t", 1)
        assert Broadcast("a", "t", 1) != Broadcast("a", "t", 2)
        assert Broadcast("a", "t", 1) != Message("a", "b", "t", 1)

    def test_hash_consistent_with_equality(self):
        assert hash(Broadcast("a", "t", 1, bits=4)) == \
            hash(Broadcast("a", "t", 1))
