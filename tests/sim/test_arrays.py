"""The optional NumPy kernel backend: selection, helpers, equivalence.

The array backend must be *transparent*: with NumPy present the
kernels batch their per-round numeric work, without it (or with
``REPRO_SIM_ARRAYS=0``) they keep their pure-Python columns, and the
results -- outputs, ledgers, exceptions, kernel stats -- are
bit-identical either way.  These tests pin the selection rules, the
numeric helpers against their scalar oracles (including the int64
overflow guard), and the end-to-end equivalence of both backends.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.graphs import binary_tree, gnp_graph, orient_by_id, sequential_ids
from repro.coloring import random_oldc_instance
from repro.core import two_sweep
from repro.sim import CostLedger, use_engine
from repro.sim import arrays
from repro.sim.errors import AlgorithmFailure
from repro.sim.kernels import kernel_stats, reset_kernel_stats
from repro.substrates import linial_coloring
from repro.substrates.cover_free import shared_family

numpy = pytest.importorskip("numpy")


@pytest.fixture
def force_arrays(monkeypatch):
    """Pin the NumPy backend on and drop the size thresholds."""
    monkeypatch.setattr(arrays, "MIN_BATCH", 0)
    monkeypatch.setattr(arrays, "MIN_TALLY", 0)
    previous = arrays.set_arrays_override(True)
    yield
    arrays.set_arrays_override(previous)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv(arrays.ARRAYS_ENV, "0")
        assert arrays.get_numpy() is None
        assert not arrays.arrays_enabled()
        assert arrays.backend_name() == "python"
        assert arrays.numpy_version() is None

    def test_env_default_enables(self, monkeypatch):
        monkeypatch.delenv(arrays.ARRAYS_ENV, raising=False)
        assert arrays.get_numpy() is numpy
        assert arrays.backend_name() == "numpy"
        assert arrays.numpy_version() == numpy.__version__

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.delenv(arrays.ARRAYS_ENV, raising=False)
        previous = arrays.set_arrays_override(False)
        try:
            assert arrays.get_numpy() is None
            # ...and the override wins over an enabling env too.
            monkeypatch.setenv(arrays.ARRAYS_ENV, "1")
            assert not arrays.arrays_enabled()
            arrays.set_arrays_override(True)
            monkeypatch.setenv(arrays.ARRAYS_ENV, "0")
            assert arrays.arrays_enabled()
        finally:
            arrays.set_arrays_override(previous)

    def test_missing_numpy_falls_back(self, monkeypatch):
        """Simulated absent NumPy: selection degrades, nothing raises."""
        monkeypatch.setattr(arrays, "_numpy_module", arrays._UNSET)
        monkeypatch.setitem(sys.modules, "numpy", None)
        try:
            assert arrays.get_numpy() is None
            assert arrays.backend_name() == "python"
            assert arrays.numpy_version() is None
            # The whole protocol path still runs on Python columns.
            network = binary_tree(5)
            with use_engine("vectorized"):
                colors, palette = linial_coloring(
                    network, sequential_ids(network), len(network)
                )
            assert len(colors) == len(network)
        finally:
            arrays._reset_import_cache()

    def test_worker_init_applies_override(self):
        from repro.sim.parallel import _init_worker

        before = arrays.arrays_enabled()
        _init_worker(None, None, False)
        try:
            assert not arrays.arrays_enabled()
        finally:
            arrays.set_arrays_override(None)
        assert arrays.arrays_enabled() == before


# ----------------------------------------------------------------------
# Numeric helpers vs their scalar oracles
# ----------------------------------------------------------------------
class TestHelpers:
    @pytest.mark.parametrize("q,m,k", [(127, 13, 2), (64, 7, 3), (9, 3, 1)])
    def test_batched_horner_matches_family(self, q, m, k):
        family = shared_family(q, m, k)
        table = arrays.batched_horner(
            numpy, numpy.arange(q, dtype=numpy.int64), m, k
        )
        for index in range(q):
            assert table[index].tolist() == [
                family.evaluate(index, x) for x in range(m)
            ]

    def test_horner_near_int64_boundary(self):
        """A field size at the MAX_FIELD guard: no silent overflow.

        ``m`` close to ``2**31`` drives the Horner accumulator to
        ``~m**2 < 2**62``; the batched rows must still equal exact
        Python big-int arithmetic.
        """
        m = (1 << 31) - 1  # Mersenne prime 2^31 - 1
        k = 2
        assert arrays.field_fits(m, m)
        indices = [0, 1, m - 1, m, m * m - 1, m ** 2 + m + 1]
        coeffs = arrays.coefficient_matrix(
            numpy, numpy.asarray(indices, dtype=numpy.int64), m, k
        )
        points = [0, 1, 2, m // 2, m - 2, m - 1]
        for row, index in enumerate(indices):
            expected_digits = [(index // m ** j) % m for j in range(k + 1)]
            assert coeffs[row].tolist() == expected_digits
            for x in points:
                acc = 0
                for j in range(k, -1, -1):
                    acc = (acc * x + expected_digits[j]) % m
                # Evaluate via the same int64 Horner the kernel uses.
                val = numpy.int64(0)
                for j in range(k, -1, -1):
                    val = (val * x + coeffs[row, j]) % m
                assert int(val) == acc, (index, x)

    def test_field_fits_rejects_oversized(self):
        assert not arrays.field_fits(arrays.MAX_FIELD + 1, 10)
        assert not arrays.field_fits(10, arrays.MAX_COLOR + 1)
        assert arrays.field_fits(arrays.MAX_FIELD, arrays.MAX_COLOR)
        assert not arrays.field_fits(1, 10)

    @pytest.mark.parametrize("seed", range(4))
    def test_membership_counts_matches_dict(self, seed):
        rng = random.Random(seed)
        candidates = sorted(rng.sample(range(-20, 60), rng.randint(1, 12)))
        values = [rng.randint(-25, 65) for _ in range(rng.randint(0, 40))]
        expected = {c: values.count(c) for c in candidates}
        counts = arrays.membership_counts(
            numpy,
            numpy.asarray(values, dtype=numpy.int64),
            numpy.asarray(candidates, dtype=numpy.int64),
        )
        assert dict(zip(candidates, counts.tolist())) == expected

    def test_membership_counts_empty(self):
        empty = numpy.asarray([], dtype=numpy.int64)
        some = numpy.asarray([1, 2], dtype=numpy.int64)
        assert arrays.membership_counts(numpy, empty, some).tolist() == [0, 0]
        assert arrays.membership_counts(numpy, some, empty).tolist() == []

    @pytest.mark.parametrize("seed", range(4))
    def test_mex_below_matches_scalar(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(25):
            limit = rng.randint(1, 30)
            values = [rng.randint(-5, 35) for _ in range(rng.randint(0, 25))]
            used = set(values)
            expected = 0
            while expected in used:
                expected += 1
            expected = min(expected, limit)
            got = arrays.mex_below(
                numpy, numpy.asarray(values, dtype=numpy.int64), limit
            )
            assert got == expected, (values, limit)


# ----------------------------------------------------------------------
# End-to-end: both backends are bit-identical, and stats say which ran
# ----------------------------------------------------------------------
def _run_linial(network):
    ledger = CostLedger()
    with use_engine("vectorized"):
        colors, palette = linial_coloring(
            network, sequential_ids(network), len(network), ledger=ledger
        )
    return colors, palette, (ledger.rounds, ledger.messages, ledger.bits,
                             ledger.max_message_bits, ledger.broadcasts)


def test_backend_stats_and_equivalence(force_arrays):
    network = binary_tree(7)
    reset_kernel_stats()
    with_numpy = _run_linial(network)
    stats = kernel_stats()
    assert stats["by_backend"].get("AlgebraicRecoloringKernel[numpy]")
    assert stats["by_kernel"].get("AlgebraicRecoloringKernel")

    arrays.set_arrays_override(False)
    reset_kernel_stats()
    without = _run_linial(network)
    stats = kernel_stats()
    assert stats["by_backend"].get("AlgebraicRecoloringKernel[python]")
    assert "AlgebraicRecoloringKernel[numpy]" not in stats["by_backend"]
    assert with_numpy == without


def test_failure_messages_identical_across_backends(force_arrays):
    """A genuinely stuck node raises the same error on both backends."""
    network = gnp_graph(40, 0.3, seed=2)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=17)
    # Sabotage every defect so Eq. (2) fails at run time.
    for node in instance.defects:
        instance.defects[node] = {
            color: 0 for color in instance.defects[node]
        }
    instance.lists = {
        node: instance.lists[node][:1] for node in instance.lists
    }
    errors = {}
    for enabled in (True, False):
        arrays.set_arrays_override(enabled)
        with use_engine("vectorized"):
            with pytest.raises(AlgorithmFailure) as info:
                two_sweep(
                    instance, sequential_ids(network), len(network), 2,
                    check=False,
                )
        errors[enabled] = str(info.value)
    assert errors[True] == errors[False]
