"""Shared-memory CSR topologies: publish, attach, lookup, lifecycle.

Pool workers forked on this platform inherit the parent's ``_exported``
table, so a live sweep never exercises the handle-attach path a
spawn-start worker would take.  These tests therefore *simulate* the
spawn worker: snapshot the handles, hide the parent-side table, reset
the worker-side state, and attach through ``receive_handles`` +
``lookup`` -- asserting the mapped view is byte-identical to the
original and feeds the kernels unchanged.  Publishing must degrade to
``None`` (per-worker rebuilds) when shared memory is unusable.
"""

from __future__ import annotations

import pytest

from repro.graphs.streaming import csr_from_edges, ring_edges
from repro.sim import CompiledNetwork, CostLedger, parallel_sweep, shm, \
    use_engine
from repro.substrates.greedy import greedy_color_reduction


def _ring_compiled(n: int) -> CompiledNetwork:
    indptr, indices = csr_from_edges(n, ring_edges(n))
    return CompiledNetwork.from_csr(indptr, indices)


def _publish_or_skip(key, compiled):
    handle = shm.publish(key, compiled)
    if handle is None:
        pytest.skip("shared memory unusable here")
    return handle


def measure_shared_ring(seed: int, n: int) -> dict:
    """Module-level so pool workers can unpickle it by reference."""
    from repro.graphs.streaming import inflated_seed_coloring, stream_ring

    compiled = shm.lookup(("ring-stream", n)) or stream_ring(n)
    colors, q = inflated_seed_coloring(compiled, 8)
    result = greedy_color_reduction(compiled, colors, q,
                                    compiled.raw_max_degree() + 1)
    return {"distinct": len(set(result.values()))}


class TestPublish:
    def test_handle_and_segment_shape(self):
        compiled = _ring_compiled(40)
        key = ("test-shm", "shape")
        try:
            handle = _publish_or_skip(key, compiled)
            assert handle["n"] == 40
            assert handle["nnz"] == len(compiled.indices) == 80
            assert key in shm.published_keys()
            # [indptr | indices | degrees], int64 throughout.
            assert shm.segment_bytes(key) >= 8 * (41 + 80 + 40)
        finally:
            shm.unlink_all()

    def test_publish_is_idempotent(self):
        compiled = _ring_compiled(12)
        key = ("test-shm", "idem")
        try:
            first = _publish_or_skip(key, compiled)
            assert shm.publish(key, compiled) == first
            assert len([k for k in shm.published_keys() if k == key]) == 1
        finally:
            shm.unlink_all()

    def test_parent_lookup_returns_original(self):
        compiled = _ring_compiled(9)
        key = ("test-shm", "parent")
        try:
            _publish_or_skip(key, compiled)
            assert shm.lookup(key) is compiled
        finally:
            shm.unlink_all()

    def test_unlink_all_clears(self):
        compiled = _ring_compiled(6)
        key = ("test-shm", "unlink")
        _publish_or_skip(key, compiled)
        shm.unlink_all()
        assert shm.published_keys() == ()
        assert shm.segment_bytes(key) is None
        assert shm.lookup(key) is None

    def test_publish_degrades_to_none(self, monkeypatch):
        from multiprocessing import shared_memory

        def refuse(*args, **kwargs):
            raise OSError("no shm here")

        monkeypatch.setattr(shared_memory, "SharedMemory", refuse)
        assert shm.publish(("test-shm", "refused"), _ring_compiled(5)) \
            is None
        assert ("test-shm", "refused") not in shm.published_keys()


class TestWorkerAttach:
    def test_spawn_worker_round_trip(self, monkeypatch):
        """Handle -> attach -> byte-identical mapped view -> kernels."""
        compiled = _ring_compiled(64)
        key = ("ring-stream", 64)
        try:
            _publish_or_skip(key, compiled)
            handles = shm.export_handles()
            assert key in handles

            # Simulate a spawn worker: no parent-side table, fresh
            # worker-side state, only the pickled handles arrive.
            monkeypatch.setattr(shm, "_exported", {})
            shm._reset_worker_state()
            assert shm.lookup(key) is None
            shm.receive_handles(handles)

            attached = shm.lookup(key)
            assert attached is not None
            assert attached is not compiled
            assert attached.n == compiled.n
            assert bytes(memoryview(attached.indptr)) == \
                bytes(memoryview(compiled.indptr))
            assert bytes(memoryview(attached.indices)) == \
                bytes(memoryview(compiled.indices))
            assert bytes(memoryview(attached.degrees)) == \
                bytes(memoryview(compiled.degrees))
            # Attachment is cached; the same mapped object comes back.
            assert shm.lookup(key) is attached

            # The mapped view drives the vectorized kernels unchanged.
            from repro.graphs.streaming import inflated_seed_coloring

            colors, q = inflated_seed_coloring(attached, 8)
            ledger = CostLedger()
            with use_engine("vectorized"):
                result = greedy_color_reduction(
                    attached, colors, q, attached.raw_max_degree() + 1,
                    ledger=ledger,
                )
            assert ledger.rounds > 0
            for i in range(64):
                assert result[i] != result[(i + 1) % 64]
        finally:
            # The monkeypatched table is restored by the fixture; the
            # worker-side attachment stays mapped (releasing it while
            # its memoryviews live would raise) and the parent unlinks.
            shm.unlink_all()

    def test_receive_none_is_noop(self):
        shm.receive_handles(None)
        shm.receive_handles({})
        assert shm.lookup(("test-shm", "missing")) is None

    def test_attach_missing_segment_degrades(self, monkeypatch):
        monkeypatch.setattr(shm, "_exported", {})
        shm._reset_worker_state()
        shm.receive_handles({
            ("test-shm", "gone"): {"name": "repro-no-such-segment",
                                   "n": 4, "nnz": 8},
        })
        assert shm.lookup(("test-shm", "gone")) is None
        shm._reset_worker_state()


class TestSweepIntegration:
    def test_sweep_with_published_topology(self):
        """End to end: topology rides shm, workers report peak RSS."""
        from repro.graphs.streaming import stream_ring

        n = 512
        compiled = stream_ring(n)
        try:
            report = parallel_sweep(
                measure_shared_ring,
                [{"seed": s, "n": n} for s in range(3)],
                max_workers=2, report=True,
                topologies={("ring-stream", n): compiled},
            )
            # Reduced to at most Delta + 1 = 3 colors on the ring.
            assert all(2 <= r["distinct"] <= 3 for r in report)
            assert len(set(tuple(sorted(r.items())) for r in report)) >= 1
            assert report.workers
            for worker in report.workers:
                assert worker.get("rss_kb") is None or \
                    worker["rss_kb"] > 0
        finally:
            shm.unlink_all()

    def test_sweep_without_topologies_still_works(self):
        records = parallel_sweep(
            measure_shared_ring,
            [{"seed": 0, "n": 128}],
            max_workers=1,
        )
        assert 2 <= records[0]["distinct"] <= 3


class TestRefcounting:
    def test_release_unlinks_at_zero(self):
        compiled = _ring_compiled(10)
        key = ("test-shm", "refcount")
        try:
            _publish_or_skip(key, compiled)
            shm.publish(key, compiled)
            assert shm.refcount(key) == 2
            assert shm.release(key) is False  # one reference remains
            assert key in shm.published_keys()
            assert shm.release(key) is True  # last reference unlinks
            assert key not in shm.published_keys()
            assert shm.lookup(key) is None
        finally:
            shm.unlink_all()

    def test_release_unknown_key_is_noop(self):
        assert shm.release(("test-shm", "never-published")) is False
        assert shm.refcount(("test-shm", "never-published")) == 0

    def test_segment_actually_gone_after_release(self):
        """release() must unlink the OS object, not just forget it."""
        from multiprocessing import shared_memory

        compiled = _ring_compiled(8)
        key = ("test-shm", "gone-after-release")
        try:
            handle = _publish_or_skip(key, compiled)
            assert shm.release(key) is True
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=handle["name"])
        finally:
            shm.unlink_all()

    def test_unlink_all_force_drops_refcounts(self):
        compiled = _ring_compiled(6)
        key = ("test-shm", "force")
        _publish_or_skip(key, compiled)
        shm.publish(key, compiled)  # refcount 2
        shm.unlink_all()
        assert shm.refcount(key) == 0
        assert shm.lookup(key) is None


class TestConcurrentLifecycle:
    """A serve supervisor restarting a crashed pool releases topologies
    from its monitor thread while the request path publishes the same
    key; the close/unlink pair must run exactly once per segment."""

    def test_concurrent_release_unlinks_exactly_once(self):
        import threading

        compiled = _ring_compiled(24)
        key = ("test-shm", "race-release")
        try:
            _publish_or_skip(key, compiled)  # refcount 1
            barrier = threading.Barrier(8)
            unlinked = []

            def racer():
                barrier.wait()
                if shm.release(key):
                    unlinked.append(True)

            threads = [threading.Thread(target=racer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(unlinked) == 1
            assert key not in shm.published_keys()
        finally:
            shm.unlink_all()

    def test_publish_release_storm_stays_consistent(self):
        import threading

        compiled = _ring_compiled(16)
        key = ("test-shm", "race-storm")
        if shm.publish(key, compiled) is None:
            pytest.skip("shared memory unusable here")
        shm.release(key)
        failures = []

        def churn():
            try:
                for _ in range(40):
                    if shm.publish(key, compiled) is None:
                        return
                    shm.release(key)
            except Exception as error:  # pragma: no cover - the bug
                failures.append(error)

        try:
            threads = [threading.Thread(target=churn) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            # Balanced publish/release pairs: nothing left behind.
            assert shm.refcount(key) == 0
        finally:
            shm.unlink_all()

    def test_attach_never_registers_with_resource_tracker(self):
        """Workers must not touch the resource tracker at all.

        Under fork the tracker process is shared, so a worker-side
        register/unregister pair deletes the *parent's* cache entry and
        the parent's eventual unlink crashes the tracker thread with a
        KeyError traceback.  The attach path therefore stubs out
        registration entirely."""
        from multiprocessing import resource_tracker

        compiled = _ring_compiled(20)
        key = ("test-shm", "no-track")
        registered = []
        original = resource_tracker.register
        try:
            handle = _publish_or_skip(key, compiled)
            resource_tracker.register = \
                lambda *args, **kwargs: registered.append(args)
            try:
                from multiprocessing import shared_memory

                segment = shm._attach_untracked(shared_memory,
                                                handle["name"])
            finally:
                resource_tracker.register = original
            assert registered == []
            segment.close()
        finally:
            shm.unlink_all()


class TestWorkerDeath:
    def test_killed_worker_does_not_unlink_parent_segment(self):
        """A worker that dies hard (SIGKILL mid-attachment) must leave
        the parent's segment mapped, readable, and releasable -- workers
        only map, they never own."""
        import signal
        import subprocess
        import sys
        import textwrap

        compiled = _ring_compiled(32)
        key = ("test-shm", "worker-death")
        try:
            handle = _publish_or_skip(key, compiled)
            script = textwrap.dedent(f"""
                import os, sys
                sys.path.insert(0, {repr("src")})
                from repro.sim import shm
                shm.receive_handles({{("k",): {handle!r}}})
                attached = shm.lookup(("k",))
                assert attached is not None and attached.n == 32
                print("attached", flush=True)
                os.kill(os.getpid(), {int(signal.SIGKILL)})
            """)
            proc = subprocess.Popen(
                [sys.executable, "-c", script], cwd="/root/repo",
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            out, err = proc.communicate(timeout=60)
            assert "attached" in out, err
            assert proc.returncode == -signal.SIGKILL
            # The parent's segment survived the worker's death intact.
            survivor = shm.lookup(key)
            assert survivor is compiled
            assert shm.segment_bytes(key) is not None
            assert shm.release(key) is True
        finally:
            shm.unlink_all()

    def test_sigterm_cleanup_unlinks_published_segments(self):
        """A SIGTERM-killed daemon must not leak /dev/shm segments:
        install_signal_cleanup unlinks everything before dying."""
        import signal
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import sys, time
            sys.path.insert(0, "src")
            from repro.graphs.streaming import csr_from_edges, ring_edges
            from repro.sim import shm
            from repro.sim.compiled import CompiledNetwork

            indptr, indices = csr_from_edges(16, ring_edges(16))
            compiled = CompiledNetwork.from_csr(indptr, indices)
            handle = shm.publish(("daemon", 16), compiled)
            if handle is None:
                print("SKIP", flush=True)
                sys.exit(0)
            assert shm.install_signal_cleanup()
            print(handle["name"], flush=True)
            time.sleep(60)
        """)
        proc = subprocess.Popen(
            [sys.executable, "-c", script], cwd="/root/repo",
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            name = proc.stdout.readline().strip()
            if name == "SKIP":
                proc.wait(timeout=30)
                pytest.skip("shared memory unusable here")
            assert name
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGTERM
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            proc.kill()
            proc.wait(timeout=30)
