"""Tests for the process-parallel trial runner."""

from __future__ import annotations

from repro.analysis import grid, sweep
from repro.sim.parallel import (
    derive_seed,
    parallel_sweep,
    resolve_workers,
    run_trials,
)


def measure_square(n: int, offset: int = 0) -> dict:
    """Module-level so it pickles into worker processes."""
    return {"square": n * n + offset}


def measure_seeded(seed: int, scale: int = 1) -> int:
    return seed * scale


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_per_trial(self):
        seeds = {derive_seed(0, i) for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_per_base(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_non_negative_31_bit(self):
        for i in range(50):
            assert 0 <= derive_seed(123, i) < 2 ** 31


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        params = grid(n=[1, 2, 3, 4], offset=[0, 10])
        serial = sweep(measure_square, params)
        parallel = parallel_sweep(measure_square, params, max_workers=2)
        assert parallel == serial

    def test_order_preserved(self):
        params = [{"n": n} for n in (5, 1, 3)]
        records = parallel_sweep(measure_square, params, max_workers=2)
        assert [record["n"] for record in records] == [5, 1, 3]

    def test_serial_fallback(self):
        records = parallel_sweep(
            measure_square, [{"n": 6}], max_workers=1
        )
        assert records == [{"n": 6, "square": 36}]

    def test_timing_flag(self):
        records = parallel_sweep(
            measure_square, [{"n": 2}], max_workers=1, timing=True
        )
        assert records[0]["wall_s"] >= 0

    def test_env_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        records = parallel_sweep(measure_square, grid(n=[1, 2]))
        assert [record["square"] for record in records] == [1, 4]


class TestRunTrials:
    def test_deterministic_and_seeded(self):
        first = run_trials(measure_seeded, 5, base_seed=9, max_workers=1)
        second = run_trials(measure_seeded, 5, base_seed=9, max_workers=2)
        assert first == second
        assert first == [derive_seed(9, i) for i in range(5)]

    def test_common_kwargs_forwarded(self):
        results = run_trials(
            measure_seeded, 3, base_seed=4, max_workers=1, scale=2
        )
        assert results == [2 * derive_seed(4, i) for i in range(3)]


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        assert resolve_workers(3) == 3

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        assert resolve_workers() == 2

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        assert resolve_workers() >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
