"""Tests for the process-parallel trial runner."""

from __future__ import annotations

from repro.analysis import grid, sweep
from repro.sim import SweepReport, default_engine, use_engine
from repro.sim.parallel import (
    derive_seed,
    parallel_sweep,
    resolve_workers,
    run_trials,
)


def measure_square(n: int, offset: int = 0) -> dict:
    """Module-level so it pickles into worker processes."""
    return {"square": n * n + offset}


def measure_seeded(seed: int, scale: int = 1) -> int:
    return seed * scale


def measure_engine(n: int) -> dict:
    """Report the engine the trial actually ran under (in the worker)."""
    return {"engine": default_engine()}


def measure_engine_result(seed: int) -> str:
    return default_engine()


def measure_two_sweep(n: int) -> dict:
    """A real protocol trial: Two-Sweep on a small random graph."""
    from repro.coloring import random_oldc_instance
    from repro.core import two_sweep
    from repro.graphs import gnp_graph, orient_by_id, sequential_ids
    from repro.sim import CostLedger

    network = gnp_graph(n, 0.3, seed=11)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=11)
    ids = sequential_ids(network)
    ledger = CostLedger()
    result = two_sweep(instance, ids, n, 2, ledger=ledger, check=False)
    return {
        "rounds": ledger.rounds,
        "colors": tuple(sorted(result.colors.items())),
    }


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_per_trial(self):
        seeds = {derive_seed(0, i) for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_per_base(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_non_negative_31_bit(self):
        for i in range(50):
            assert 0 <= derive_seed(123, i) < 2 ** 31


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        params = grid(n=[1, 2, 3, 4], offset=[0, 10])
        serial = sweep(measure_square, params)
        parallel = parallel_sweep(measure_square, params, max_workers=2)
        assert parallel == serial

    def test_order_preserved(self):
        params = [{"n": n} for n in (5, 1, 3)]
        records = parallel_sweep(measure_square, params, max_workers=2)
        assert [record["n"] for record in records] == [5, 1, 3]

    def test_serial_fallback(self):
        records = parallel_sweep(
            measure_square, [{"n": 6}], max_workers=1
        )
        assert records == [{"n": 6, "square": 36}]

    def test_timing_flag(self):
        records = parallel_sweep(
            measure_square, [{"n": 2}], max_workers=1, timing=True
        )
        assert records[0]["wall_s"] >= 0

    def test_env_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        records = parallel_sweep(measure_square, grid(n=[1, 2]))
        assert [record["square"] for record in records] == [1, 4]


class TestEngineResolution:
    def test_env_set_after_import_reaches_workers(self, monkeypatch):
        # Regression: the engine is resolved in the parent at *call* time
        # and shipped to every worker explicitly, so REPRO_SIM_ENGINE set
        # after the module (or a previous pool) came up still wins --
        # forked workers freeze their environment at spawn.
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        records = parallel_sweep(
            measure_engine, grid(n=[1, 2]), max_workers=2
        )
        assert [r["engine"] for r in records] == ["reference", "reference"]

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        records = parallel_sweep(
            measure_engine, [{"n": 1}], max_workers=1, engine="fast"
        )
        assert records[0]["engine"] == "fast"

    def test_serial_path_honors_engine(self):
        records = parallel_sweep(
            measure_engine, grid(n=[1, 2]), max_workers=1,
            engine="vectorized",
        )
        assert [r["engine"] for r in records] == ["vectorized", "vectorized"]

    def test_invalid_engine_rejected_in_parent(self):
        import pytest

        from repro.sim import SchedulerError

        with pytest.raises(SchedulerError, match="unknown scheduler engine"):
            parallel_sweep(measure_engine, [{"n": 1}], engine="warp")

    def test_vectorized_pool_matches_serial_reference(self):
        params = grid(n=[8, 12, 16])
        with use_engine("reference"):
            baseline = sweep(measure_two_sweep, params)
        records = parallel_sweep(
            measure_two_sweep, params, max_workers=2, engine="vectorized"
        )
        assert records == baseline


class TestSweepReport:
    def test_report_type_and_attributes(self):
        report = parallel_sweep(
            measure_two_sweep, grid(n=[8, 12]), max_workers=2,
            engine="vectorized", report=True,
        )
        assert isinstance(report, SweepReport)
        assert report.engine == "vectorized"
        assert report.wall_s >= 0
        assert report.workers
        for worker in report.workers:
            assert worker["engine"] == "vectorized"
            assert worker["runs"] == worker["hits"] + worker["fallbacks"]
        # Every trial kernelizes, so the pool saw only hits.
        assert sum(w["hits"] for w in report.workers) == 2
        assert sum(
            w["by_kernel"].get("TwoSweepKernel", 0) for w in report.workers
        ) == 2

    def test_report_is_a_record_list(self):
        report = parallel_sweep(
            measure_square, grid(n=[2, 3]), max_workers=1, report=True
        )
        assert list(report) == sweep(measure_square, grid(n=[2, 3]))
        assert report.records == list(report)
        assert all("__worker__" not in record for record in report)

    def test_describe_mentions_engine_and_workers(self):
        report = parallel_sweep(
            measure_two_sweep, [{"n": 8}], max_workers=1,
            engine="vectorized", report=True,
        )
        text = report.describe()
        assert "engine=vectorized" in text
        assert "worker pid=" in text
        assert "TwoSweepKernel x1" in text


class TestRunTrials:
    def test_deterministic_and_seeded(self):
        first = run_trials(measure_seeded, 5, base_seed=9, max_workers=1)
        second = run_trials(measure_seeded, 5, base_seed=9, max_workers=2)
        assert first == second
        assert first == [derive_seed(9, i) for i in range(5)]

    def test_common_kwargs_forwarded(self):
        results = run_trials(
            measure_seeded, 3, base_seed=4, max_workers=1, scale=2
        )
        assert results == [2 * derive_seed(4, i) for i in range(3)]

    def test_engine_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        results = run_trials(
            measure_engine_result, 2, base_seed=1, max_workers=2,
            engine="vectorized",
        )
        assert results == ["vectorized", "vectorized"]


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        assert resolve_workers(3) == 3

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        assert resolve_workers() == 2

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        assert resolve_workers() >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1


class TestTraceMerge:
    def test_worker_traces_merge_into_parent(self):
        from repro.obs import Tracer, use_tracer, validate_events

        tracer = Tracer()
        with use_tracer(tracer):
            report = parallel_sweep(
                measure_two_sweep, [{"n": 8}, {"n": 9}, {"n": 10}],
                max_workers=2, report=True,
            )
        assert isinstance(report, SweepReport)
        assert report.trace_events
        # Every worker record carries its worker pid; the pids match the
        # report's worker attribution.
        workers = {
            record["worker"] for record in report.trace_events
            if "worker" in record
        }
        assert workers <= {stats["pid"] for stats in report.workers}
        # The merged stream (algorithm span + per-trial runs) is a valid
        # trace: unique span ids, no dangling parents.
        assert validate_events(tracer.events) == []
        kinds = {record["kind"] for record in tracer.events}
        assert "algorithm" in kinds and "run" in kinds
        run_spans = [
            record for record in tracer.events if record["kind"] == "run"
        ]
        assert len(run_spans) == 3
        assert "traced" in report.describe()

    def test_trial_results_unchanged_by_tracing(self):
        from repro.obs import Tracer, use_tracer

        baseline = parallel_sweep(
            measure_two_sweep, [{"n": 8}, {"n": 9}], max_workers=2,
        )
        with use_tracer(Tracer()):
            traced = parallel_sweep(
                measure_two_sweep, [{"n": 8}, {"n": 9}], max_workers=2,
            )
        assert traced == baseline

    def test_untraced_sweep_has_no_trace_events(self):
        report = parallel_sweep(
            measure_square, grid(n=[2, 3]), max_workers=1, report=True
        )
        assert report.trace_events == []
        assert "traced" not in report.describe()

    def test_serial_fallback_traces_inline(self):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            parallel_sweep(measure_two_sweep, [{"n": 8}], max_workers=1)
        # max_workers=1 runs serially in-process: spans flow straight
        # into the ambient tracer, with no worker stamping.
        assert any(record["kind"] == "run" for record in tracer.events)
        assert all("worker" not in record for record in tracer.events)


class TestWorkerMetricsMerge:
    """Worker registry deltas ride the record channel into the parent."""

    @staticmethod
    def _sim_runs(snap) -> float:
        entry = snap.get("repro_sim_runs_total") or {}
        return sum(s["value"] for s in entry.get("samples", ()))

    def test_pool_sweep_matches_serial_counts(self):
        from repro.obs import metrics as obs_metrics

        params = [{"n": 8}, {"n": 9}, {"n": 10}, {"n": 11}]
        obs_metrics.reset_metrics()
        serial = parallel_sweep(measure_two_sweep, params, max_workers=1)
        serial_runs = self._sim_runs(obs_metrics.snapshot())
        assert serial_runs > 0

        obs_metrics.reset_metrics()
        pooled = parallel_sweep(measure_two_sweep, params, max_workers=2)
        pooled_runs = self._sim_runs(obs_metrics.snapshot())
        # Same trials, same per-run instrumentation: the merged worker
        # deltas must account for exactly the serial total -- neither
        # lost (deltas dropped) nor doubled (same-pid re-merge).
        assert pooled_runs == serial_runs
        assert list(pooled) == list(serial)

    def test_metrics_key_stripped_from_records(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset_metrics()
        records = parallel_sweep(
            measure_two_sweep, [{"n": 8}, {"n": 9}], max_workers=2,
        )
        assert all("__metrics__" not in record for record in records)

    def test_rounds_and_messages_merge(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset_metrics()
        parallel_sweep(measure_two_sweep, [{"n": 8}], max_workers=2)
        snap = obs_metrics.snapshot()
        rounds = sum(
            s["value"]
            for s in snap["repro_sim_rounds_total"]["samples"]
        )
        messages = sum(
            s["value"]
            for s in snap["repro_sim_messages_total"]["samples"]
        )
        assert rounds > 0
        assert messages > 0
