"""Tests for the static network topology."""

from __future__ import annotations

import pytest

from repro.graphs import complete_graph, path_graph, ring_graph
from repro.sim import Network, NetworkError


class TestConstruction:
    def test_from_edges(self):
        network = Network.from_edges([1, 2, 3], [(1, 2), (2, 3)])
        assert network.degree(2) == 2
        assert network.degree(1) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkError):
            Network({0: [0]})

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(NetworkError):
            Network({0: [1]})

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(NetworkError):
            Network({0: [1], 1: []})

    def test_duplicate_neighbors_deduplicated(self):
        network = Network({0: [1, 1], 1: [0]})
        assert network.degree(0) == 1

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(NetworkError):
            Network.from_edges([0], [(0, 7)])

    def test_from_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.cycle_graph(5)
        network = Network.from_networkx(graph)
        assert len(network) == 5
        assert network.edge_count() == 5


class TestQueries:
    def test_len_iter_contains(self):
        network = path_graph(4)
        assert len(network) == 4
        assert set(network) == {0, 1, 2, 3}
        assert 2 in network
        assert 9 not in network

    def test_neighbors_and_sets(self):
        network = ring_graph(5)
        assert set(network.neighbors(0)) == {1, 4}
        assert network.neighbor_set(0) == frozenset({1, 4})

    def test_unknown_node_raises(self):
        network = path_graph(3)
        with pytest.raises(NetworkError):
            network.neighbors(99)
        with pytest.raises(NetworkError):
            network.neighbor_set(99)

    def test_has_edge(self):
        network = path_graph(3)
        assert network.has_edge(0, 1)
        assert not network.has_edge(0, 2)

    def test_max_degree_floored_at_two(self):
        assert path_graph(2).max_degree() == 2
        assert path_graph(2).raw_max_degree() == 1

    def test_edges_enumerated_once(self):
        network = complete_graph(4)
        edges = list(network.edges())
        assert len(edges) == 6
        assert network.edge_count() == 6
        as_sets = [frozenset(edge) for edge in edges]
        assert len(set(as_sets)) == 6


class TestSubgraph:
    def test_induced_subgraph(self):
        network = ring_graph(6)
        sub = network.subgraph([0, 1, 2])
        assert len(sub) == 3
        assert sub.edge_count() == 2  # 0-1, 1-2; the 0-5 edge is gone

    def test_subgraph_unknown_node_rejected(self):
        with pytest.raises(NetworkError):
            path_graph(3).subgraph([0, 42])

    def test_empty_subgraph(self):
        sub = path_graph(3).subgraph([])
        assert len(sub) == 0
        assert sub.edge_count() == 0


class TestNetworkxExport:
    def test_roundtrip(self):
        networkx = pytest.importorskip("networkx")
        original = ring_graph(7)
        exported = original.to_networkx()
        assert exported.number_of_nodes() == 7
        assert exported.number_of_edges() == 7
        back = Network.from_networkx(exported)
        assert set(back.edges()) == set(original.edges())
