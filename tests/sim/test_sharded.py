"""The sharded engine: partition, halo exchange, byte-identity, stats.

The acceptance contract is absolute: for every shard count, both
execution modes (in-process serial shards and the persistent worker
lanes), and both kernel backends, colors, ledgers, exception order, and
the canonical logical trace stream must be byte-identical to the serial
vectorized engine.  Process mode is exercised by dropping
``MIN_SHARD_NODES`` so modest streamed topologies take the worker-lane
path for real -- halo state crossing an actual shared-memory segment.
"""

from __future__ import annotations

import pytest

from repro.graphs.streaming import (
    inflated_seed_coloring,
    stream_gnp,
    stream_grid,
    stream_regular,
    stream_ring,
)
from repro.obs import Tracer, canonical_lines, use_tracer
from repro.sim import (
    CongestModel,
    CostLedger,
    AlgorithmFailure,
    default_shards,
    reset_shard_stats,
    run_protocol,
    set_default_shards,
    shard_stats,
    use_engine,
    use_shards,
)
from repro.sim import sharded
from repro.substrates.greedy import (
    _ColorReductionProgram,
    greedy_color_reduction,
)


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_shard_stats()
    yield
    reset_shard_stats()


def _ledger_state(ledger: CostLedger):
    return (
        ledger.rounds, ledger.messages, ledger.bits,
        ledger.max_message_bits, ledger.broadcasts,
        {
            name: (stats.rounds, stats.messages, stats.bits,
                   stats.max_message_bits, stats.broadcasts,
                   stats.invocations)
            for name, stats in ledger.phases.items()
        },
    )


def _reduce(compiled, bandwidth=None):
    """The scale workload on a streamed CSR: palette down to Delta+1."""
    target = compiled.raw_max_degree() + 1
    colors, q = inflated_seed_coloring(compiled, max(14, 2 * target))
    ledger = CostLedger()
    result = greedy_color_reduction(compiled, colors, q, target,
                                    ledger=ledger, bandwidth=bandwidth)
    return result, ledger


class TestShardsAPI:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(sharded.SHARDS_ENV, raising=False)
        assert default_shards() == 1

    def test_env_read_dynamically(self, monkeypatch):
        monkeypatch.setenv(sharded.SHARDS_ENV, "3")
        assert default_shards() == 3
        monkeypatch.setenv(sharded.SHARDS_ENV, "junk")
        assert default_shards() == 1

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(sharded.SHARDS_ENV, "3")
        previous = set_default_shards(5)
        try:
            assert default_shards() == 5
        finally:
            sharded._shards_override = None
        assert previous == 3

    def test_set_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_default_shards(0)

    def test_use_shards_restores(self):
        before = default_shards()
        with use_shards(4):
            assert default_shards() == 4
            with use_shards(2):
                assert default_shards() == 2
            assert default_shards() == 4
        assert default_shards() == before


class TestFallbackChain:
    def test_single_shard_falls_back(self):
        compiled = stream_ring(64)
        with use_engine("sharded"), use_shards(1):
            result, ledger = _reduce(compiled)
        stats = shard_stats()
        assert stats["engaged"] == 0
        assert stats["by_reason"].get("single-shard") == 1
        assert ledger.rounds > 0

    def test_unregistered_program_falls_back(self):
        from repro.sim import NodeProgram

        class Anon(NodeProgram):
            def on_round(self, ctx):
                ctx.halt()

        compiled = stream_ring(32)
        programs = {node: Anon() for node in compiled.order}
        with use_engine("sharded"), use_shards(2):
            run_protocol(compiled, programs)
        assert shard_stats()["by_reason"].get("unregistered") == 1

    def test_engaged_run_records_stats(self):
        compiled = stream_ring(96)
        with use_engine("sharded"), use_shards(2):
            _reduce(compiled)
        stats = shard_stats()
        assert stats["engaged"] == 1
        assert stats["by_shards"] == {2: 1}
        last = stats["last_run"]
        assert last["shards"] == 2
        assert last["rounds"] > 0
        assert len(last["per_shard"]) == 2
        for entry in last["per_shard"]:
            assert entry["nodes"] > 0
            assert entry["barrier_wait_s"] >= 0.0
            assert entry["halo_in_bytes"] >= 0


class TestSerialShardIdentity:
    """Satellite property test: shard counts x streamed families.

    ``stream_*`` topologies are CSR-direct (dense ``range`` order), the
    regime the engine is built for; every observable -- colors, full
    ledger state, canonical logical trace -- must be byte-identical to
    the serial vectorized engine for every shard count.
    """

    TOPOLOGIES = {
        "ring": lambda: stream_ring(240),
        "grid": lambda: stream_grid(14, 14),
        "gnp": lambda: stream_gnp(220, 0.03, seed=7),
        "regular": lambda: stream_regular(210, 4, seed=11),
    }

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_identical_to_vectorized(self, topology, shards):
        compiled = self.TOPOLOGIES[topology]()
        ref_tracer = Tracer()
        with use_engine("vectorized"), use_tracer(ref_tracer):
            ref_result, ref_ledger = _reduce(compiled)
        tracer = Tracer()
        with use_engine("sharded"), use_shards(shards), \
                use_tracer(tracer):
            result, ledger = _reduce(compiled)
        assert result == ref_result
        assert _ledger_state(ledger) == _ledger_state(ref_ledger)
        assert canonical_lines(tracer.events) == \
            canonical_lines(ref_tracer.events)
        if shards > 1:
            assert shard_stats()["engaged"] == 1

    def test_congest_identical(self):
        compiled = stream_ring(180)
        bandwidth = CongestModel(180, factor=64)
        with use_engine("vectorized"):
            ref_result, ref_ledger = _reduce(compiled, bandwidth)
        with use_engine("sharded"), use_shards(3):
            result, ledger = _reduce(compiled, bandwidth)
        assert result == ref_result
        assert _ledger_state(ledger) == _ledger_state(ref_ledger)


def _infeasible_programs(n=8):
    """A ring population engineered to fail during reduction.

    ``target=1`` is below Delta+1, so the first decider whose stale
    neighborhood occupies color 0 has no free color below the target --
    node 0 here, making the expected exception order unambiguous.
    """
    compiled = stream_ring(n)
    colors = [(i % 4 + 3) % 4 for i in range(n)]  # 3,0,1,2,3,0,...
    programs = {
        i: _ColorReductionProgram(i, colors[i], 4, 1) for i in range(n)
    }
    return compiled, programs


class TestFailureSemantics:
    def test_failure_matches_vectorized(self):
        errors = {}
        ledgers = {}
        for engine, shards in (("vectorized", 1), ("sharded", 2),
                               ("sharded", 4)):
            compiled, programs = _infeasible_programs()
            ledger = CostLedger()
            with use_engine(engine), use_shards(shards):
                with pytest.raises(AlgorithmFailure) as info:
                    run_protocol(compiled, programs, ledger=ledger)
            errors[(engine, shards)] = str(info.value)
            ledgers[(engine, shards)] = _ledger_state(ledger)
        assert errors[("sharded", 2)] == errors[("vectorized", 1)]
        assert errors[("sharded", 4)] == errors[("vectorized", 1)]
        assert "node 0" in errors[("vectorized", 1)]
        assert ledgers[("sharded", 2)] == ledgers[("vectorized", 1)]
        assert ledgers[("sharded", 4)] == ledgers[("vectorized", 1)]


class TestProcessMode:
    """Worker-lane execution over a real shared-memory state segment."""

    @pytest.fixture()
    def small_threshold(self, monkeypatch):
        monkeypatch.setattr(sharded, "MIN_SHARD_NODES", 128)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_identical_to_vectorized(self, small_threshold, shards):
        compiled = stream_ring(1500)
        with use_engine("vectorized"):
            ref_result, ref_ledger = _reduce(compiled)
        with use_engine("sharded"), use_shards(shards):
            result, ledger = _reduce(compiled)
        assert result == ref_result
        assert _ledger_state(ledger) == _ledger_state(ref_ledger)
        stats = shard_stats()
        assert stats["engaged"] == 1
        last = stats["last_run"]
        if last["mode"] == "process":
            # Ring halos are two boundary nodes per shard; some round
            # must actually move bytes through the segment.
            assert last["halo_bytes"] > 0
        else:  # pragma: no cover - pools unusable in this sandbox
            assert last["mode"] == "serial"

    def test_repeat_runs_reuse_lanes(self, small_threshold):
        compiled = stream_ring(1500)
        with use_engine("sharded"), use_shards(2):
            first, _ = _reduce(compiled)
            second, _ = _reduce(compiled)
        assert first == second
        stats = shard_stats()
        assert stats["engaged"] == 2

    def test_congest_identical_in_process_mode(self, small_threshold):
        compiled = stream_ring(1200)
        bandwidth = CongestModel(1200, factor=64)
        with use_engine("vectorized"):
            ref_result, ref_ledger = _reduce(compiled, bandwidth)
        with use_engine("sharded"), use_shards(2):
            result, ledger = _reduce(compiled, bandwidth)
        assert result == ref_result
        assert _ledger_state(ledger) == _ledger_state(ref_ledger)

    def test_failure_crosses_process_boundary(self, small_threshold):
        compiled, programs = _infeasible_programs(400)
        with use_engine("vectorized"):
            ref_programs = {
                i: _ColorReductionProgram(i, (i % 4 + 3) % 4, 4, 1)
                for i in range(400)
            }
            with pytest.raises(AlgorithmFailure) as ref_info:
                run_protocol(compiled, ref_programs)
        with use_engine("sharded"), use_shards(2):
            with pytest.raises(AlgorithmFailure) as info:
                run_protocol(compiled, programs)
        assert str(info.value) == str(ref_info.value)


class TestTracePhysicalFields:
    def test_shard_annotations_are_physical_only(self):
        """Shard telemetry must never leak into the logical stream."""
        from repro.obs.tracer import logical_view

        compiled = stream_ring(96)
        tracer = Tracer()
        with use_engine("sharded"), use_shards(2), use_tracer(tracer):
            _reduce(compiled)
        shard_events = [e for e in tracer.events
                        if e.get("kind") == "kernel"
                        and e.get("name") == "shard"]
        assert len(shard_events) == 2
        for event in shard_events:
            assert event["halo_bytes"] >= 0
            assert event["barrier_wait_s"] >= 0.0
        for event in logical_view(tracer.events):
            assert event.get("name") != "shard"
            for field in ("shard", "shards", "halo_bytes",
                          "barrier_wait_s"):
                assert field not in event
