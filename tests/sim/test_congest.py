"""Tests for the LOCAL/CONGEST bandwidth models."""

from __future__ import annotations

import pytest

from repro.graphs import path_graph
from repro.sim import (
    BandwidthExceeded,
    CongestModel,
    LocalModel,
    Message,
    NodeProgram,
    run_protocol,
)


class TestLocalModel:
    def test_unbounded(self):
        model = LocalModel()
        model.check(Message("a", "b", "t", bits=10 ** 9))
        assert model.budget_bits() is None


class TestCongestModel:
    def test_budget_formula(self):
        model = CongestModel(n=1024, factor=2)
        assert model.budget_bits() == 2 * 10

    def test_extra_bits_widen_budget(self):
        base = CongestModel(n=1024, factor=1)
        wide = CongestModel(n=1024, factor=1, extra_bits=6)
        assert wide.budget_bits() == base.budget_bits() + 6

    def test_small_message_passes(self):
        model = CongestModel(n=16, factor=8)
        model.check(Message("a", "b", "t", bits=16))

    def test_oversized_message_rejected(self):
        model = CongestModel(n=16, factor=1)
        with pytest.raises(BandwidthExceeded) as excinfo:
            model.check(Message("a", "b", "t", bits=1000))
        assert excinfo.value.bits == 1000
        assert excinfo.value.sender == "a"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CongestModel(n=0)
        with pytest.raises(ValueError):
            CongestModel(n=4, factor=0)


class TestEnforcementInScheduler:
    def test_protocol_killed_on_violation(self):
        class BigTalker(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("blob", None, bits=10 ** 6)
                ctx.halt()

        network = path_graph(2)
        programs = {node: BigTalker() for node in network}
        with pytest.raises(BandwidthExceeded):
            run_protocol(
                network, programs, bandwidth=CongestModel(n=2, factor=8)
            )

    def test_protocol_passes_within_budget(self):
        class SmallTalker(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("bit", None, bits=1)
                ctx.halt()

        network = path_graph(2)
        programs = {node: SmallTalker() for node in network}
        _, ledger = run_protocol(
            network, programs, bandwidth=CongestModel(n=2, factor=8)
        )
        assert ledger.max_message_bits == 1
