"""Reference vs fast vs vectorized engines: byte-identical behavior.

The reference engine is the oracle.  The fast path (compiled topology,
active-set scheduling, buffer reuse, batched ledger charging) and the
vectorized path (array-at-a-time round kernels with transparent
fallback to fast) must both be observationally identical to it.  These
tests run representative protocols -- Two-Sweep (Algorithm 1), Linial's
coloring, greedy color reduction, the greedy arbdefective sweep, and
the seeded randomized baseline -- over random topologies through all
three engines and assert equal node outputs, rounds, messages, bit
totals, max message size, broadcast counts, and per-phase breakdowns.
Protocols without a registered kernel (and mixed-class populations)
exercise the vectorized engine's fallback, which must be just as
invisible.

The equivalence invariant extends to telemetry: every protocol run in
``test_engines_agree`` happens under an installed
:class:`repro.obs.Tracer`, and the *logical* trace event stream
(:func:`repro.obs.canonical_lines` -- physical fields like wall-clock,
pid, and engine stripped) must be byte-identical across engines.
Tracing itself must also not perturb any of the original assertions.
"""

from __future__ import annotations

import pytest

from repro.coloring import (
    random_arbdefective_instance,
    random_oldc_instance,
)
from repro.obs import Tracer, canonical_lines, use_tracer
from repro.core import fast_two_sweep, two_sweep
from repro.graphs import (
    binary_tree,
    complete_graph,
    gnp_graph,
    orient_by_id,
    random_bounded_degree_graph,
    random_ids,
    sequential_ids,
)
from repro.sim import (
    CongestModel,
    CostLedger,
    NodeProgram,
    RoundObserver,
    Scheduler,
    SchedulerError,
    default_engine,
    run_protocol,
    set_default_engine,
    use_engine,
    use_shards,
)
from repro.substrates import (
    greedy_arbdefective_sweep,
    greedy_color_reduction,
    linial_coloring,
    randomized_delta_plus_one,
)

#: The engines measured against the reference oracle.  ``sharded`` at
#: the default single shard exercises its fallback chain (it must be as
#: invisible as the vectorized engine's); real multi-shard execution is
#: covered by ``test_sharded_engine_agrees`` below.
CANDIDATE_ENGINES = ("fast", "vectorized", "sharded")


@pytest.fixture(params=["python", "numpy"])
def backend(request, monkeypatch):
    """Run the matrix once per kernel column backend.

    The ``numpy`` leg pins the array backend on and drops the size
    thresholds so even these deliberately small topologies take the
    batched paths; the ``python`` leg forces the pure-Python columns.
    Reference stays the oracle in both legs.
    """
    from repro.sim import arrays

    if request.param == "numpy":
        if arrays._import_numpy() is None:
            pytest.skip("NumPy not installed")
        monkeypatch.setattr(arrays, "MIN_BATCH", 0)
        monkeypatch.setattr(arrays, "MIN_TALLY", 0)
        previous = arrays.set_arrays_override(True)
    else:
        previous = arrays.set_arrays_override(False)
    yield request.param
    arrays.set_arrays_override(previous)


def _ledger_state(ledger: CostLedger):
    return (
        ledger.rounds,
        ledger.messages,
        ledger.bits,
        ledger.max_message_bits,
        ledger.broadcasts,
        {
            name: (stats.rounds, stats.messages, stats.bits,
                   stats.max_message_bits, stats.broadcasts,
                   stats.invocations)
            for name, stats in ledger.phases.items()
        },
    )


TOPOLOGIES = {
    "gnp": lambda seed: gnp_graph(60, 0.1, seed=seed),
    "tree": lambda seed: binary_tree(5),
    "clique": lambda seed: complete_graph(12),
    "bounded": lambda seed: random_bounded_degree_graph(70, 5, seed=seed),
}


def run_two_sweep(network):
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=17)
    ledger = CostLedger()
    result = two_sweep(
        instance, sequential_ids(network), len(network), 2, ledger=ledger
    )
    return result.colors, ledger


def run_fast_two_sweep(network):
    # 18-bit random identifiers put q far above (p / eps)^2 + log* q,
    # so this takes Algorithm 2's defective-coloring route: the
    # AlgebraicRecoloringKernel feeds the TwoSweepKernel end to end.
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=29, epsilon=0.5)
    ledger = CostLedger()
    result = fast_two_sweep(
        instance, random_ids(network, seed=29, bits=18),
        2 ** 18, 2, 0.5, ledger=ledger,
    )
    return result.colors, ledger


def run_linial(network):
    ledger = CostLedger()
    colors, palette = linial_coloring(
        network, sequential_ids(network), len(network), ledger=ledger
    )
    return (colors, palette), ledger


def run_greedy_sweep(network):
    instance = random_arbdefective_instance(
        network, slack=1.5, seed=23,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ledger = CostLedger()
    result = greedy_arbdefective_sweep(
        instance, sequential_ids(network), len(network), ledger=ledger
    )
    return (result.colors, result.orientation), ledger


def run_randomized(network):
    ledger = CostLedger()
    result = randomized_delta_plus_one(network, seed=31, ledger=ledger)
    return result.colors, ledger


def run_color_reduction(network):
    # sequential ids form a proper n-coloring; reduce it to Delta + 1.
    ledger = CostLedger()
    colors = greedy_color_reduction(
        network, sequential_ids(network), len(network),
        network.raw_max_degree() + 1, ledger=ledger,
    )
    return colors, ledger


PROTOCOLS = {
    "two_sweep": run_two_sweep,
    "fast_two_sweep": run_fast_two_sweep,
    "linial": run_linial,
    "color_reduction": run_color_reduction,
    "greedy_sweep": run_greedy_sweep,
    "randomized": run_randomized,
}


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_engines_agree(protocol, topology, backend):
    build = TOPOLOGIES[topology]
    run = PROTOCOLS[protocol]
    ref_tracer = Tracer()
    with use_engine("reference"), use_tracer(ref_tracer):
        ref_out, ref_ledger = run(build(seed=5))
    # Some (protocol, topology) pairs legitimately trace nothing (e.g. a
    # color reduction that is already at target runs zero rounds); the
    # empty stream must then be empty on every engine too.
    ref_stream = canonical_lines(ref_tracer.events)
    for engine in CANDIDATE_ENGINES:
        tracer = Tracer()
        with use_engine(engine), use_tracer(tracer):
            out, ledger = run(build(seed=5))
        assert out == ref_out, engine
        assert _ledger_state(ledger) == _ledger_state(ref_ledger), engine
        # The logical trace stream is part of the observational contract:
        # identical bytes once physical (timing/pid/engine) fields go.
        assert canonical_lines(tracer.events) == ref_stream, engine


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_sharded_engine_agrees(topology, shards, backend):
    """Multi-shard execution is byte-identical to the reference engine.

    Color reduction is the protocol with a registered shard spec, so
    these runs genuinely partition the graph (serially in-process at
    this size) rather than falling back.  Outputs, the full ledger
    state, and the canonical logical trace stream must all match for
    every shard count.
    """
    build = TOPOLOGIES[topology]
    ref_tracer = Tracer()
    with use_engine("reference"), use_tracer(ref_tracer):
        ref_out, ref_ledger = run_color_reduction(build(seed=5))
    tracer = Tracer()
    with use_engine("sharded"), use_shards(shards), use_tracer(tracer):
        out, ledger = run_color_reduction(build(seed=5))
    assert out == ref_out, shards
    assert _ledger_state(ledger) == _ledger_state(ref_ledger), shards
    assert canonical_lines(tracer.events) == \
        canonical_lines(ref_tracer.events), shards


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_congest_agrees(shards, backend):
    """CONGEST accounting through real shards matches the reference."""
    states = {}
    outputs = {}
    for engine, count in (("reference", 1), ("sharded", shards)):
        network = gnp_graph(50, 0.12, seed=13)
        with use_engine(engine), use_shards(count):
            out, ledger = _with_congest(run_color_reduction, network)
        outputs[engine] = out
        states[engine] = _ledger_state(ledger)
    assert outputs["sharded"] == outputs["reference"]
    assert states["sharded"] == states["reference"]


class _EchoHalt(NodeProgram):
    """Broadcast once, record round-2 inbox, halt."""

    def __init__(self, node):
        self.node = node
        self.heard = ()

    def on_round(self, ctx):
        if ctx.round_number == 1:
            ctx.broadcast("id", self.node)
            return
        self.heard = tuple(
            (message.sender, message.payload) for message in ctx.inbox
        )
        ctx.halt()

    def output(self):
        return self.heard


def test_inbox_order_matches_reference():
    """Message delivery order inside an inbox is engine-independent.

    ``_EchoHalt`` has no registered kernel, so the vectorized engine
    silently falls back to fast here -- and must still match.
    """
    network = gnp_graph(40, 0.2, seed=9)
    results = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        programs = {node: _EchoHalt(node) for node in network}
        outputs, _ = run_protocol(network, programs, engine=engine)
        results[engine] = outputs
    for engine in CANDIDATE_ENGINES:
        assert results[engine] == results["reference"]


def test_observer_sees_identical_records():
    """An attached observer forces the vectorized engine onto the fast
    path, so all three engines produce identical records."""
    network = gnp_graph(25, 0.2, seed=3)
    records = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        programs = {node: _EchoHalt(node) for node in network}
        observer = RoundObserver()
        scheduler = Scheduler(network, programs, observer=observer)
        scheduler.run(engine=engine)
        records[engine] = observer.records
    for engine in CANDIDATE_ENGINES:
        assert records[engine] == records["reference"]


def test_congest_model_equivalent():
    network = gnp_graph(30, 0.15, seed=7)
    states = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        programs = {node: _EchoHalt(node) for node in network}
        ledger = CostLedger()
        run_protocol(
            network, programs, bandwidth=CongestModel(len(network)),
            ledger=ledger, engine=engine,
        )
        states[engine] = _ledger_state(ledger)
    for engine in CANDIDATE_ENGINES:
        assert states[engine] == states["reference"]


@pytest.mark.parametrize(
    "protocol",
    ["linial", "color_reduction", "greedy_sweep", "two_sweep",
     "fast_two_sweep"],
)
def test_congest_on_kernelized_protocols(protocol, backend):
    """CONGEST accounting through the actual round kernels.

    These protocols have registered kernels (the Two-Sweep family runs
    through ``TwoSweepKernel``, Fast-Two-Sweep additionally through
    ``AlgebraicRecoloringKernel``), so the vectorized engine runs them
    array-at-a-time -- including the per-fan-out bandwidth checks -- and
    must reproduce the reference ledger exactly.
    """
    run = PROTOCOLS[protocol]
    states = {}
    outputs = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        network = gnp_graph(50, 0.12, seed=13)
        with use_engine(engine):
            out, ledger = _with_congest(run, network)
        outputs[engine] = out
        states[engine] = _ledger_state(ledger)
    for engine in CANDIDATE_ENGINES:
        assert outputs[engine] == outputs["reference"]
        assert states[engine] == states["reference"]


def _with_congest(run, network):
    """Re-run a PROTOCOLS entry with a CONGEST model injected.

    The runners build their own ledgers, so rather than duplicating
    them we call the underlying substrate directly for the kernelized
    protocols (generous budget: the checks must pass, not trip).
    """
    bandwidth = CongestModel(len(network), factor=64)
    if run is run_two_sweep:
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=17)
        ledger = CostLedger()
        result = two_sweep(
            instance, sequential_ids(network), len(network), 2,
            ledger=ledger, bandwidth=bandwidth,
        )
        return result.colors, ledger
    if run is run_fast_two_sweep:
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=29, epsilon=0.5)
        ledger = CostLedger()
        result = fast_two_sweep(
            instance, random_ids(network, seed=29, bits=18),
            2 ** 18, 2, 0.5, ledger=ledger, bandwidth=bandwidth,
        )
        return result.colors, ledger
    if run is run_linial:
        ledger = CostLedger()
        colors, palette = linial_coloring(
            network, sequential_ids(network), len(network),
            ledger=ledger, bandwidth=bandwidth,
        )
        return (colors, palette), ledger
    if run is run_color_reduction:
        ledger = CostLedger()
        colors = greedy_color_reduction(
            network, sequential_ids(network), len(network),
            network.raw_max_degree() + 1,
            ledger=ledger, bandwidth=bandwidth,
        )
        return colors, ledger
    instance = random_arbdefective_instance(
        network, slack=1.5, seed=23,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ledger = CostLedger()
    result = greedy_arbdefective_sweep(
        instance, sequential_ids(network), len(network),
        ledger=ledger, bandwidth=bandwidth,
    )
    return (result.colors, result.orientation), ledger


def test_mixed_program_population_falls_back():
    """Two program classes in one network: the vectorized engine must
    detect the mix, fall back, and stay indistinguishable."""
    network = gnp_graph(30, 0.15, seed=21)
    results = {}
    states = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        programs = {
            node: (_Storm(node, 3) if node % 2 else _EchoHalt(node))
            for node in network
        }
        ledger = CostLedger()
        outs, _ = run_protocol(
            network, programs, ledger=ledger, engine=engine
        )
        results[engine] = outs
        states[engine] = _ledger_state(ledger)
    for engine in CANDIDATE_ENGINES:
        assert results[engine] == results["reference"]
        assert states[engine] == states["reference"]


class _Storm(NodeProgram):
    """Broadcast every round; keep a transcript of every inbox."""

    def __init__(self, node, rounds):
        self.node = node
        self.rounds = rounds
        self.transcript = []

    def on_round(self, ctx):
        self.transcript.append(tuple(
            (message.sender, message.tag, message.payload)
            for message in ctx.inbox
        ))
        if ctx.round_number > self.rounds:
            ctx.halt()
            return
        ctx.broadcast("storm", (self.node, ctx.round_number))

    def output(self):
        return tuple(self.transcript)


@pytest.mark.parametrize("congest", [False, True])
def test_broadcast_storm_on_clique_matches(congest):
    """Every node broadcasts every round: the dense fan-out fast path.

    The shared-envelope delivery and its analytic accounting (count *
    size, one bandwidth check per fan-out) must be indistinguishable
    from the reference engine's per-copy transcription: same inbox
    contents and order every round, same ledger down to the broadcast
    counter, with and without the CONGEST checker.
    """
    size, rounds = 12, 7
    outputs = {}
    states = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        network = complete_graph(size)
        programs = {node: _Storm(node, rounds) for node in network}
        ledger = CostLedger()
        bandwidth = CongestModel(4 * size) if congest else None
        outs, _ = run_protocol(
            network, programs, bandwidth=bandwidth,
            ledger=ledger, engine=engine,
        )
        outputs[engine] = outs
        states[engine] = _ledger_state(ledger)
    for engine in CANDIDATE_ENGINES:
        assert outputs[engine] == outputs["reference"]
        assert states[engine] == states["reference"]
    # Sanity: the totals are what a clique storm analytically produces.
    rounds_run, messages, _, _, broadcasts, _ = states["fast"]
    assert broadcasts == size * rounds
    assert messages == size * (size - 1) * rounds
    assert rounds_run == rounds + 1


def test_late_messages_to_halted_nodes_match():
    """Dropped-late-message semantics (and their extra round) agree."""

    class SendThenHalt(NodeProgram):
        def on_round(self, ctx):
            ctx.broadcast("x", 1)
            ctx.halt()

    class HaltNow(NodeProgram):
        def on_round(self, ctx):
            ctx.halt()

    rounds = {}
    for engine in ("reference",) + CANDIDATE_ENGINES:
        network = complete_graph(2)
        programs = {0: HaltNow(), 1: SendThenHalt()}
        _, ledger = run_protocol(network, programs, engine=engine)
        rounds[engine] = ledger.rounds
    for engine in CANDIDATE_ENGINES:
        assert rounds[engine] == rounds["reference"] == 2


def test_unknown_engine_rejected():
    network = complete_graph(2)
    programs = {node: _EchoHalt(node) for node in network}
    scheduler = Scheduler(network, programs)
    with pytest.raises(SchedulerError):
        scheduler.run(engine="warp")
    with pytest.raises(SchedulerError):
        set_default_engine("warp")


def test_use_engine_restores_default():
    before = default_engine()
    with use_engine("reference"):
        assert default_engine() == "reference"
    assert default_engine() == before
