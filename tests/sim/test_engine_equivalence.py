"""Fast engine vs reference engine: byte-identical behavior.

The fast scheduler path (compiled topology, active-set scheduling,
buffer reuse, batched ledger charging) must be observationally identical
to the reference transcription of the model.  These tests run
representative protocols -- Two-Sweep (Algorithm 1), Linial's coloring,
the greedy arbdefective sweep, and the seeded randomized baseline --
over random topologies through both engines and assert equal node
outputs, rounds, messages, bit totals, max message size, and per-phase
breakdowns.
"""

from __future__ import annotations

import pytest

from repro.coloring import (
    random_arbdefective_instance,
    random_oldc_instance,
)
from repro.core import two_sweep
from repro.graphs import (
    binary_tree,
    complete_graph,
    gnp_graph,
    orient_by_id,
    random_bounded_degree_graph,
    sequential_ids,
)
from repro.sim import (
    CongestModel,
    CostLedger,
    NodeProgram,
    RoundObserver,
    Scheduler,
    SchedulerError,
    default_engine,
    run_protocol,
    set_default_engine,
    use_engine,
)
from repro.substrates import (
    greedy_arbdefective_sweep,
    linial_coloring,
    randomized_delta_plus_one,
)


def _ledger_state(ledger: CostLedger):
    return (
        ledger.rounds,
        ledger.messages,
        ledger.bits,
        ledger.max_message_bits,
        ledger.broadcasts,
        {
            name: (stats.rounds, stats.messages, stats.bits,
                   stats.max_message_bits, stats.broadcasts,
                   stats.invocations)
            for name, stats in ledger.phases.items()
        },
    )


TOPOLOGIES = {
    "gnp": lambda seed: gnp_graph(60, 0.1, seed=seed),
    "tree": lambda seed: binary_tree(5),
    "clique": lambda seed: complete_graph(12),
    "bounded": lambda seed: random_bounded_degree_graph(70, 5, seed=seed),
}


def run_two_sweep(network):
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=17)
    ledger = CostLedger()
    result = two_sweep(
        instance, sequential_ids(network), len(network), 2, ledger=ledger
    )
    return result.colors, ledger


def run_linial(network):
    ledger = CostLedger()
    colors, palette = linial_coloring(
        network, sequential_ids(network), len(network), ledger=ledger
    )
    return (colors, palette), ledger


def run_greedy_sweep(network):
    instance = random_arbdefective_instance(
        network, slack=1.5, seed=23,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ledger = CostLedger()
    result = greedy_arbdefective_sweep(
        instance, sequential_ids(network), len(network), ledger=ledger
    )
    return (result.colors, result.orientation), ledger


def run_randomized(network):
    ledger = CostLedger()
    result = randomized_delta_plus_one(network, seed=31, ledger=ledger)
    return result.colors, ledger


PROTOCOLS = {
    "two_sweep": run_two_sweep,
    "linial": run_linial,
    "greedy_sweep": run_greedy_sweep,
    "randomized": run_randomized,
}


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_engines_agree(protocol, topology):
    build = TOPOLOGIES[topology]
    run = PROTOCOLS[protocol]
    with use_engine("reference"):
        ref_out, ref_ledger = run(build(seed=5))
    with use_engine("fast"):
        fast_out, fast_ledger = run(build(seed=5))
    assert fast_out == ref_out
    assert _ledger_state(fast_ledger) == _ledger_state(ref_ledger)


class _EchoHalt(NodeProgram):
    """Broadcast once, record round-2 inbox, halt."""

    def __init__(self, node):
        self.node = node
        self.heard = ()

    def on_round(self, ctx):
        if ctx.round_number == 1:
            ctx.broadcast("id", self.node)
            return
        self.heard = tuple(
            (message.sender, message.payload) for message in ctx.inbox
        )
        ctx.halt()

    def output(self):
        return self.heard


def test_inbox_order_matches_reference():
    """Message delivery order inside an inbox is engine-independent."""
    network = gnp_graph(40, 0.2, seed=9)
    results = {}
    for engine in ("reference", "fast"):
        programs = {node: _EchoHalt(node) for node in network}
        outputs, _ = run_protocol(network, programs, engine=engine)
        results[engine] = outputs
    assert results["fast"] == results["reference"]


def test_observer_sees_identical_records():
    network = gnp_graph(25, 0.2, seed=3)
    records = {}
    for engine in ("reference", "fast"):
        programs = {node: _EchoHalt(node) for node in network}
        observer = RoundObserver()
        scheduler = Scheduler(network, programs, observer=observer)
        scheduler.run(engine=engine)
        records[engine] = observer.records
    assert records["fast"] == records["reference"]


def test_congest_model_equivalent():
    network = gnp_graph(30, 0.15, seed=7)
    states = {}
    for engine in ("reference", "fast"):
        programs = {node: _EchoHalt(node) for node in network}
        ledger = CostLedger()
        run_protocol(
            network, programs, bandwidth=CongestModel(len(network)),
            ledger=ledger, engine=engine,
        )
        states[engine] = _ledger_state(ledger)
    assert states["fast"] == states["reference"]


class _Storm(NodeProgram):
    """Broadcast every round; keep a transcript of every inbox."""

    def __init__(self, node, rounds):
        self.node = node
        self.rounds = rounds
        self.transcript = []

    def on_round(self, ctx):
        self.transcript.append(tuple(
            (message.sender, message.tag, message.payload)
            for message in ctx.inbox
        ))
        if ctx.round_number > self.rounds:
            ctx.halt()
            return
        ctx.broadcast("storm", (self.node, ctx.round_number))

    def output(self):
        return tuple(self.transcript)


@pytest.mark.parametrize("congest", [False, True])
def test_broadcast_storm_on_clique_matches(congest):
    """Every node broadcasts every round: the dense fan-out fast path.

    The shared-envelope delivery and its analytic accounting (count *
    size, one bandwidth check per fan-out) must be indistinguishable
    from the reference engine's per-copy transcription: same inbox
    contents and order every round, same ledger down to the broadcast
    counter, with and without the CONGEST checker.
    """
    size, rounds = 12, 7
    outputs = {}
    states = {}
    for engine in ("reference", "fast"):
        network = complete_graph(size)
        programs = {node: _Storm(node, rounds) for node in network}
        ledger = CostLedger()
        bandwidth = CongestModel(4 * size) if congest else None
        outs, _ = run_protocol(
            network, programs, bandwidth=bandwidth,
            ledger=ledger, engine=engine,
        )
        outputs[engine] = outs
        states[engine] = _ledger_state(ledger)
    assert outputs["fast"] == outputs["reference"]
    assert states["fast"] == states["reference"]
    # Sanity: the totals are what a clique storm analytically produces.
    rounds_run, messages, _, _, broadcasts, _ = states["fast"]
    assert broadcasts == size * rounds
    assert messages == size * (size - 1) * rounds
    assert rounds_run == rounds + 1


def test_late_messages_to_halted_nodes_match():
    """Dropped-late-message semantics (and their extra round) agree."""

    class SendThenHalt(NodeProgram):
        def on_round(self, ctx):
            ctx.broadcast("x", 1)
            ctx.halt()

    class HaltNow(NodeProgram):
        def on_round(self, ctx):
            ctx.halt()

    rounds = {}
    for engine in ("reference", "fast"):
        network = complete_graph(2)
        programs = {0: HaltNow(), 1: SendThenHalt()}
        _, ledger = run_protocol(network, programs, engine=engine)
        rounds[engine] = ledger.rounds
    assert rounds["fast"] == rounds["reference"] == 2


def test_unknown_engine_rejected():
    network = complete_graph(2)
    programs = {node: _EchoHalt(node) for node in network}
    scheduler = Scheduler(network, programs)
    with pytest.raises(SchedulerError):
        scheduler.run(engine="warp")
    with pytest.raises(SchedulerError):
        set_default_engine("warp")


def test_use_engine_restores_default():
    before = default_engine()
    with use_engine("reference"):
        assert default_engine() == "reference"
    assert default_engine() == before
