"""Tests for the synchronous round scheduler."""

from __future__ import annotations

import pytest

from repro.graphs import path_graph, ring_graph
from repro.sim import (
    CostLedger,
    Network,
    NetworkError,
    NodeProgram,
    RoundLimitExceeded,
    Scheduler,
    SchedulerError,
    run_protocol,
)


class HaltImmediately(NodeProgram):
    def on_round(self, ctx):
        ctx.halt()


class EchoOnce(NodeProgram):
    """Broadcast own id once, record what arrives, then halt."""

    def __init__(self, node):
        self.node = node
        self.heard = {}

    def on_round(self, ctx):
        if ctx.round_number == 1:
            ctx.broadcast("id", self.node)
            return
        self.heard = ctx.received("id")
        ctx.halt()

    def output(self):
        return dict(self.heard)


class CountDown(NodeProgram):
    def __init__(self, rounds):
        self.remaining = rounds

    def on_round(self, ctx):
        self.remaining -= 1
        if self.remaining <= 0:
            ctx.halt()


class TestLifecycle:
    def test_all_halt_first_round(self, small_ring):
        programs = {node: HaltImmediately() for node in small_ring}
        outputs, ledger = run_protocol(small_ring, programs)
        assert ledger.rounds == 1

    def test_messages_delivered_next_round(self):
        network = path_graph(3)
        programs = {node: EchoOnce(node) for node in network}
        outputs, ledger = run_protocol(network, programs)
        assert ledger.rounds == 2
        assert outputs[1] == {0: 0, 2: 2}
        assert outputs[0] == {1: 1}

    def test_round_counting(self, small_ring):
        programs = {node: CountDown(5) for node in small_ring}
        _, ledger = run_protocol(small_ring, programs)
        assert ledger.rounds == 5

    def test_heterogeneous_halting(self):
        network = path_graph(2)
        programs = {0: CountDown(1), 1: CountDown(7)}
        _, ledger = run_protocol(network, programs)
        assert ledger.rounds == 7


class TestValidation:
    def test_missing_program_rejected(self, small_ring):
        with pytest.raises(SchedulerError):
            Scheduler(small_ring, {0: HaltImmediately()})

    def test_extra_program_rejected(self):
        network = path_graph(2)
        programs = {0: HaltImmediately(), 1: HaltImmediately(),
                    9: HaltImmediately()}
        with pytest.raises(SchedulerError):
            Scheduler(network, programs)

    def test_message_to_non_neighbor_rejected(self):
        class BadSender(NodeProgram):
            def on_round(self, ctx):
                ctx.send(2, "tag", None)
                ctx.halt()

        network = path_graph(3)
        programs = {
            0: BadSender(), 1: HaltImmediately(), 2: HaltImmediately()
        }
        with pytest.raises(NetworkError):
            run_protocol(network, programs)

    def test_round_limit(self):
        class Forever(NodeProgram):
            def on_round(self, ctx):
                pass

        network = path_graph(2)
        programs = {0: Forever(), 1: Forever()}
        with pytest.raises(RoundLimitExceeded):
            run_protocol(network, programs, max_rounds=10)


class TestAccounting:
    def test_message_and_bit_totals(self):
        network = path_graph(2)

        class SendFive(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("x", None, bits=5)
                ctx.halt()

        programs = {node: SendFive() for node in network}
        _, ledger = run_protocol(network, programs)
        assert ledger.messages == 2
        assert ledger.bits == 10
        assert ledger.max_message_bits == 5

    def test_shared_ledger_accumulates_across_runs(self):
        network = path_graph(2)
        ledger = CostLedger()
        for _ in range(3):
            programs = {node: HaltImmediately() for node in network}
            run_protocol(network, programs, ledger=ledger)
        assert ledger.rounds == 3

    def test_late_messages_to_halted_nodes_are_dropped(self):
        # Node 0 halts in round 1; node 1 sends to it in round 1
        # (delivered round 2).  The run must still terminate cleanly.
        class SendThenHalt(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("x", 1)
                ctx.halt()

        network = path_graph(2)
        programs = {0: HaltImmediately(), 1: SendThenHalt()}
        _, ledger = run_protocol(network, programs)
        assert ledger.rounds == 2


class TestStopWhen:
    def test_oracle_stops_run(self):
        class Chatter(NodeProgram):
            def __init__(self):
                self.rounds_seen = 0

            def on_round(self, ctx):
                self.rounds_seen += 1
                ctx.broadcast("chat", None, bits=1)

        network = path_graph(2)
        programs = {node: Chatter() for node in network}
        _, ledger = run_protocol(
            network, programs,
            stop_when=lambda progs: all(
                p.rounds_seen >= 4 for p in progs.values()
            ),
        )
        assert ledger.rounds == 4

    def test_oracle_none_means_halt_based(self):
        network = path_graph(2)
        programs = {node: HaltImmediately() for node in network}
        _, ledger = run_protocol(network, programs, stop_when=None)
        assert ledger.rounds == 1
