"""Tests for the composable cost ledger."""

from __future__ import annotations

from repro.sim import CostLedger, ensure_ledger


class TestCharging:
    def test_charge_round_increments_everything(self):
        ledger = CostLedger()
        ledger.charge_round(messages=3, bits=12, max_message_bits=5)
        assert ledger.rounds == 1
        assert ledger.messages == 3
        assert ledger.bits == 12
        assert ledger.max_message_bits == 5

    def test_max_message_bits_is_a_max(self):
        ledger = CostLedger()
        ledger.charge_round(max_message_bits=5)
        ledger.charge_round(max_message_bits=3)
        assert ledger.max_message_bits == 5

    def test_charge_rounds_silent(self):
        ledger = CostLedger()
        ledger.charge_rounds(4)
        assert ledger.rounds == 4
        assert ledger.messages == 0


class TestPhases:
    def test_phase_attribution(self):
        ledger = CostLedger()
        with ledger.phase("alpha"):
            ledger.charge_round(messages=1)
        ledger.charge_round(messages=1)
        assert ledger.rounds == 2
        assert ledger.phase_rounds("alpha") == 1

    def test_nested_phases_both_charged(self):
        ledger = CostLedger()
        with ledger.phase("outer"):
            with ledger.phase("inner"):
                ledger.charge_round()
        assert ledger.phase_rounds("outer") == 1
        assert ledger.phase_rounds("inner") == 1

    def test_reentrant_phase_accumulates(self):
        ledger = CostLedger()
        for _ in range(3):
            with ledger.phase("loop"):
                ledger.charge_round()
        assert ledger.phase_rounds("loop") == 3
        assert ledger.phases["loop"].invocations == 3

    def test_unknown_phase_reports_zero(self):
        assert CostLedger().phase_rounds("nope") == 0


class TestMerge:
    def test_merge_adds_totals(self):
        a = CostLedger()
        b = CostLedger()
        a.charge_round(messages=2, bits=4, max_message_bits=4)
        b.charge_round(messages=1, bits=9, max_message_bits=9)
        a.merge(b)
        assert a.rounds == 2
        assert a.messages == 3
        assert a.bits == 13
        assert a.max_message_bits == 9

    def test_merge_unions_phases(self):
        a = CostLedger()
        b = CostLedger()
        with b.phase("only-b"):
            b.charge_round()
        a.merge(b)
        assert a.phase_rounds("only-b") == 1


class TestEnsureLedger:
    def test_passthrough(self):
        ledger = CostLedger()
        assert ensure_ledger(ledger) is ledger

    def test_creates_fresh(self):
        assert ensure_ledger(None).rounds == 0


class TestSummary:
    def test_summary_mentions_phases(self):
        ledger = CostLedger()
        with ledger.phase("solve"):
            ledger.charge_round(messages=1, bits=8, max_message_bits=8)
        text = ledger.summary()
        assert "rounds=1" in text
        assert "phase solve" in text


class TestToDict:
    def test_totals_and_phases(self):
        ledger = CostLedger()
        with ledger.phase("solve"):
            ledger.charge_round(messages=2, bits=16, max_message_bits=8,
                                broadcasts=1)
        with ledger.phase("solve"):
            ledger.charge_round()
        snapshot = ledger.to_dict()
        assert snapshot["rounds"] == 2
        assert snapshot["messages"] == 2
        assert snapshot["bits"] == 16
        assert snapshot["max_message_bits"] == 8
        assert snapshot["broadcasts"] == 1
        solve = snapshot["phases"]["solve"]
        assert solve["rounds"] == 2
        assert solve["invocations"] == 2
        assert solve["messages"] == 2

    def test_json_serializable_and_sorted(self):
        import json

        ledger = CostLedger()
        with ledger.phase("zeta"):
            ledger.charge_round()
        with ledger.phase("alpha"):
            ledger.charge_round()
        snapshot = ledger.to_dict()
        json.dumps(snapshot)
        assert list(snapshot["phases"]) == ["alpha", "zeta"]


class TestSummaryBreakdown:
    def test_per_phase_traffic_included(self):
        ledger = CostLedger()
        with ledger.phase("chatty"):
            ledger.charge_round(messages=5, bits=40, broadcasts=2)
        text = ledger.summary()
        line = next(
            candidate for candidate in text.splitlines()
            if "phase chatty" in candidate
        )
        assert "messages=5" in line
        assert "bits=40" in line
        assert "broadcasts=2" in line


class TestPhaseTracing:
    def test_phase_scope_emits_span_with_deltas(self):
        from repro.obs import Tracer, use_tracer

        ledger = CostLedger()
        tracer = Tracer()
        with use_tracer(tracer):
            with ledger.phase("outer"):
                ledger.charge_round(messages=1, bits=8)
                with ledger.phase("inner"):
                    ledger.charge_round(messages=2, bits=16, broadcasts=1)
        inner, outer = tracer.events
        assert inner["kind"] == "phase" and inner["name"] == "inner"
        assert inner["rounds"] == 1 and inner["messages"] == 2
        assert outer["name"] == "outer"
        # The outer span's delta includes the nested phase's charges.
        assert outer["rounds"] == 2 and outer["messages"] == 3
        assert inner["parent"] == outer["span"]

    def test_phase_delta_is_per_invocation(self):
        from repro.obs import Tracer, use_tracer

        ledger = CostLedger()
        tracer = Tracer()
        with use_tracer(tracer):
            with ledger.phase("work"):
                ledger.charge_round(messages=4)
            with ledger.phase("work"):
                ledger.charge_round(messages=1)
        first, second = tracer.events
        assert first["messages"] == 4
        assert second["messages"] == 1

    def test_no_tracer_no_records(self):
        ledger = CostLedger()
        with ledger.phase("quiet"):
            ledger.charge_round()
        assert ledger.phase_rounds("quiet") == 1
