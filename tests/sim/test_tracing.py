"""Tests for round observation."""

from __future__ import annotations

from repro.graphs import path_graph, ring_graph
from repro.sim import (
    NodeProgram,
    RoundObserver,
    Scheduler,
)


class PingTwice(NodeProgram):
    def on_round(self, ctx):
        if ctx.round_number <= 2:
            ctx.broadcast("ping", ctx.round_number)
        else:
            ctx.halt()


class SilentCountdown(NodeProgram):
    def __init__(self, rounds):
        self.remaining = rounds

    def on_round(self, ctx):
        self.remaining -= 1
        if self.remaining <= 0:
            ctx.halt()


class TestObserver:
    def run_with_observer(self, network, make_program):
        observer = RoundObserver()
        scheduler = Scheduler(
            network,
            {node: make_program() for node in network},
            observer=observer,
        )
        scheduler.run()
        return observer

    def test_records_every_round(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        assert observer.rounds() == 3
        assert [record.round_number for record in observer.records] == [
            1, 2, 3,
        ]

    def test_messages_by_tag(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        # 8 nodes x 2 neighbors x 2 rounds of pings.
        assert observer.tag_totals() == {"ping": 32}
        assert observer.first_round_with_tag("ping") == 1
        assert observer.first_round_with_tag("nope") == -1

    def test_halted_recorded(self):
        network = path_graph(2)
        observer = self.run_with_observer(network, lambda: PingTwice())
        assert set(observer.records[-1].halted) == {0, 1}

    def test_quiet_rounds(self):
        network = path_graph(3)
        observer = RoundObserver()
        scheduler = Scheduler(
            network,
            {node: SilentCountdown(4) for node in network},
            observer=observer,
        )
        scheduler.run()
        assert observer.quiet_rounds() == 4

    def test_timeline_shape(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        timeline = observer.timeline()
        assert len(timeline) == 3
        assert timeline[-1] == " "  # final round is silent

    def test_timeline_empty(self):
        assert RoundObserver().timeline() == "(no rounds)"

    def test_senders_deduplicated(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        assert set(observer.records[0].senders) == set(small_ring.nodes)


class _Envelope:
    """Minimal stand-in for a scheduler message envelope."""

    def __init__(self, sender, tag="t", payload=None):
        self.sender = sender
        self.tag = tag
        self.payload = payload


class TestPairForm:
    """The fast engine feeds observers ``(envelope, copies)`` pairs; every
    aggregation must match the reference engine's per-copy feed."""

    def test_expand_pairs_mixed_feed(self):
        from repro.sim import expand_pairs

        one = _Envelope(1)
        many = _Envelope(2)
        expanded = list(expand_pairs([one, (many, 3), one]))
        assert expanded == [one, many, many, many, one]

    def test_expand_pairs_zero_copies(self):
        from repro.sim import expand_pairs

        assert list(expand_pairs([(_Envelope(1), 0)])) == []

    def test_observer_counts_pair_copies(self):
        observer = RoundObserver()
        observer.on_round(
            1, [(_Envelope(1, "ping"), 4), _Envelope(2, "ping")], [],
        )
        record = observer.records[0]
        assert record.messages_by_tag == {"ping": 5}
        assert record.total_messages == 5

    def test_senders_deduplicated_in_first_seen_order(self):
        observer = RoundObserver()
        observer.on_round(
            1,
            [(_Envelope(3), 2), _Envelope(1), (_Envelope(3), 1),
             _Envelope(2)],
            [],
        )
        assert observer.records[0].senders == (3, 1, 2)

    def test_halted_feed_preserved(self):
        observer = RoundObserver()
        observer.on_round(1, [], [5, 2])
        assert observer.records[0].halted == (5, 2)

    def test_timeline_over_pair_feed(self):
        observer = RoundObserver()
        observer.on_round(1, [(_Envelope(1), 8)], [])
        observer.on_round(2, [(_Envelope(1), 4)], [])
        observer.on_round(3, [], [1])
        timeline = observer.timeline()
        assert len(timeline) == 3
        assert timeline[0] == "#"  # peak round
        assert timeline[-1] == " "  # silent round

    def test_pair_and_flat_feeds_aggregate_identically(self):
        flat = RoundObserver()
        paired = RoundObserver()
        envelope = _Envelope(7, "x")
        flat.on_round(1, [envelope] * 3, [7])
        paired.on_round(1, [(envelope, 3)], [7])
        assert flat.records == paired.records
