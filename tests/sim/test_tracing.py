"""Tests for round observation."""

from __future__ import annotations

from repro.graphs import path_graph, ring_graph
from repro.sim import (
    NodeProgram,
    RoundObserver,
    Scheduler,
)


class PingTwice(NodeProgram):
    def on_round(self, ctx):
        if ctx.round_number <= 2:
            ctx.broadcast("ping", ctx.round_number)
        else:
            ctx.halt()


class SilentCountdown(NodeProgram):
    def __init__(self, rounds):
        self.remaining = rounds

    def on_round(self, ctx):
        self.remaining -= 1
        if self.remaining <= 0:
            ctx.halt()


class TestObserver:
    def run_with_observer(self, network, make_program):
        observer = RoundObserver()
        scheduler = Scheduler(
            network,
            {node: make_program() for node in network},
            observer=observer,
        )
        scheduler.run()
        return observer

    def test_records_every_round(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        assert observer.rounds() == 3
        assert [record.round_number for record in observer.records] == [
            1, 2, 3,
        ]

    def test_messages_by_tag(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        # 8 nodes x 2 neighbors x 2 rounds of pings.
        assert observer.tag_totals() == {"ping": 32}
        assert observer.first_round_with_tag("ping") == 1
        assert observer.first_round_with_tag("nope") == -1

    def test_halted_recorded(self):
        network = path_graph(2)
        observer = self.run_with_observer(network, lambda: PingTwice())
        assert set(observer.records[-1].halted) == {0, 1}

    def test_quiet_rounds(self):
        network = path_graph(3)
        observer = RoundObserver()
        scheduler = Scheduler(
            network,
            {node: SilentCountdown(4) for node in network},
            observer=observer,
        )
        scheduler.run()
        assert observer.quiet_rounds() == 4

    def test_timeline_shape(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        timeline = observer.timeline()
        assert len(timeline) == 3
        assert timeline[-1] == " "  # final round is silent

    def test_timeline_empty(self):
        assert RoundObserver().timeline() == "(no rounds)"

    def test_senders_deduplicated(self, small_ring):
        observer = self.run_with_observer(small_ring, PingTwice)
        assert set(observer.records[0].senders) == set(small_ring.nodes)
