"""Unit tests for the vectorized round-kernel layer.

Covers the registry contract (exact-class mapping, duplicate
protection, unregistration), the scheduler's kernel lifecycle
(prepare/step/finalize, fallback on decline, observer/stop_when
bypass), a custom kernel with staggered mid-run halting verified
three-ways against the reference engine, and the supporting
zero-copy/interning helpers (``expand_pairs``, ``intern_broadcast``).
"""

from __future__ import annotations

import pytest

from repro.graphs import gnp_graph
from repro.sim import (
    Broadcast,
    CongestModel,
    CostLedger,
    KernelRound,
    Network,
    NodeProgram,
    RoundKernel,
    RoundLimitExceeded,
    Scheduler,
    clear_payload_memo,
    expand_pairs,
    intern_broadcast,
    kernel_for,
    kernel_stats,
    register_kernel,
    registered_kernels,
    reset_kernel_stats,
    run_protocol,
    unregister_kernel,
    use_engine,
)
from repro.sim.kernels import fanout_totals
from repro.sim.message import set_payload_memo_enabled


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
class _DummyProgram(NodeProgram):
    def on_round(self, ctx):
        ctx.halt()


class _DummyKernel(RoundKernel):
    def prepare(self, compiled, programs, bandwidth):
        return None

    def step(self, round_number, columns, inboxes):
        return KernelRound(active=0)

    def finalize(self, columns, programs):
        return None


def test_register_and_unregister_roundtrip():
    assert kernel_for(_DummyProgram) is None
    register_kernel(_DummyProgram, _DummyKernel)
    try:
        assert kernel_for(_DummyProgram) is _DummyKernel
        assert _DummyProgram in registered_kernels()
    finally:
        assert unregister_kernel(_DummyProgram)
    assert kernel_for(_DummyProgram) is None
    assert not unregister_kernel(_DummyProgram)


def test_duplicate_registration_rejected_unless_replace():
    register_kernel(_DummyProgram, _DummyKernel)
    try:
        with pytest.raises(ValueError):
            register_kernel(_DummyProgram, _DummyKernel)
        register_kernel(_DummyProgram, _DummyKernel, replace=True)
        assert kernel_for(_DummyProgram) is _DummyKernel
    finally:
        unregister_kernel(_DummyProgram)


def test_register_requires_a_class():
    with pytest.raises(TypeError):
        register_kernel("not a class", _DummyKernel)


def test_subclasses_do_not_inherit_kernels():
    """A subclass may override on_round arbitrarily, so exact-class
    lookup is the only safe rule."""

    class _Sub(_DummyProgram):
        pass

    register_kernel(_DummyProgram, _DummyKernel)
    try:
        assert kernel_for(_Sub) is None
    finally:
        unregister_kernel(_DummyProgram)


def test_fanout_totals_excludes_isolated_nodes():
    network = gnp_graph(20, 0.15, seed=4)
    compiled = network.compile()
    total, envelopes = fanout_totals(compiled)
    degrees = [network.degree(node) for node in network]
    assert total == sum(degrees)
    assert envelopes == sum(1 for d in degrees if d)


# ----------------------------------------------------------------------
# A custom kernelized program with staggered mid-run halting
# ----------------------------------------------------------------------
class _Countdown(NodeProgram):
    """Broadcast for ``lifetime`` rounds, counting every heard message,
    then halt -- nodes halt at different rounds (staggered)."""

    def __init__(self, node, lifetime):
        self.node = node
        self.lifetime = lifetime
        self.heard = 0

    def on_round(self, ctx):
        self.heard += len(ctx.inbox)
        if ctx.round_number > self.lifetime:
            ctx.halt()
            return
        ctx.broadcast("tick", ctx.round_number, bits=8)

    def output(self):
        return self.heard


class _CountdownKernel(RoundKernel):
    """Closed-form execution of a fresh :class:`_Countdown` population.

    Node ``v`` sends in rounds ``1..lifetime_v`` and processes inboxes
    through round ``lifetime_v + 1``, so it hears exactly
    ``min(lifetime_v, lifetime_u)`` ticks from each neighbor ``u``.
    """

    prepared = 0

    def prepare(self, compiled, programs, bandwidth):
        type(self).prepared += 1
        if any(program.heard for program in programs):
            return None  # mid-run state: fall back
        from repro.sim import LocalModel

        return {
            "compiled": compiled,
            "order": compiled.order,
            "degrees": compiled.degrees,
            "lifetimes": [program.lifetime for program in programs],
            "check_fanout": (None if type(bandwidth) is LocalModel
                             else bandwidth.check_fanout),
        }

    def step(self, round_number, columns, inboxes):
        lifetimes = columns["lifetimes"]
        degrees = columns["degrees"]
        check_fanout = columns["check_fanout"]
        order = columns["order"]
        messages = 0
        broadcasts = 0
        for i, lifetime in enumerate(lifetimes):
            if lifetime >= round_number and degrees[i]:
                if check_fanout is not None:
                    check_fanout(
                        intern_broadcast(
                            order[i], "tick", round_number, 8
                        ),
                        degrees[i],
                    )
                messages += degrees[i]
                broadcasts += 1
        active = sum(1 for lifetime in lifetimes if lifetime >= round_number)
        return KernelRound(
            active=active,
            messages=messages,
            bits=8 * messages,
            max_message_bits=8 if messages else 0,
            broadcasts=broadcasts,
        )

    def finalize(self, columns, programs):
        compiled = columns["compiled"]
        indptr = compiled.indptr
        indices = compiled.indices
        lifetimes = columns["lifetimes"]
        for i, program in enumerate(programs):
            program.heard = sum(
                min(lifetimes[i], lifetimes[j])
                for j in indices[indptr[i]:indptr[i + 1]]
            )


@pytest.fixture
def countdown_kernel():
    _CountdownKernel.prepared = 0
    register_kernel(_Countdown, _CountdownKernel)
    yield
    unregister_kernel(_Countdown)


def _run_countdown(network, engine, bandwidth=None, **scheduler_kwargs):
    programs = {
        node: _Countdown(node, 1 + node % 4) for node in network
    }
    ledger = CostLedger()
    scheduler = Scheduler(
        network, programs, bandwidth=bandwidth, ledger=ledger,
        **scheduler_kwargs,
    )
    scheduler.run(engine=engine)
    return scheduler.outputs(), (
        ledger.rounds, ledger.messages, ledger.bits,
        ledger.max_message_bits, ledger.broadcasts,
    )


@pytest.mark.parametrize("congest", [False, True])
def test_staggered_halting_kernel_matches_reference(
        countdown_kernel, congest):
    results = {}
    for engine in ("reference", "fast", "vectorized"):
        network = gnp_graph(40, 0.12, seed=11)
        bandwidth = CongestModel(len(network)) if congest else None
        results[engine] = _run_countdown(network, engine, bandwidth)
    assert results["vectorized"] == results["reference"]
    assert results["fast"] == results["reference"]
    # The vectorized runs (with and without CONGEST) used the kernel.
    assert _CountdownKernel.prepared == 1


def test_prepare_decline_falls_back(countdown_kernel):
    """Mid-run state makes prepare decline; the fall back is invisible."""
    network = gnp_graph(25, 0.15, seed=19)
    baseline = _run_countdown(network, "reference")
    programs = {node: _Countdown(node, 1 + node % 4) for node in network}
    programs[next(iter(network))].heard = 7  # pre-existing state
    ledger = CostLedger()
    Scheduler(network, programs, ledger=ledger).run(engine="vectorized")
    assert _CountdownKernel.prepared == 1  # prepare ran, then declined
    # Fallback reproduces reference totals apart from the seeded heard=7.
    assert ledger.rounds == baseline[1][0]
    assert ledger.messages == baseline[1][1]


def test_observer_and_stop_when_bypass_kernel(countdown_kernel):
    network = gnp_graph(20, 0.2, seed=23)
    _run_countdown(network, "vectorized", observer=None,
                   stop_when=lambda programs: False)
    assert _CountdownKernel.prepared == 0  # stop_when forces fast path


def test_vectorized_respects_max_rounds(countdown_kernel):
    network = gnp_graph(20, 0.2, seed=29)
    programs = {node: _Countdown(node, 10) for node in network}
    scheduler = Scheduler(network, programs)
    with pytest.raises(RoundLimitExceeded):
        scheduler.run(max_rounds=3, engine="vectorized")
    assert _CountdownKernel.prepared == 1


def test_fast_engine_ignores_registry(countdown_kernel):
    network = gnp_graph(20, 0.2, seed=31)
    _run_countdown(network, "fast")
    assert _CountdownKernel.prepared == 0


# ----------------------------------------------------------------------
# Zero-copy observer pairs and broadcast interning
# ----------------------------------------------------------------------
def test_expand_pairs_mixes_envelopes_and_pairs():
    envelope = Broadcast(sender=0, tag="t", payload=1)
    other = Broadcast(sender=1, tag="t", payload=2)
    expanded = list(expand_pairs([envelope, (other, 3), (envelope, 0)]))
    assert expanded == [envelope, other, other, other]


def test_intern_broadcast_shares_envelopes_across_calls():
    clear_payload_memo()
    first = intern_broadcast(5, "color", 12, 8)
    second = intern_broadcast(5, "color", 12, 8)
    assert first is second
    assert (first.sender, first.tag, first.payload) == (5, "color", 12)
    # A different key gets a different envelope.
    assert intern_broadcast(5, "color", 13, 8) is not first
    assert intern_broadcast(6, "color", 12, 8) is not first
    clear_payload_memo()
    assert intern_broadcast(5, "color", 12, 8) is not first


def test_intern_broadcast_unhashable_payload_degrades():
    payload = [1, 2, 3]
    first = intern_broadcast(0, "t", payload, 16)
    second = intern_broadcast(0, "t", payload, 16)
    assert first is not second
    assert first.payload == second.payload == [1, 2, 3]


def test_intern_broadcast_honors_cache_switch():
    clear_payload_memo()
    previous = set_payload_memo_enabled(False)
    try:
        first = intern_broadcast(2, "t", 9, 8)
        second = intern_broadcast(2, "t", 9, 8)
        assert first is not second
    finally:
        set_payload_memo_enabled(previous)
        clear_payload_memo()


# ----------------------------------------------------------------------
# Two-Sweep populations: mixed-class fallback and dispatch stats
# ----------------------------------------------------------------------
def _two_sweep_path_programs():
    """A 4-node properly colored path of ``TwoSweepProgram``s plus one
    isolated foreign-class node (``_DummyProgram`` halts immediately and
    exchanges nothing, so the run's totals stay engine-checkable)."""
    from repro.core.two_sweep import TwoSweepProgram

    network = Network({0: [1], 1: [0, 2], 2: [1, 3], 3: [2], 4: []})
    programs = {}
    for node in range(4):
        out = frozenset(
            v for v in network.neighbors(node) if v > node
        )
        programs[node] = TwoSweepProgram(
            node=node, initial_color=node, q=5, p=2,
            color_list=(0, 1), defect_fn={0: 2, 1: 2},
            out_neighbors=out, color_space_size=4,
        )
    programs[4] = _DummyProgram()
    return network, programs


def test_two_sweep_mixed_population_falls_back():
    """A Two-Sweep population mixed with another program class must be
    detected as non-uniform: the vectorized engine falls back to fast
    (recorded as a ``mixed`` fallback) with identical results."""
    outputs = {}
    ledgers = {}
    for engine in ("reference", "fast", "vectorized"):
        network, programs = _two_sweep_path_programs()
        ledger = CostLedger()
        if engine == "vectorized":
            reset_kernel_stats()
        outs, _ = run_protocol(
            network, programs, ledger=ledger, engine=engine
        )
        outputs[engine] = outs
        ledgers[engine] = (
            ledger.rounds, ledger.messages, ledger.bits,
            ledger.max_message_bits, ledger.broadcasts,
        )
    stats = kernel_stats()
    assert stats["fallbacks"] == 1
    assert stats["by_reason"] == {"mixed": 1}
    for engine in ("fast", "vectorized"):
        assert outputs[engine] == outputs["reference"]
        assert ledgers[engine] == ledgers["reference"]


def test_two_sweep_trace_declines_kernel():
    """A traced Two-Sweep run cannot be replayed from a bucketed pass:
    the kernel must decline (recorded as ``declined``) and the fast
    fallback must produce the same trace as the reference engine."""
    from repro.coloring import random_oldc_instance
    from repro.core import two_sweep
    from repro.graphs import orient_by_id, sequential_ids

    traces = {}
    for engine in ("reference", "vectorized"):
        network = gnp_graph(20, 0.2, seed=11)
        instance = random_oldc_instance(orient_by_id(network), p=2, seed=11)
        trace = []
        if engine == "vectorized":
            reset_kernel_stats()
        with use_engine(engine):
            two_sweep(
                instance, sequential_ids(network), len(network), 2,
                trace=trace,
            )
        traces[engine] = trace
    stats = kernel_stats()
    assert stats["by_reason"] == {"declined": 1}
    assert stats["warmup_s"] >= 0.0
    assert traces["vectorized"] == traces["reference"]


def test_kernel_stats_counters_track_hits():
    """A clean vectorized Two-Sweep run is recorded as one hit under the
    kernel's class name, and ``reset_kernel_stats`` zeroes everything."""
    from repro.coloring import random_oldc_instance
    from repro.core import two_sweep
    from repro.graphs import orient_by_id, sequential_ids

    network = gnp_graph(20, 0.2, seed=11)
    instance = random_oldc_instance(orient_by_id(network), p=2, seed=11)
    reset_kernel_stats()
    with use_engine("vectorized"):
        two_sweep(instance, sequential_ids(network), len(network), 2)
    stats = kernel_stats()
    assert stats["runs"] == stats["hits"] == 1
    assert stats["fallbacks"] == 0
    assert stats["by_kernel"] == {"TwoSweepKernel": 1}
    assert stats["warmup_s"] > 0.0
    reset_kernel_stats()
    zeroed = kernel_stats()
    assert zeroed["runs"] == 0 and not zeroed["by_kernel"]


def test_tracing_preserves_kernel_hit_rate():
    """Regression (the tracer's reason to exist): a traced vectorized
    Two-Sweep run must still be a kernel hit, not an ``observer``-style
    fallback -- telemetry that cost the kernels would be useless."""
    from repro.coloring import random_oldc_instance
    from repro.core import two_sweep
    from repro.graphs import orient_by_id, sequential_ids
    from repro.obs import Tracer, use_tracer

    network = gnp_graph(20, 0.2, seed=11)
    instance = random_oldc_instance(orient_by_id(network), p=2, seed=11)
    reset_kernel_stats()
    tracer = Tracer()
    with use_engine("vectorized"), use_tracer(tracer):
        two_sweep(instance, sequential_ids(network), len(network), 2)
    stats = kernel_stats()
    assert stats["runs"] == stats["hits"] == 1
    assert stats["fallbacks"] == 0
    assert stats["by_kernel"] == {"TwoSweepKernel": 1}
    # The trace itself records the kernel attribution on the run span.
    run_span = next(
        record for record in tracer.events if record["kind"] == "run"
    )
    assert run_span["engine"] == "vectorized"
    assert run_span["kernel"] == "TwoSweepKernel"
    assert run_span["fallback"] is None


def test_fallback_reason_still_recorded_under_tracing():
    """Per-node tracing (``trace=``) makes the Two-Sweep kernel decline,
    and that reason lands in both the counters and the run span -- the
    visible cost of round-level observation, in contrast to the tracer
    itself which keeps the kernel engaged."""
    from repro.coloring import random_oldc_instance
    from repro.core import two_sweep
    from repro.graphs import orient_by_id, sequential_ids
    from repro.obs import Tracer, use_tracer

    network = gnp_graph(20, 0.2, seed=11)
    instance = random_oldc_instance(orient_by_id(network), p=2, seed=11)
    reset_kernel_stats()
    tracer = Tracer()
    trace = []
    with use_engine("vectorized"), use_tracer(tracer):
        two_sweep(
            instance, sequential_ids(network), len(network), 2,
            trace=trace,
        )
    stats = kernel_stats()
    assert stats["hits"] == 0
    assert stats["by_reason"] == {"declined": 1}
    run_span = next(
        record for record in tracer.events if record["kind"] == "run"
    )
    assert run_span["kernel"] is None
    assert run_span["fallback"] == "declined"
