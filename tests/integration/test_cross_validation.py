"""Cross-validation: distributed outputs vs brute-force ground truth,
and mutation testing of the validators (corrupted outputs must be caught).
"""

from __future__ import annotations

import random

import pytest

from repro.coloring import (
    check_arbdefective,
    check_list_defective,
    check_oldc,
    random_arbdefective_instance,
    random_defective_instance,
    random_oldc_instance,
)
from repro.core import solve_arbdefective_base, two_sweep
from repro.graphs import gnp_graph, orient_by_id, ring_graph, sequential_ids
from repro.substrates import (
    solve_list_defective_bruteforce,
    solve_oldc_bruteforce,
)


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("seed", range(6))
    def test_two_sweep_instances_are_brute_force_solvable(self, seed):
        """Feasible Eq. (2) instances must admit *some* solution --
        brute force on a small graph confirms non-vacuity."""
        network = gnp_graph(11, 0.3, seed=seed)
        graph = orient_by_id(network)
        instance = random_oldc_instance(
            graph, p=2, seed=seed, color_space_size=8
        )
        assert solve_oldc_bruteforce(instance) is not None

    @pytest.mark.parametrize("seed", range(4))
    def test_brute_force_and_two_sweep_both_valid(self, seed):
        network = gnp_graph(10, 0.35, seed=100 + seed)
        graph = orient_by_id(network)
        instance = random_oldc_instance(
            graph, p=2, seed=seed, color_space_size=8
        )
        ids = sequential_ids(network)
        distributed = two_sweep(instance, ids, len(network), 2)
        exact = solve_oldc_bruteforce(instance)
        assert check_oldc(instance, distributed.colors) == []
        assert check_oldc(instance, exact) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_defective_instances_brute_force_solvable(self, seed):
        network = ring_graph(9)
        instance = random_defective_instance(
            network, slack=1.5, seed=seed, color_space_size=6
        )
        colors = solve_list_defective_bruteforce(instance)
        assert colors is not None
        assert check_list_defective(instance, colors) == []


class TestMutationCatching:
    """Corrupt a valid output one field at a time; the validator must
    notice (or the corruption must be provably harmless)."""

    def _valid_arb(self, seed):
        network = gnp_graph(20, 0.25, seed=seed)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=seed, color_space_size=8
        )
        result = solve_arbdefective_base(
            instance, sequential_ids(network), len(network)
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []
        return network, instance, result

    def test_color_outside_list_detected(self):
        network, instance, result = self._valid_arb(1)
        rng = random.Random(1)
        victim = rng.choice(list(network.nodes))
        colors = dict(result.colors)
        colors[victim] = instance.color_space_size + 5
        violations = check_arbdefective(
            instance, colors, result.orientation
        )
        assert violations

    def test_missing_node_detected(self):
        network, instance, result = self._valid_arb(2)
        colors = dict(result.colors)
        colors.pop(next(iter(network.nodes)))
        assert check_arbdefective(instance, colors, result.orientation)

    def test_dropped_orientation_detected_when_conflicts_exist(self):
        network, instance, result = self._valid_arb(3)
        has_mono = any(
            result.colors[u] == result.colors[v]
            for u, v in network.edges()
        )
        if not has_mono:
            pytest.skip("run produced a proper coloring; nothing to drop")
        empty = {node: () for node in network.nodes}
        assert check_arbdefective(instance, result.colors, empty)

    def test_recolor_to_neighbors_color_detected_when_defect_zero(self):
        network = ring_graph(8)
        from repro.coloring import ArbdefectiveInstance, uniform_lists

        lists, defects = uniform_lists(network.nodes, (0, 1, 2), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        result = solve_arbdefective_base(
            instance, sequential_ids(network), 8
        )
        colors = dict(result.colors)
        colors[0] = colors[1]  # force a zero-defect conflict
        assert check_arbdefective(instance, colors, result.orientation)
