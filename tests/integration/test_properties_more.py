"""Second round of property-based tests: substrates and reductions."""

from __future__ import annotations

import math
import random as rnd

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import (
    check_outdegree_defective,
    check_proper_coloring,
    random_arbdefective_instance,
)
from repro.core import (
    build_subspace_instance,
    peel_free_color_nodes,
    plan_oldc,
)
from repro.graphs import (
    BidirectedView,
    gnp_graph,
    orient_by_id,
    random_ids,
)
from repro.sim import CostLedger
from repro.substrates import (
    defective_schedule,
    kuhn_defective_coloring,
    lovasz_defective_partition,
    proper_schedule,
    randomized_delta_plus_one,
)

SUPPRESS = [HealthCheck.too_slow]


@st.composite
def small_graphs(draw, max_nodes=22):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    p = draw(st.floats(min_value=0.05, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    return gnp_graph(n, p, seed=seed)


# ----------------------------------------------------------------------
# Lemma 3.4 defect guarantee, oriented and bidirected
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       alpha=st.sampled_from([1.0, 0.5, 0.25]),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_kuhn_defective_bound_property(network, alpha, seed):
    graph = orient_by_id(network)
    ids = random_ids(network, seed=seed, bits=28)
    colors, _ = kuhn_defective_coloring(graph, ids, 2 ** 28, alpha)
    assert check_outdegree_defective(graph, colors, alpha) == []


@settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_kuhn_bidirected_bounds_all_neighbors(network, seed):
    view = BidirectedView(network)
    ids = random_ids(network, seed=seed, bits=28)
    alpha = 0.5
    colors, _ = kuhn_defective_coloring(view, ids, 2 ** 28, alpha)
    for node in network:
        conflicts = sum(
            1 for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
        )
        assert conflicts <= alpha * max(1, network.degree(node))


# ----------------------------------------------------------------------
# Schedules: monotone palettes, budget discipline
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(q=st.integers(min_value=2, max_value=2 ** 48),
       avoid=st.integers(min_value=1, max_value=40))
def test_proper_schedule_palettes_strictly_shrink(q, avoid):
    schedule = proper_schedule(q, avoid)
    current = q
    for step in schedule:
        assert step.q == current
        assert step.palette_size < current
        assert step.m > avoid * step.k
        current = step.palette_size


@settings(max_examples=50, deadline=None)
@given(q=st.integers(min_value=2, max_value=2 ** 48),
       alpha=st.floats(min_value=0.05, max_value=1.0))
def test_defective_schedule_budget_property(q, alpha):
    schedule = defective_schedule(q, alpha)
    assert sum(step.alpha_step for step in schedule) <= alpha + 1e-9
    for step in schedule:
        assert step.k / step.m <= step.alpha_step + 1e-12


# ----------------------------------------------------------------------
# [Lov66] partition guarantee
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       k=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_lovasz_partition_property(network, k, seed):
    colors = lovasz_defective_partition(network, k, seed=seed)
    for node in network:
        conflicts = sum(
            1 for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
        )
        assert conflicts <= network.degree(node) // k


# ----------------------------------------------------------------------
# Peel: output validity and slack preservation of the residual
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       slack=st.floats(min_value=1.05, max_value=3.0),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_peel_preserves_residual_slack(network, slack, seed):
    instance = random_arbdefective_instance(
        network, slack=slack, seed=seed,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ledger = CostLedger()
    colors, orientation, residual = peel_free_color_nodes(
        instance, ledger
    )
    # Residual keeps slack above 1 (weight-minus-conflicts arithmetic).
    for node in residual.network:
        assert residual.weight(node) > residual.network.degree(node)
    # A peeled node can absorb the worst case: every same-colored peeled
    # neighbor plus EVERY residual neighbor later choosing its color.
    residual_nodes = set(residual.network.nodes)
    for node, color in colors.items():
        mono_peeled = sum(
            1 for neighbor in network.neighbors(node)
            if colors.get(neighbor) == color
        )
        residual_neighbors = sum(
            1 for neighbor in network.neighbors(node)
            if neighbor in residual_nodes
        )
        assert instance.defects[node][color] >= (
            mono_peeled + residual_neighbors
        )


# ----------------------------------------------------------------------
# Subspace-choice construction invariants (Lemma 4.5 arithmetic)
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       p=st.integers(min_value=2, max_value=6),
       sigma=st.floats(min_value=1.0, max_value=4.0),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_subspace_choice_instance_properties(network, p, sigma, seed):
    instance = random_arbdefective_instance(
        network, slack=2 * sigma + 1, seed=seed, color_space_size=24
    )
    choice, block_size = build_subspace_instance(instance, p, sigma)
    assert choice.color_space_size == p
    assert block_size == math.ceil(24 / p)
    # P_D(sigma, p): the floor allocation still clears sigma * deg.
    assert choice.has_slack(sigma)
    # Allocation never exceeds the real mass share (floor direction).
    for node in network:
        total = instance.weight(node)
        degree = network.degree(node)
        for block, allocated in choice.defects[node].items():
            mass = sum(
                instance.defects[node][color] + 1
                for color in instance.lists[node]
                if color // block_size == block
            )
            assert allocated <= sigma * degree * mass / total


# ----------------------------------------------------------------------
# Planner: estimates are well-formed and feasible plans really run
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       p=st.integers(min_value=2, max_value=3),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_planner_estimates_positive_and_sorted(network, p, seed):
    from repro.coloring import random_oldc_instance

    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=p, seed=seed, epsilon=0.5)
    plans = plan_oldc(instance, 2 ** 20)
    assert plans
    estimates = [plan.estimated_rounds for plan in plans]
    assert estimates == sorted(estimates)
    assert all(estimate > 0 for estimate in estimates)


# ----------------------------------------------------------------------
# Randomized baseline: always proper, always within palette
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_randomized_coloring_property(network, seed):
    result = randomized_delta_plus_one(network, seed=seed)
    assert check_proper_coloring(network, result.colors) == []
    assert max(result.colors.values(), default=0) <= max(
        1, network.raw_max_degree()
    )


# ----------------------------------------------------------------------
# Undirected list defective coloring via the bidirected two-sweep
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       p=st.integers(min_value=2, max_value=3))
def test_undirected_two_sweep_property(network, p):
    """Minimal-slack bidirected instances are always solved and the
    *all-neighbor* defect bound holds (the 3-coloring-threshold
    machinery, generalized)."""
    from repro.coloring import check_list_defective, ListDefectiveInstance
    from repro.coloring import minimal_slack_oldc_instance
    from repro.core import list_defective_two_sweep
    from repro.graphs import orient_all_out, sequential_ids

    view = orient_all_out(network)
    oldc = minimal_slack_oldc_instance(view, p=p)
    undirected = ListDefectiveInstance(
        network, oldc.lists, oldc.defects, oldc.color_space_size
    )
    result = list_defective_two_sweep(
        undirected, sequential_ids(network), len(network), p=p,
        validate=False,
    )
    assert check_list_defective(undirected, result.colors) == []


# ----------------------------------------------------------------------
# Distributed [Lov66] local search guarantee
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(max_nodes=18),
       k=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_distributed_local_search_property(network, k, seed):
    from repro.substrates import distributed_lovasz_partition

    colors = distributed_lovasz_partition(network, k, seed=seed)
    for node in network:
        conflicts = sum(
            1 for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
        )
        assert conflicts <= network.degree(node) // k
