"""End-to-end pipeline tests across module boundaries."""

from __future__ import annotations

import math
import random

import pytest

from repro.coloring import (
    check_oldc,
    check_proper_coloring,
    random_oldc_instance,
)
from repro.graphs import (
    gnp_graph,
    grid_graph,
    orient_by_coloring,
    orient_by_id,
    random_bounded_degree_graph,
    random_ids,
    ring_graph,
    sequential_ids,
)
from repro.sim import CostLedger
from repro.core import (
    delta_plus_one_coloring,
    fast_two_sweep,
    linial_reduction_baseline,
    theta_delta_plus_one_coloring,
    two_sweep,
)
from repro.substrates import linial_coloring, log_star


class TestLinialIntoTwoSweep:
    """The paper's standard composition: shrink q with Linial, then sweep."""

    def test_composed_rounds_beat_raw_sweep(self):
        network = gnp_graph(60, 0.08, seed=1)
        graph = orient_by_id(network)
        ids = random_ids(network, seed=2, bits=30)
        q_raw = 2 ** 30
        instance = random_oldc_instance(graph, p=2, seed=3)

        composed = CostLedger()
        colors0, q0 = linial_coloring(network, ids, q_raw, ledger=composed)
        result = two_sweep(instance, colors0, q0, 2, ledger=composed)
        assert check_oldc(instance, result.colors) == []
        # 2 * q0 + O(log* q_raw) rounds, utterly dwarfing nothing -- but
        # the raw sweep would need ~2^31 rounds.  Assert the real bound.
        assert composed.rounds <= 2 * q0 + 3 * log_star(q_raw) + 5

    def test_orient_by_linial_coloring(self):
        """A proper coloring both orients the graph and schedules sweeps."""
        network = gnp_graph(40, 0.12, seed=4)
        ids = random_ids(network, seed=5, bits=24)
        colors0, q0 = linial_coloring(network, ids, 2 ** 24)
        graph = orient_by_coloring(network, colors0)
        instance = random_oldc_instance(graph, p=2, seed=6)
        result = two_sweep(instance, colors0, q0, 2)
        assert check_oldc(instance, result.colors) == []


class TestDeltaPlusOneRoutes:
    """All three (Delta+1)-coloring routes must agree on validity."""

    @pytest.fixture
    def network(self):
        return random_bounded_degree_graph(25, 4, seed=8)

    def test_theorem_13_route(self, network):
        result = delta_plus_one_coloring(network)
        assert check_proper_coloring(network, result.colors) == []

    def test_theorem_15_route(self, network):
        from repro.graphs import neighborhood_independence

        theta = neighborhood_independence(network)
        result = theta_delta_plus_one_coloring(network, theta)
        assert check_proper_coloring(network, result.colors) == []

    def test_baseline_route(self, network):
        result = linial_reduction_baseline(network)
        assert check_proper_coloring(network, result.colors) == []

    def test_all_within_palette(self, network):
        delta = network.raw_max_degree()
        for result in (
            delta_plus_one_coloring(network),
            linial_reduction_baseline(network),
        ):
            assert max(result.colors.values()) <= delta


class TestStructuredTopologies:
    @pytest.mark.parametrize("factory", [
        lambda: ring_graph(16),
        lambda: grid_graph(4, 5),
        lambda: gnp_graph(30, 0.1, seed=9),
    ])
    def test_fast_two_sweep_on_topologies(self, factory):
        network = factory()
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=10, epsilon=0.5)
        ids = random_ids(network, seed=11, bits=24)
        result = fast_two_sweep(instance, ids, 2 ** 24, 2, 0.5)
        assert check_oldc(instance, result.colors) == []


class TestLedgerConsistency:
    def test_phases_partition_rounds_sensibly(self):
        network = random_bounded_degree_graph(20, 4, seed=12)
        ledger = CostLedger()
        delta_plus_one_coloring(network, ledger=ledger)
        top = ledger.phase_rounds("theorem-1.3")
        assert top == ledger.rounds
        assert ledger.phase_rounds("linial") <= top
