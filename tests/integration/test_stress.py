"""Moderate-scale stress runs: larger graphs than the unit tests use.

Kept to a few seconds total; these catch scaling bugs (quadratic
blow-ups, recursion depth issues, ledger overflow assumptions) that tiny
graphs cannot.
"""

from __future__ import annotations

import pytest

from repro.coloring import (
    check_arbdefective,
    check_oldc,
    check_proper_coloring,
    random_arbdefective_instance,
    random_oldc_instance,
)
from repro.core import (
    solve_arbdefective_base,
    theta_delta_plus_one_coloring,
    two_sweep,
)
from repro.graphs import (
    gnp_graph,
    line_graph_of_network,
    orient_by_id,
    random_bounded_degree_graph,
    random_ids,
    sequential_ids,
)
from repro.sim import CostLedger
from repro.substrates import (
    kuhn_defective_coloring,
    linial_coloring,
    randomized_delta_plus_one,
)


class TestScale:
    def test_two_sweep_500_nodes(self):
        network = gnp_graph(500, 0.01, seed=71)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=3, seed=71)
        ledger = CostLedger()
        result = two_sweep(
            instance, sequential_ids(network), 500, 3, ledger=ledger
        )
        assert check_oldc(instance, result.colors) == []
        assert ledger.rounds == 2 * 500 + 1

    def test_linial_400_nodes_wide_ids(self):
        network = random_bounded_degree_graph(400, 8, seed=72)
        ids = random_ids(network, seed=72, bits=48)
        colors, palette = linial_coloring(network, ids, 2 ** 48)
        assert check_proper_coloring(network, colors) == []
        assert palette <= (4 * 8 + 2) ** 2

    def test_kuhn_400_nodes(self):
        network = random_bounded_degree_graph(400, 10, seed=73)
        graph = orient_by_id(network)
        ids = random_ids(network, seed=73, bits=40)
        alpha = 0.25
        colors, _ = kuhn_defective_coloring(graph, ids, 2 ** 40, alpha)
        for node in graph.nodes:
            conflicts = sum(
                1 for u in graph.out_neighbors(node)
                if colors[u] == colors[node]
            )
            assert conflicts <= alpha * graph.beta(node)

    def test_base_solver_300_nodes(self):
        network = gnp_graph(300, 0.03, seed=74)
        instance = random_arbdefective_instance(
            network, slack=1.2, seed=74, color_space_size=24
        )
        result = solve_arbdefective_base(
            instance, sequential_ids(network), 300
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_theta_route_on_larger_line_graph(self):
        base = gnp_graph(30, 0.15, seed=75)
        line, _ = line_graph_of_network(base)
        result = theta_delta_plus_one_coloring(line, theta=2)
        assert check_proper_coloring(line, result.colors) == []

    def test_randomized_1000_nodes(self):
        network = random_bounded_degree_graph(1000, 6, seed=76)
        ledger = CostLedger()
        result = randomized_delta_plus_one(network, seed=76, ledger=ledger)
        assert check_proper_coloring(network, result.colors) == []
        assert ledger.rounds <= 60
