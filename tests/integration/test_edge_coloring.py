"""(2 Delta - 1)-edge coloring via line graphs -- Theorem 1.5's headline."""

from __future__ import annotations

import pytest

from repro.graphs import (
    edge_coloring_from_line_coloring,
    gnp_graph,
    is_proper_edge_coloring,
    line_graph_of_hypergraph,
    line_graph_of_network,
    neighborhood_independence,
    random_uniform_hypergraph,
    ring_graph,
)
from repro.sim import CostLedger
from repro.coloring import check_proper_coloring
from repro.core import theta_delta_plus_one_coloring


class TestEdgeColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_2delta_minus_1_edge_coloring(self, seed):
        base = gnp_graph(14, 0.25, seed=seed)
        if base.edge_count() == 0:
            pytest.skip("empty graph sampled")
        line, edge_of = line_graph_of_network(base)
        result = theta_delta_plus_one_coloring(line, theta=2)
        edge_colors = edge_coloring_from_line_coloring(
            result.colors, edge_of
        )
        assert is_proper_edge_coloring(base, edge_colors)
        # Delta(L(G)) + 1 <= 2 Delta(G) - 1.
        assert result.color_count() <= max(
            1, 2 * base.raw_max_degree() - 1
        )

    def test_ring_edge_coloring(self):
        base = ring_graph(10)
        line, edge_of = line_graph_of_network(base)
        result = theta_delta_plus_one_coloring(line, theta=2)
        edge_colors = edge_coloring_from_line_coloring(
            result.colors, edge_of
        )
        assert is_proper_edge_coloring(base, edge_colors)
        assert result.color_count() <= 3  # 2*2 - 1


class TestHypergraphEdgeColoring:
    @pytest.mark.parametrize("rank", [2, 3, 4])
    def test_bounded_rank_hypergraph_edge_coloring(self, rank):
        hg = random_uniform_hypergraph(18, 20, rank=rank, seed=rank * 7)
        line, edge_of = line_graph_of_hypergraph(hg)
        theta = neighborhood_independence(line)
        assert theta <= rank
        ledger = CostLedger()
        result = theta_delta_plus_one_coloring(
            line, max(1, theta), ledger=ledger
        )
        assert check_proper_coloring(line, result.colors) == []
        # Proper line-graph coloring = proper hyperedge coloring:
        # intersecting hyperedges got distinct colors.
        for a in line:
            for b in line.neighbors(a):
                assert result.colors[a] != result.colors[b]
                assert edge_of[a] & edge_of[b]
