"""CONGEST enforcement across whole pipelines.

Theorems 1.2-1.5 are CONGEST results: the message budget is part of the
claim.  These tests run the complete pipelines with the simulator's
bandwidth checker armed -- any oversized message kills the run.
"""

from __future__ import annotations

import math

import pytest

from repro.coloring import (
    check_arbdefective,
    check_proper_coloring,
    random_arbdefective_instance,
)
from repro.core import (
    solve_arbdefective_base,
    theta_delta_plus_one_coloring,
    theta_recursive_arbdefective,
)
from repro.graphs import (
    gnp_graph,
    line_graph_of_network,
    neighborhood_independence,
    random_bounded_degree_graph,
)
from repro.sim import CongestModel


def budget_for(network, color_space):
    bits_c = max(1, math.ceil(math.log2(max(2, color_space))))
    return CongestModel(n=len(network), factor=8, extra_bits=bits_c)


class TestTheorem15UnderCongest:
    def test_delta_plus_one_on_line_graph(self):
        base = gnp_graph(14, 0.25, seed=81)
        line, _ = line_graph_of_network(base)
        bandwidth = budget_for(line, line.raw_max_degree() + 1)
        result = theta_delta_plus_one_coloring(
            line, theta=2, bandwidth=bandwidth
        )
        assert check_proper_coloring(line, result.colors) == []

    def test_recursion_with_general_defects(self):
        base = gnp_graph(12, 0.3, seed=82)
        network, _ = line_graph_of_network(base)
        theta = neighborhood_independence(network)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=82, color_space_size=16
        )
        bandwidth = budget_for(network, 16)
        result = theta_recursive_arbdefective(
            instance, theta, bandwidth=bandwidth
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_forced_recursion_under_congest(self):
        base = gnp_graph(12, 0.3, seed=83)
        network, _ = line_graph_of_network(base)
        theta = neighborhood_independence(network)
        from repro.core import lemma_46_slack

        big = lemma_46_slack(theta, network.raw_max_degree())
        instance = random_arbdefective_instance(
            network, slack=big + 1, seed=83, color_space_size=64
        )
        bandwidth = budget_for(network, 64)
        result = theta_recursive_arbdefective(
            instance, theta, bandwidth=bandwidth,
            force_recursion=True, base_degree=0, base_color_space=2,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []


class TestBaseSolverUnderCongest:
    def test_base_solver(self):
        from repro.graphs import sequential_ids

        network = random_bounded_degree_graph(30, 5, seed=84)
        instance = random_arbdefective_instance(
            network, slack=1.4, seed=84, color_space_size=12
        )
        bandwidth = budget_for(network, 12)
        result = solve_arbdefective_base(
            instance, sequential_ids(network), len(network),
            bandwidth=bandwidth,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []
