"""Property-based tests (hypothesis) for the paper's core invariants.

Strategies generate random graphs, orientations and feasible instances;
the properties are the statements of Lemmas 3.1-3.3 and the validity
guarantees of the main algorithms.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import (
    ArbdefectiveInstance,
    OLDCInstance,
    check_arbdefective,
    check_oldc,
    check_proper_coloring,
    feasible_p_values,
    random_arbdefective_instance,
    random_oldc_instance,
)
from repro.core import solve_arbdefective_base, two_sweep
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    orient_random,
    sequential_ids,
)
from repro.sim import Network
from repro.substrates import (
    PolynomialFamily,
    greedy_arbdefective_sweep,
    is_prime,
    linial_coloring,
    next_prime,
    sequential_greedy_coloring,
)

import random as rnd

SUPPRESS = [HealthCheck.too_slow]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw, max_nodes=24):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    p = draw(st.floats(min_value=0.05, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    return gnp_graph(n, p, seed=seed)


@st.composite
def oriented_graphs(draw):
    network = draw(small_graphs())
    if draw(st.booleans()):
        return orient_by_id(network)
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    return orient_random(network, rnd.Random(seed))


# ----------------------------------------------------------------------
# Two-Sweep end-to-end (Theorem 1.1, eps = 0)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(graph=oriented_graphs(),
       p=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_two_sweep_always_valid_on_feasible_instances(graph, p, seed):
    instance = random_oldc_instance(graph, p=p, seed=seed)
    ids = sequential_ids(graph.network)
    result = two_sweep(instance, ids, len(graph.network), p)
    assert check_oldc(instance, result.colors) == []


@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(graph=oriented_graphs(),
       p=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_two_sweep_rounds_at_most_2q_plus_2(graph, p, seed):
    from repro.sim import CostLedger

    instance = random_oldc_instance(graph, p=p, seed=seed)
    ids = sequential_ids(graph.network)
    ledger = CostLedger()
    two_sweep(instance, ids, len(graph.network), p, ledger=ledger)
    assert ledger.rounds <= 2 * len(graph.network) + 2


# ----------------------------------------------------------------------
# Lemma 3.1: the greedy sub-list satisfies Eq. (4)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(graph=oriented_graphs(),
       p=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_lemma_31_sublist_satisfies_eq4(graph, p, seed):
    instance = random_oldc_instance(graph, p=p, seed=seed)
    ids = sequential_ids(graph.network)
    trace = []
    two_sweep(instance, ids, len(graph.network), p, trace=trace)
    order = {node: ids[node] for node in graph.nodes}
    for event in trace:
        if event["phase"] != 1:
            continue
        node = event["node"]
        sublist = event["sublist"]
        k = event["k"]
        later_out = sum(
            1
            for neighbor in graph.out_neighbors(node)
            if order[neighbor] > order[node]
        )
        left = later_out + sum(k[color] for color in sublist)
        right = sum(
            instance.defect(node, color) + 1 for color in sublist
        )
        assert left < right, "Eq. (4) must hold for the chosen S_v"


# ----------------------------------------------------------------------
# Feasible-p arithmetic vs. the raw inequality
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(graph=oriented_graphs(),
       p=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_feasible_p_values_agree_with_eq2(graph, p, seed):
    instance = random_oldc_instance(graph, p=p, seed=seed)
    values = set(feasible_p_values(instance))
    for candidate in range(1, 9):
        direct = all(
            instance.satisfies_eq2(candidate, node)
            for node in graph.nodes
        )
        assert (candidate in values) == direct


# ----------------------------------------------------------------------
# Greedy sweep solves every slack->1 arbdefective instance
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       slack=st.floats(min_value=1.05, max_value=4.0),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_greedy_sweep_valid(network, slack, seed):
    instance = random_arbdefective_instance(
        network, slack=slack, seed=seed,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ids = sequential_ids(network)
    result = greedy_arbdefective_sweep(instance, ids, len(network))
    assert check_arbdefective(
        instance, result.colors, result.orientation
    ) == []


@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       slack=st.floats(min_value=1.05, max_value=3.0),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_base_solver_valid(network, slack, seed):
    instance = random_arbdefective_instance(
        network, slack=slack, seed=seed,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ids = sequential_ids(network)
    result = solve_arbdefective_base(instance, ids, len(network))
    assert check_arbdefective(
        instance, result.colors, result.orientation
    ) == []


# ----------------------------------------------------------------------
# Algebraic substrate properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(m_seed=st.integers(min_value=3, max_value=60),
       k=st.integers(min_value=1, max_value=3),
       a=st.integers(min_value=0, max_value=10 ** 6),
       b=st.integers(min_value=0, max_value=10 ** 6))
def test_polynomials_agree_on_at_most_k_points(m_seed, k, a, b):
    m = next_prime(m_seed)
    capacity = m ** (k + 1)
    a %= capacity
    b %= capacity
    family = PolynomialFamily(q=capacity, m=m, k=k)
    if a == b:
        return
    agreements = sum(
        1 for x in range(m)
        if family.evaluate(a, x) == family.evaluate(b, x)
    )
    assert agreements <= k


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=2000))
def test_next_prime_is_prime_and_minimal(n):
    p = next_prime(n)
    assert is_prime(p)
    assert all(not is_prime(x) for x in range(n, p))


# ----------------------------------------------------------------------
# Linial + greedy invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs(),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_linial_proper_from_random_ids(network, seed):
    from repro.graphs import random_ids

    ids = random_ids(network, seed=seed, bits=24)
    colors, palette = linial_coloring(network, ids, 2 ** 24)
    assert check_proper_coloring(network, colors) == []
    assert all(0 <= colors[node] < palette for node in network)


@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(network=small_graphs())
def test_sequential_greedy_delta_plus_one(network):
    colors = sequential_greedy_coloring(network)
    assert check_proper_coloring(network, colors) == []
    assert max(colors.values(), default=0) <= network.raw_max_degree()
