"""Failure injection: malformed inputs must fail loudly, never silently."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    OLDCInstance,
    random_oldc_instance,
    uniform_lists,
)
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    ring_graph,
    sequential_ids,
)
from repro.sim import (
    AlgorithmFailure,
    BandwidthExceeded,
    CongestModel,
    InfeasibleInstanceError,
    InstanceError,
)
from repro.core import (
    deg_plus_one_list_coloring,
    fast_two_sweep,
    solve_arbdefective_base,
    theta_recursive_arbdefective,
    two_sweep,
)


class TestInfeasibleInstances:
    def test_two_sweep_names_offending_node(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        with pytest.raises(InfeasibleInstanceError) as excinfo:
            two_sweep(instance, sequential_ids(network), 6, 1)
        assert excinfo.value.node in set(network.nodes)
        assert "Eq. (2)" in str(excinfo.value)

    def test_empty_list_infeasible(self):
        network = ring_graph(4)
        lists = {node: () for node in network}
        instance = ArbdefectiveInstance(network, lists, {})
        with pytest.raises(InfeasibleInstanceError):
            solve_arbdefective_base(
                instance, sequential_ids(network), 4
            )

    def test_recursion_infeasible_slack(self):
        network = ring_graph(5)
        lists, defects = uniform_lists(network.nodes, (0, 1), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            theta_recursive_arbdefective(instance, theta=2)


class TestCheckFalseFailsAtRuntime:
    def test_two_sweep_stuck_node_raises_algorithm_failure(self):
        """With check=False an infeasible instance must end in a loud
        AlgorithmFailure (a node with no pickable color), never a bogus
        coloring."""
        network = ring_graph(6)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        with pytest.raises(AlgorithmFailure):
            two_sweep(
                instance, sequential_ids(network), 6, 1, check=False
            )


class TestBandwidthInjection:
    def test_two_sweep_under_absurdly_tight_budget(self):
        """A 1-bit budget cannot even carry initial colors: must raise."""
        network = gnp_graph(20, 0.2, seed=1)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=3, seed=2)
        bandwidth = CongestModel(n=2, factor=1)  # 1 * log2(2) = 1 bit
        with pytest.raises(BandwidthExceeded):
            two_sweep(
                instance, sequential_ids(network), len(network), 3,
                bandwidth=bandwidth,
            )


class TestMalformedInputs:
    def test_lists_missing_node(self):
        network = ring_graph(4)
        with pytest.raises(InstanceError):
            ArbdefectiveInstance(network, {0: (0,)}, {})

    def test_fast_two_sweep_bad_epsilon(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=3)
        with pytest.raises(InstanceError):
            fast_two_sweep(
                instance, sequential_ids(network), 6, 2, -1.0
            )

    def test_deg_plus_one_short_lists(self):
        network = ring_graph(4)
        with pytest.raises(InstanceError):
            deg_plus_one_list_coloring(
                network, {node: (0,) for node in network}
            )

    def test_non_integer_color_rejected(self):
        network = ring_graph(4)
        with pytest.raises(InstanceError):
            ArbdefectiveInstance(
                network, {node: ("red",) for node in network}, {}
            )
