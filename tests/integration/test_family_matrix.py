"""Family matrix: every major pipeline across every graph family.

One parametrized sweep catching family-specific bugs (grids' regularity,
blow-ups' clustered neighborhoods, cliques' theta = 1, line graphs'
bounded theta, trees' degeneracy).
"""

from __future__ import annotations

import pytest

from repro.coloring import (
    check_arbdefective,
    check_oldc,
    check_proper_coloring,
    random_arbdefective_instance,
    random_oldc_instance,
)
from repro.core import (
    delta_plus_one_coloring,
    solve_arbdefective_base,
    theta_delta_plus_one_coloring,
    two_sweep,
)
from repro.graphs import (
    binary_tree,
    blow_up,
    complete_bipartite_graph,
    complete_graph,
    disjoint_cliques,
    grid_graph,
    line_graph_of_network,
    orient_by_id,
    path_graph,
    ring_graph,
    safe_theta,
    sequential_ids,
)

FAMILIES = {
    "grid": lambda: grid_graph(5, 5),
    "tree": lambda: binary_tree(4),
    "clique": lambda: complete_graph(9),
    "bipartite": lambda: complete_bipartite_graph(5, 6),
    "ring": lambda: ring_graph(15),
    "path": lambda: path_graph(15),
    "disjoint-cliques": lambda: disjoint_cliques(3, 5),
    "blow-up": lambda: blow_up(ring_graph(5), 3),
    "line-of-grid": lambda: line_graph_of_network(grid_graph(3, 4))[0],
}


@pytest.fixture(params=sorted(FAMILIES), ids=sorted(FAMILIES))
def family_network(request):
    return FAMILIES[request.param]()


class TestTwoSweepAcrossFamilies:
    def test_oldc(self, family_network):
        network = family_network
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=len(network))
        result = two_sweep(
            instance, sequential_ids(network), len(network), 2
        )
        assert check_oldc(instance, result.colors) == []


class TestBaseSolverAcrossFamilies:
    def test_arbdefective(self, family_network):
        network = family_network
        instance = random_arbdefective_instance(
            network, slack=1.3, seed=len(network),
            color_space_size=max(8, network.raw_max_degree() + 2),
        )
        result = solve_arbdefective_base(
            instance, sequential_ids(network), len(network)
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []


class TestDeltaPlusOneAcrossFamilies:
    def test_theorem_13(self, family_network):
        network = family_network
        result = delta_plus_one_coloring(network)
        assert check_proper_coloring(network, result.colors) == []
        assert max(result.colors.values()) <= network.raw_max_degree()

    def test_theorem_15(self, family_network):
        network = family_network
        theta = safe_theta(network)
        result = theta_delta_plus_one_coloring(network, theta)
        assert check_proper_coloring(network, result.colors) == []
        assert max(result.colors.values()) <= network.raw_max_degree()
