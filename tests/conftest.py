"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    complete_graph,
    gnp_graph,
    orient_by_id,
    path_graph,
    random_bounded_degree_graph,
    ring_graph,
    sequential_ids,
    star_graph,
)
from repro.sim import CostLedger, Network


@pytest.fixture
def triangle() -> Network:
    return complete_graph(3)


@pytest.fixture
def small_path() -> Network:
    return path_graph(5)


@pytest.fixture
def small_ring() -> Network:
    return ring_graph(8)


@pytest.fixture
def small_star() -> Network:
    return star_graph(6)


@pytest.fixture
def medium_random() -> Network:
    return gnp_graph(40, 0.12, seed=101)


@pytest.fixture
def bounded_degree() -> Network:
    return random_bounded_degree_graph(50, 5, seed=202)


@pytest.fixture
def ledger() -> CostLedger:
    return CostLedger()


def proper_ids(network: Network):
    """Sequential IDs viewed as a trivially proper n-coloring (0..n-1)."""
    return sequential_ids(network), len(network)


def oriented_conflicts(graph, colors, node):
    """Same-colored out-neighbors of ``node`` (validator cross-check)."""
    return sum(
        1 for neighbor in graph.out_neighbors(node)
        if colors[neighbor] == colors[node]
    )


def undirected_conflicts(network: Network, colors, node):
    """Same-colored neighbors of ``node``."""
    return sum(
        1 for neighbor in network.neighbors(node)
        if colors[neighbor] == colors[node]
    )


def random_proper_coloring_graph(n: int, degree: int, seed: int):
    """(network, oriented-by-id graph, sequential ids, q) tuple."""
    network = random_bounded_degree_graph(n, degree, seed)
    return network, orient_by_id(network), sequential_ids(network), n
