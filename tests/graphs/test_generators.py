"""Tests for graph generators."""

from __future__ import annotations

import pytest

from repro.graphs import (
    binary_tree,
    blow_up,
    complete_bipartite_graph,
    complete_graph,
    disjoint_cliques,
    empty_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_bounded_degree_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
)
from repro.sim import NetworkError


class TestDeterministicFamilies:
    def test_empty(self):
        network = empty_graph(5)
        assert len(network) == 5
        assert network.edge_count() == 0

    def test_path(self):
        network = path_graph(6)
        assert network.edge_count() == 5
        assert network.degree(0) == 1
        assert network.degree(3) == 2

    def test_ring(self):
        network = ring_graph(7)
        assert network.edge_count() == 7
        assert all(network.degree(v) == 2 for v in network)

    def test_ring_too_small(self):
        with pytest.raises(NetworkError):
            ring_graph(2)

    def test_complete(self):
        network = complete_graph(5)
        assert network.edge_count() == 10
        assert all(network.degree(v) == 4 for v in network)

    def test_complete_bipartite(self):
        network = complete_bipartite_graph(3, 4)
        assert network.edge_count() == 12
        assert network.degree(0) == 4
        assert network.degree(3) == 3

    def test_star(self):
        network = star_graph(5)
        assert network.degree(0) == 5
        assert all(network.degree(v) == 1 for v in range(1, 6))

    def test_grid(self):
        network = grid_graph(3, 4)
        assert len(network) == 12
        assert network.edge_count() == 3 * 3 + 2 * 4

    def test_binary_tree(self):
        network = binary_tree(3)
        assert len(network) == 15
        assert network.edge_count() == 14
        assert network.degree(0) == 2

    def test_disjoint_cliques(self):
        network = disjoint_cliques(3, 4)
        assert len(network) == 12
        assert network.edge_count() == 3 * 6
        assert not network.has_edge(0, 4)


class TestRandomFamilies:
    def test_gnp_reproducible(self):
        a = gnp_graph(30, 0.2, seed=7)
        b = gnp_graph(30, 0.2, seed=7)
        assert set(a.edges()) == set(b.edges())

    def test_gnp_seed_changes_graph(self):
        a = gnp_graph(30, 0.2, seed=7)
        b = gnp_graph(30, 0.2, seed=8)
        assert set(a.edges()) != set(b.edges())

    def test_gnp_extreme_probabilities(self):
        assert gnp_graph(10, 0.0, seed=1).edge_count() == 0
        assert gnp_graph(10, 1.0, seed=1).edge_count() == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(NetworkError):
            gnp_graph(10, 1.5, seed=1)

    def test_regular_graph_degrees(self):
        network = random_regular_graph(20, 4, seed=3)
        assert all(network.degree(v) == 4 for v in network)

    def test_regular_parity_check(self):
        with pytest.raises(NetworkError):
            random_regular_graph(5, 3, seed=1)

    def test_regular_degree_bound(self):
        with pytest.raises(NetworkError):
            random_regular_graph(4, 4, seed=1)

    def test_bounded_degree_respected(self):
        network = random_bounded_degree_graph(60, 5, seed=9)
        assert network.raw_max_degree() <= 5
        assert network.edge_count() > 0


class TestBlowUp:
    def test_sizes(self):
        base = path_graph(3)
        blown = blow_up(base, 2)
        assert len(blown) == 6
        # Each base edge becomes a K_{2,2}: 4 edges.
        assert blown.edge_count() == 2 * 4

    def test_copies_of_same_node_independent(self):
        blown = blow_up(path_graph(2), 3)
        # Copies of node 0 are 0, 1, 2 -- mutually non-adjacent.
        assert not blown.has_edge(0, 1)
        assert blown.has_edge(0, 3)

    def test_degree_multiplied(self):
        base = ring_graph(5)
        blown = blow_up(base, 3)
        assert blown.raw_max_degree() == 3 * base.raw_max_degree()
