"""Tests for identifier assignment."""

from __future__ import annotations

from repro.graphs import (
    gnp_graph,
    id_space_size,
    ids_as_coloring,
    random_ids,
    ring_graph,
    sequential_ids,
)


class TestSequentialIds:
    def test_unique_and_dense(self, small_ring):
        ids = sequential_ids(small_ring)
        assert sorted(ids.values()) == list(range(len(small_ring)))


class TestRandomIds:
    def test_unique(self):
        network = gnp_graph(40, 0.1, seed=1)
        ids = random_ids(network, seed=5)
        assert len(set(ids.values())) == len(network)

    def test_default_space_quadratic(self):
        network = ring_graph(10)
        ids = random_ids(network, seed=5)
        assert all(0 <= value < 100 for value in ids.values())

    def test_bits_parameter(self):
        network = ring_graph(10)
        ids = random_ids(network, seed=5, bits=20)
        assert all(0 <= value < 2 ** 20 for value in ids.values())

    def test_reproducible(self):
        network = ring_graph(10)
        assert random_ids(network, seed=3) == random_ids(network, seed=3)


class TestIdsAsColoring:
    def test_shifted_to_one_based(self):
        network = ring_graph(5)
        ids = sequential_ids(network)
        coloring = ids_as_coloring(ids)
        assert min(coloring.values()) == 1
        assert max(coloring.values()) == 5

    def test_space_size(self):
        network = ring_graph(5)
        ids = {node: node * 3 for node in network}
        assert id_space_size(ids) == 13

    def test_empty(self):
        assert id_space_size({}) == 1
