"""Tests for bounded-rank hypergraphs."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Hypergraph,
    complete_uniform_hypergraph,
    graph_as_hypergraph,
    partitioned_hypergraph,
    random_hypergraph,
    random_uniform_hypergraph,
)
from repro.sim import NetworkError


class TestConstruction:
    def test_rank(self):
        hg = Hypergraph(5, (frozenset({0, 1}), frozenset({1, 2, 3})))
        assert hg.rank == 3

    def test_edgeless_rank_zero(self):
        assert Hypergraph(3, ()).rank == 0

    def test_singleton_edge_rejected(self):
        with pytest.raises(NetworkError):
            Hypergraph(3, (frozenset({0}),))

    def test_unknown_vertex_rejected(self):
        with pytest.raises(NetworkError):
            Hypergraph(3, (frozenset({0, 7}),))

    def test_duplicate_edges_rejected(self):
        edge = frozenset({0, 1})
        with pytest.raises(NetworkError):
            Hypergraph(3, (edge, edge))

    def test_vertex_degree(self):
        hg = Hypergraph(4, (frozenset({0, 1}), frozenset({0, 2, 3})))
        assert hg.vertex_degree(0) == 2
        assert hg.vertex_degree(3) == 1
        assert hg.max_vertex_degree() == 2


class TestGraphAsHypergraph:
    def test_rank_two(self):
        hg = graph_as_hypergraph([(0, 1), (1, 2)], 3)
        assert hg.rank == 2
        assert len(hg.edges) == 2


class TestRandomFamilies:
    def test_random_hypergraph_rank_respected(self):
        hg = random_hypergraph(20, 15, rank=4, seed=5)
        assert len(hg.edges) == 15
        assert 2 <= hg.rank <= 4

    def test_random_reproducible(self):
        a = random_hypergraph(20, 10, rank=3, seed=2)
        b = random_hypergraph(20, 10, rank=3, seed=2)
        assert a.edges == b.edges

    def test_uniform_all_edges_full_rank(self):
        hg = random_uniform_hypergraph(15, 12, rank=3, seed=1)
        assert all(len(edge) == 3 for edge in hg.edges)

    def test_rank_validation(self):
        with pytest.raises(NetworkError):
            random_hypergraph(10, 5, rank=1, seed=1)
        with pytest.raises(NetworkError):
            random_uniform_hypergraph(2, 1, rank=3, seed=1)

    def test_impossible_edge_count_rejected(self):
        # Only C(3,2)=3 distinct rank-2 edges exist on 3 vertices.
        with pytest.raises(NetworkError):
            random_uniform_hypergraph(3, 10, rank=2, seed=1)


class TestStructuredFamilies:
    def test_complete_uniform(self):
        hg = complete_uniform_hypergraph(5, 3)
        assert len(hg.edges) == 10
        assert hg.rank == 3

    def test_partitioned_edges_stay_in_groups(self):
        hg = partitioned_hypergraph(groups=3, group_size=5, rank=3, seed=7)
        for edge in hg.edges:
            groups_touched = {v // 5 for v in edge}
            assert len(groups_touched) == 1
