"""Tests for neighborhood independence computation."""

from __future__ import annotations

from repro.graphs import (
    complete_bipartite_graph,
    complete_graph,
    empty_graph,
    gnp_graph,
    neighborhood_independence,
    neighborhood_independence_at,
    path_graph,
    ring_graph,
    star_graph,
    verify_independence_bound,
)


class TestExactValues:
    def test_clique_theta_one(self):
        # Every neighborhood of a clique is itself a clique.
        assert neighborhood_independence(complete_graph(5)) == 1

    def test_star_theta_is_leaf_count(self):
        assert neighborhood_independence(star_graph(6)) == 6

    def test_ring_theta_two(self):
        assert neighborhood_independence(ring_graph(8)) == 2

    def test_path_endpoints_and_middles(self):
        network = path_graph(4)
        assert neighborhood_independence_at(network, 0) == 1
        assert neighborhood_independence_at(network, 1) == 2

    def test_complete_bipartite(self):
        # N(left vertex) = right side, an independent set of size b.
        assert neighborhood_independence(complete_bipartite_graph(3, 4)) == 4

    def test_edgeless_graph_theta_zero(self):
        assert neighborhood_independence(empty_graph(4)) == 0


class TestGreedyLowerBound:
    def test_greedy_never_exceeds_exact(self):
        for seed in range(5):
            network = gnp_graph(18, 0.3, seed=seed)
            exact = neighborhood_independence(network, exact=True)
            greedy = neighborhood_independence(network, exact=False)
            assert greedy <= exact

    def test_greedy_exact_on_star(self):
        network = star_graph(5)
        assert neighborhood_independence(network, exact=False) == 5


class TestVerifyBound:
    def test_bound_holds(self):
        assert verify_independence_bound(ring_graph(6), 2)
        assert verify_independence_bound(ring_graph(6), 3)

    def test_bound_violated(self):
        assert not verify_independence_bound(star_graph(4), 3)


class TestUpperBound:
    def test_upper_bound_dominates_exact(self):
        from repro.graphs import neighborhood_independence_upper

        for seed in range(6):
            network = gnp_graph(20, 0.3, seed=seed)
            exact = neighborhood_independence(network, exact=True)
            upper = neighborhood_independence_upper(network)
            assert upper >= exact

    def test_upper_bound_tight_on_cliques(self):
        from repro.graphs import neighborhood_independence_upper

        assert neighborhood_independence_upper(complete_graph(6)) == 1

    def test_upper_bound_tight_on_stars(self):
        from repro.graphs import neighborhood_independence_upper

        assert neighborhood_independence_upper(star_graph(5)) == 5


class TestSafeTheta:
    def test_exact_for_small_degrees(self):
        from repro.graphs import safe_theta

        network = ring_graph(10)
        assert safe_theta(network) == 2

    def test_upper_bound_for_large_degrees(self):
        from repro.graphs import neighborhood_independence_upper, safe_theta

        network = gnp_graph(40, 0.6, seed=3)
        assert network.raw_max_degree() > 20
        assert safe_theta(network) == neighborhood_independence_upper(
            network
        )

    def test_feeds_theorem_15_safely(self):
        from repro.coloring import check_proper_coloring
        from repro.core import theta_delta_plus_one_coloring

        network = gnp_graph(18, 0.3, seed=4)
        result = theta_delta_plus_one_coloring(network)  # theta=None
        assert check_proper_coloring(network, result.colors) == []
