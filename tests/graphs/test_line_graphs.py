"""Tests for line graphs and the theta <= rank guarantee."""

from __future__ import annotations

from repro.graphs import (
    complete_graph,
    edge_coloring_from_line_coloring,
    gnp_graph,
    is_proper_edge_coloring,
    line_graph_of_hypergraph,
    line_graph_of_network,
    neighborhood_independence,
    path_graph,
    random_uniform_hypergraph,
    ring_graph,
    star_graph,
)
from repro.substrates import sequential_greedy_coloring


class TestLineGraphOfNetwork:
    def test_path_line_graph_is_path(self):
        lg, edge_of = line_graph_of_network(path_graph(4))
        assert len(lg) == 3
        assert lg.edge_count() == 2

    def test_star_line_graph_is_clique(self):
        lg, _ = line_graph_of_network(star_graph(4))
        assert len(lg) == 4
        assert lg.edge_count() == 6

    def test_triangle_line_graph_is_triangle(self):
        lg, _ = line_graph_of_network(complete_graph(3))
        assert len(lg) == 3
        assert lg.edge_count() == 3

    def test_edge_mapping_covers_all_edges(self):
        base = gnp_graph(12, 0.3, seed=2)
        lg, edge_of = line_graph_of_network(base)
        assert len(edge_of) == base.edge_count()
        mapped = {frozenset(edge) for edge in edge_of.values()}
        assert mapped == {frozenset(edge) for edge in base.edges()}

    def test_theta_at_most_two(self):
        base = gnp_graph(14, 0.3, seed=3)
        lg, _ = line_graph_of_network(base)
        assert neighborhood_independence(lg) <= 2


class TestLineGraphOfHypergraph:
    def test_theta_at_most_rank(self):
        for rank in (2, 3, 4):
            hg = random_uniform_hypergraph(18, 20, rank=rank, seed=rank)
            lg, _ = line_graph_of_hypergraph(hg)
            assert neighborhood_independence(lg) <= rank

    def test_adjacency_iff_intersection(self):
        hg = random_uniform_hypergraph(12, 10, rank=3, seed=9)
        lg, edge_of = line_graph_of_hypergraph(hg)
        for a in lg:
            for b in lg:
                if a >= b:
                    continue
                intersects = bool(edge_of[a] & edge_of[b])
                assert lg.has_edge(a, b) == intersects


class TestEdgeColoring:
    def test_line_coloring_roundtrip_is_proper_edge_coloring(self):
        base = ring_graph(9)
        lg, edge_of = line_graph_of_network(base)
        line_colors = sequential_greedy_coloring(lg)
        edge_colors = edge_coloring_from_line_coloring(line_colors, edge_of)
        assert is_proper_edge_coloring(base, edge_colors)

    def test_detects_conflicting_edge_colors(self):
        base = path_graph(3)
        bad = {(0, 1): 0, (1, 2): 0}
        assert not is_proper_edge_coloring(base, bad)

    def test_detects_missing_edges(self):
        base = path_graph(3)
        partial = {(0, 1): 0}
        assert not is_proper_edge_coloring(base, partial)

    def test_greedy_uses_at_most_2delta_minus_1_colors(self):
        base = gnp_graph(15, 0.3, seed=6)
        lg, edge_of = line_graph_of_network(base)
        line_colors = sequential_greedy_coloring(lg)
        used = len(set(line_colors.values()))
        assert used <= 2 * base.raw_max_degree() - 1
