"""Contiguous CSR partitions: balance, ownership, halos, relabeling."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Partition,
    bfs_relabel,
    partition_by_edges,
    shard_boundaries,
)
from repro.graphs.streaming import (
    csr_from_edges,
    gnp_edges,
    grid_edges,
    ring_edges,
)


def _ring_csr(n):
    return csr_from_edges(n, ring_edges(n))


class TestPartition:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Partition(10, [0, 5])  # last bound != n
        with pytest.raises(ValueError):
            Partition(10, [1, 10])  # first bound != 0
        with pytest.raises(ValueError):
            Partition(10, [0, 7, 3, 10])  # decreasing
        with pytest.raises(ValueError):
            Partition(10, [10])  # too short

    def test_ranges_cover_exactly(self):
        part = Partition(10, [0, 3, 3, 10])
        assert part.shards == 3
        assert part.range_of(0) == (0, 3)
        assert part.range_of(1) == (3, 3)  # empty shard is legal
        assert part.range_of(2) == (3, 10)
        assert part.sizes() == [3, 0, 7]
        assert sum(part.sizes()) == part.n

    def test_owner_of_matches_ranges(self):
        part = Partition(20, [0, 5, 11, 20])
        for node in range(20):
            owner = part.owner_of(node)
            lo, hi = part.range_of(owner)
            assert lo <= node < hi
        with pytest.raises(ValueError):
            part.owner_of(-1)
        with pytest.raises(ValueError):
            part.owner_of(20)

    def test_owner_of_skips_empty_shards(self):
        part = Partition(6, [0, 3, 3, 6])
        assert part.owner_of(2) == 0
        assert part.owner_of(3) == 2


class TestPartitionByEdges:
    def test_rejects_bad_shard_count(self):
        indptr, _ = _ring_csr(8)
        with pytest.raises(ValueError):
            partition_by_edges(indptr, 0)

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_covers_all_nodes(self, shards):
        indptr, _ = _ring_csr(30)
        part = partition_by_edges(indptr, shards)
        assert part.shards == shards
        assert part.bounds[0] == 0 and part.bounds[-1] == 30
        assert sum(part.sizes()) == 30

    def test_uniform_degrees_split_evenly(self):
        indptr, _ = _ring_csr(100)
        part = partition_by_edges(indptr, 4)
        assert part.sizes() == [25, 25, 25, 25]

    def test_skewed_degrees_balance_by_edges(self):
        # A star center at node 0 with 60 leaves: an equal-node split
        # would give shard 0 virtually all edges; the edge-balanced cut
        # must isolate the hub instead.
        edges = [(0, leaf) for leaf in range(1, 61)]
        indptr, _ = csr_from_edges(61, edges)
        part = partition_by_edges(indptr, 2)
        lo, hi = part.range_of(0)
        first_edges = indptr[hi] - indptr[lo]
        total = indptr[61]
        assert hi - lo < 10  # the hub shard is node-skinny...
        assert first_edges >= total // 3  # ...but edge-heavy

    def test_more_shards_than_nodes(self):
        indptr, _ = _ring_csr(3)
        part = partition_by_edges(indptr, 8)
        assert part.shards == 8
        assert sum(part.sizes()) == 3

    def test_edgeless_graph_balances_by_nodes(self):
        indptr = [0] * 9  # 8 isolated nodes
        part = partition_by_edges(indptr, 4)
        assert part.sizes() == [2, 2, 2, 2]


class TestShardBoundaries:
    def test_ring_boundaries_are_the_endpoints(self):
        indptr, indices = _ring_csr(12)
        part = partition_by_edges(indptr, 3)
        boundary, halo, cut = shard_boundaries(indptr, indices, part, 0)
        lo, hi = part.range_of(0)
        # On a ring only the two endpoint nodes touch other shards.
        assert boundary == [lo, hi - 1]
        assert cut == 2
        assert all(j < lo or j >= hi for j in halo)
        assert halo == sorted(halo)

    def test_cut_edges_symmetric_across_shards(self):
        indptr, indices = csr_from_edges(80, gnp_edges(80, 0.1, seed=3))
        part = partition_by_edges(indptr, 4)
        cuts = [shard_boundaries(indptr, indices, part, s)[2]
                for s in range(4)]
        # Every crossing CSR entry (i -> j) has a mirror (j -> i), so
        # the total over shards is even.
        assert sum(cuts) % 2 == 0

    def test_single_shard_has_no_boundary(self):
        indptr, indices = _ring_csr(10)
        part = partition_by_edges(indptr, 1)
        boundary, halo, cut = shard_boundaries(indptr, indices, part, 0)
        assert boundary == [] and halo == [] and cut == 0


class TestBfsRelabel:
    def test_is_a_permutation(self):
        indptr, indices = csr_from_edges(50, gnp_edges(50, 0.08, seed=5))
        perm = bfs_relabel(indptr, indices)
        assert sorted(perm) == list(range(50))

    def test_covers_disconnected_components(self):
        # Two disjoint triangles.
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        indptr, indices = csr_from_edges(6, edges)
        perm = bfs_relabel(indptr, indices)
        assert sorted(perm) == list(range(6))
        # BFS from node 0 stays inside the first component.
        assert {perm[0], perm[1], perm[2]} == {0, 1, 2}

    def test_reduces_grid_cut_edges(self):
        # Scatter a grid's ids, then check BFS relabeling recovers
        # locality: the 2-shard cut of the relabeled CSR is no worse
        # than the scrambled one.
        import random

        rows, cols = 8, 8
        n = rows * cols
        shuffle = list(range(n))
        random.Random(11).shuffle(shuffle)
        edges = [(shuffle[u], shuffle[v]) for u, v in grid_edges(rows, cols)]
        indptr, indices = csr_from_edges(n, edges)
        perm = bfs_relabel(indptr, indices)
        relabeled = [(perm[u], perm[v]) for u, v in edges]
        r_indptr, r_indices = csr_from_edges(n, relabeled)

        def cut(ip, ix):
            part = partition_by_edges(ip, 2)
            return sum(shard_boundaries(ip, ix, part, s)[2]
                       for s in range(2))

        assert cut(r_indptr, r_indices) <= cut(indptr, indices)
