"""Tests for oriented graphs and orientation constructors."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    OrientedGraph,
    complete_graph,
    gnp_graph,
    orient_all_out,
    orient_by_coloring,
    orient_by_id,
    orient_by_key,
    orient_low_outdegree,
    orient_random,
    path_graph,
    ring_graph,
)
from repro.sim import Network, NetworkError


def assert_valid_orientation(graph: OrientedGraph):
    """Every undirected edge is oriented exactly one way."""
    for u, v in graph.network.edges():
        assert graph.points_to(u, v) != graph.points_to(v, u)


class TestConstruction:
    def test_explicit_orientation(self):
        network = path_graph(3)
        graph = OrientedGraph(network, {0: [], 1: [0], 2: [1]})
        assert graph.outdegree(0) == 0
        assert graph.in_neighbors(0) == (1,)
        assert_valid_orientation(graph)

    def test_unoriented_edge_rejected(self):
        network = path_graph(2)
        with pytest.raises(NetworkError):
            OrientedGraph(network, {0: [], 1: []})

    def test_doubly_oriented_edge_rejected(self):
        network = path_graph(2)
        with pytest.raises(NetworkError):
            OrientedGraph(network, {0: [1], 1: [0]})

    def test_non_edge_rejected(self):
        network = path_graph(3)
        with pytest.raises(NetworkError):
            OrientedGraph(network, {0: [2], 1: [0, 2], 2: []})


class TestBetaConvention:
    def test_beta_floored_at_one(self):
        graph = orient_by_id(path_graph(2))
        sink = next(v for v in graph.nodes if graph.outdegree(v) == 0)
        assert graph.beta(sink) == 1

    def test_max_beta_vs_max_outdegree(self):
        graph = orient_by_id(path_graph(1))
        assert graph.max_outdegree() == 0
        assert graph.max_beta() == 1


class TestOrienters:
    def test_orient_by_id_acyclic(self):
        graph = orient_by_id(ring_graph(6))
        assert_valid_orientation(graph)
        # Every edge points to the smaller id: node 0 is a sink.
        assert graph.outdegree(0) == 0

    def test_orient_by_key(self):
        network = path_graph(4)
        graph = orient_by_key(network, key=lambda v: -v)
        # Edges point towards larger original ids now.
        assert graph.points_to(0, 1)
        assert_valid_orientation(graph)

    def test_orient_by_coloring_requires_proper(self):
        network = path_graph(3)
        with pytest.raises(NetworkError):
            orient_by_coloring(network, {0: 1, 1: 1, 2: 2})

    def test_orient_by_coloring_points_to_smaller_color(self):
        network = path_graph(3)
        graph = orient_by_coloring(network, {0: 2, 1: 1, 2: 3})
        assert graph.points_to(0, 1)
        assert graph.points_to(2, 1)
        assert_valid_orientation(graph)

    def test_orient_random_valid(self):
        graph = orient_random(gnp_graph(25, 0.2, seed=4), random.Random(1))
        assert_valid_orientation(graph)

    def test_orient_low_outdegree_on_tree(self):
        # Trees are 1-degenerate: outdegree at most 1.
        from repro.graphs import binary_tree

        graph = orient_low_outdegree(binary_tree(4))
        assert graph.max_outdegree() <= 1
        assert_valid_orientation(graph)

    def test_orient_low_outdegree_on_clique(self):
        graph = orient_low_outdegree(complete_graph(6))
        assert_valid_orientation(graph)
        assert graph.max_outdegree() <= 5


class TestSubgraphAndEdgeRemoval:
    def test_subgraph_keeps_orientation(self):
        graph = orient_by_id(ring_graph(6))
        sub = graph.subgraph([0, 1, 2])
        assert sub.points_to(1, 0)
        assert sub.points_to(2, 1)
        assert len(sub) == 3

    def test_without_edges(self):
        graph = orient_by_id(complete_graph(4))
        reduced = graph.without_edges([(0, 1), (2, 3)])
        assert not reduced.network.has_edge(0, 1)
        assert not reduced.network.has_edge(3, 2)
        assert reduced.network.has_edge(0, 2)
        assert_valid_orientation(reduced)

    def test_without_edges_direction_agnostic(self):
        graph = orient_by_id(path_graph(2))
        reduced = graph.without_edges([(0, 1)])
        assert reduced.network.edge_count() == 0


class TestBidirectedView:
    def test_all_neighbors_are_out(self):
        view = orient_all_out(ring_graph(5))
        assert set(view.out_neighbors(0)) == set(view.neighbors(0))
        assert view.beta(0) == 2
        assert view.max_beta() == 2
        assert view.points_to(0, 1) and view.points_to(1, 0)


class TestBidirectedDerivedGraphs:
    def test_subgraph(self):
        view = orient_all_out(ring_graph(6))
        sub = view.subgraph([0, 1, 2])
        assert set(sub.out_neighbors(1)) == {0, 2}
        assert sub.max_beta() == 2

    def test_without_edges(self):
        view = orient_all_out(ring_graph(4))
        reduced = view.without_edges([(0, 1), (1, 0)])
        assert not reduced.network.has_edge(0, 1)
        assert reduced.network.has_edge(1, 2)
        assert 0 not in reduced.out_neighbors(1)
