"""The streaming CSR topology builders and their equivalence contract.

The contract: a streamed topology is *byte-identical* to the
materialized one.  For the deterministic families
(ring/grid/tree) the streams replay the materialized generators' edge
order, so ``stream_ring(n)`` equals ``ring_graph(n).compile()`` buffer
for buffer; for the randomized families (gnp/regular) the stream is a
seeded distribution of its own and is pinned byte-identical against
``Network.from_edges`` over the same stream.  The NumPy and Python CSR
fills must agree bit for bit, large topologies must bypass the
interning registry, and the seed colorings driving the scale workloads
must be proper.
"""

from __future__ import annotations

from array import array

import pytest

from repro.graphs import (
    binary_tree,
    gnp_graph,
    grid_graph,
    ring_graph,
)
from repro.graphs import generators
from repro.graphs.streaming import (
    csr_from_edges,
    gnp_edges,
    greedy_seed_coloring,
    grid_edges,
    inflated_seed_coloring,
    regular_edges,
    ring_edges,
    stream_gnp,
    stream_grid,
    stream_regular,
    stream_ring,
    stream_tree,
    tree_edges,
    _csr_fill_numpy,
    _csr_fill_python,
)
from repro.sim import CompiledNetwork, Network
from repro.sim.errors import NetworkError


def _csr_bytes(compiled: CompiledNetwork):
    return (bytes(memoryview(compiled.indptr)),
            bytes(memoryview(compiled.indices)))


# ----------------------------------------------------------------------
# Byte-identity against the materialized generators
# ----------------------------------------------------------------------
class TestDeterministicTwins:
    @pytest.mark.parametrize("n", [3, 4, 17, 100])
    def test_ring(self, n):
        assert _csr_bytes(stream_ring(n)) == \
            _csr_bytes(ring_graph(n).compile())

    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 5), (4, 4), (5, 7)])
    def test_grid(self, rows, cols):
        assert _csr_bytes(stream_grid(rows, cols)) == \
            _csr_bytes(grid_graph(rows, cols).compile())

    @pytest.mark.parametrize("depth", [0, 1, 4, 6])
    def test_tree(self, depth):
        assert _csr_bytes(stream_tree(depth)) == \
            _csr_bytes(binary_tree(depth).compile())

    def test_dense_order_matches(self):
        compiled = stream_ring(12)
        assert list(compiled.order) == list(range(12))
        materialized = ring_graph(12).compile()
        assert list(compiled.order) == list(materialized.order)


class TestRandomizedStreams:
    """gnp/regular are distributions of their own; the CSR contract is
    byte-identity against ``Network.from_edges`` over the same stream."""

    @pytest.mark.parametrize("n,p,seed", [
        (60, 0.1, 7), (40, 0.5, 1), (25, 1.0, 0), (30, 0.0, 3), (0, 0.3, 5),
    ])
    def test_gnp_matches_from_edges(self, n, p, seed):
        stream = list(gnp_edges(n, p, seed))
        materialized = Network.from_edges(range(n), stream).compile()
        assert _csr_bytes(stream_gnp(n, p, seed)) == _csr_bytes(materialized)

    @pytest.mark.parametrize("n,degree,seed", [
        (40, 4, 3), (20, 3, 9), (12, 0, 1),
    ])
    def test_regular_matches_from_edges(self, n, degree, seed):
        stream = list(regular_edges(n, degree, seed))
        materialized = Network.from_edges(range(n), stream).compile()
        assert _csr_bytes(stream_regular(n, degree, seed)) == \
            _csr_bytes(materialized)

    def test_regular_is_regular_and_simple(self):
        stream = list(regular_edges(50, 4, 11))
        assert len(stream) == 50 * 4 // 2
        assert len({tuple(sorted(edge)) for edge in stream}) == len(stream)
        degrees = [0] * 50
        for u, v in stream:
            assert u != v
            degrees[u] += 1
            degrees[v] += 1
        assert set(degrees) == {4}

    def test_gnp_is_seeded(self):
        assert list(gnp_edges(50, 0.2, 3)) == list(gnp_edges(50, 0.2, 3))
        assert list(gnp_edges(50, 0.2, 3)) != list(gnp_edges(50, 0.2, 4))


class TestCSRFills:
    def test_numpy_fill_matches_python(self):
        numpy = pytest.importorskip("numpy")
        for n, p, seed in [(300, 0.05, 5), (50, 0.4, 2), (10, 0.0, 1)]:
            pairs = array("q")
            for u, v in gnp_edges(n, p, seed):
                pairs.append(u)
                pairs.append(v)
            py_indptr, py_indices = _csr_fill_python(n, pairs)
            np_indptr, np_indices = _csr_fill_numpy(numpy, n, pairs)
            assert bytes(memoryview(py_indptr)) == \
                bytes(memoryview(np_indptr))
            assert bytes(memoryview(py_indices)) == \
                bytes(memoryview(np_indices))

    def test_empty_graph(self):
        indptr, indices = csr_from_edges(5, iter(()))
        assert list(indptr) == [0] * 6
        assert len(indices) == 0
        indptr, indices = csr_from_edges(0, iter(()))
        assert list(indptr) == [0]


class TestErrors:
    def test_ring_too_small(self):
        with pytest.raises(NetworkError):
            list(ring_edges(2))

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkError):
            csr_from_edges(3, iter([(1, 1)]))

    def test_out_of_range_rejected(self):
        with pytest.raises(NetworkError):
            csr_from_edges(3, iter([(0, 3)]))
        with pytest.raises(NetworkError):
            csr_from_edges(3, iter([(-1, 0)]))

    def test_gnp_probability_range(self):
        with pytest.raises(NetworkError):
            list(gnp_edges(5, 1.5, 0))
        with pytest.raises(NetworkError):
            stream_gnp(5, -0.1, 0)

    def test_regular_parity_and_degree(self):
        with pytest.raises(NetworkError):
            list(regular_edges(5, 3, 0))  # odd n * degree
        with pytest.raises(NetworkError):
            list(regular_edges(4, 4, 0))  # degree >= n
        with pytest.raises(NetworkError):
            stream_regular(4, 5, 0)


# ----------------------------------------------------------------------
# Interning gate and shared-memory lookup
# ----------------------------------------------------------------------
class TestInterning:
    def test_small_topologies_are_interned(self):
        assert stream_ring(64) is stream_ring(64)

    def test_large_topologies_bypass_registry(self, monkeypatch):
        monkeypatch.setattr(generators, "INTERN_NODE_LIMIT", 10)
        first = stream_ring(64)
        second = stream_ring(64)
        assert first is not second
        assert _csr_bytes(first) == _csr_bytes(second)

    def test_published_topology_wins(self):
        from repro.sim import shm

        key = ("ring-stream", 23)
        indptr, indices = csr_from_edges(23, ring_edges(23))
        published = CompiledNetwork.from_csr(indptr, indices)
        if shm.publish(key, published) is None:
            pytest.skip("shared memory unusable here")
        try:
            assert stream_ring(23) is published
        finally:
            shm.unlink_all()


# ----------------------------------------------------------------------
# Seed colorings
# ----------------------------------------------------------------------
class TestSeedColorings:
    def _assert_proper(self, compiled, colors):
        indptr, indices = compiled.indptr, compiled.indices
        for i in range(compiled.n):
            for j in indices[indptr[i]:indptr[i + 1]]:
                assert colors[i] != colors[j]

    @pytest.mark.parametrize("builder", [
        lambda: stream_ring(31),
        lambda: stream_gnp(80, 0.1, 5),
        lambda: stream_regular(30, 4, 2),
    ])
    def test_greedy_seed_is_proper_and_small(self, builder):
        compiled = builder()
        seed = greedy_seed_coloring(compiled)
        self._assert_proper(compiled, seed)
        assert max(seed) <= compiled.raw_max_degree()

    def test_inflated_is_proper_within_palette(self):
        compiled = stream_gnp(60, 0.15, 9)
        colors, q_used = inflated_seed_coloring(compiled, 40)
        assert q_used <= 40
        assert set(colors) == set(compiled.order)
        assert all(0 <= colors[node] < q_used for node in colors)
        dense = [colors[node] for node in compiled.order]
        self._assert_proper(compiled, dense)

    def test_inflated_rejects_tiny_palette(self):
        compiled = stream_gnp(60, 0.3, 1)
        seed = greedy_seed_coloring(compiled)
        classes = max(seed) + 1
        with pytest.raises(NetworkError):
            inflated_seed_coloring(compiled, classes - 1)

    def test_matches_scheduler_engines(self):
        """The streamed facade feeds all three engines identically."""
        from repro.sim import CostLedger, use_engine
        from repro.substrates.greedy import greedy_color_reduction

        compiled = stream_gnp(70, 0.12, 3)
        target = compiled.raw_max_degree() + 1
        colors, q = inflated_seed_coloring(compiled, 4 * target)
        results = {}
        for engine in ("reference", "fast", "vectorized"):
            ledger = CostLedger()
            with use_engine(engine):
                out = greedy_color_reduction(compiled, colors, q, target,
                                             ledger=ledger)
            results[engine] = (sorted(out.items()),
                               (ledger.rounds, ledger.messages, ledger.bits))
        assert results["reference"] == results["fast"] == \
            results["vectorized"]
