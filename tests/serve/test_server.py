"""End-to-end daemon tests: HTTP, batching, bit-identity, isolation.

Most tests share one thread-mode daemon (module-scoped): a single
in-process worker lane makes runs deterministic and fork-free while
still exercising the full HTTP -> admission -> batching -> pool ->
executor path over a real TCP socket.  Process-mode behavior (worker
death, restarts) is covered separately with skip guards for sandboxes
where process pools are unavailable.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs.tracer import canonical_lines
from repro.serve import (
    Batcher,
    ColoringServer,
    PoolSupervisor,
    ServeClient,
    ServerBusy,
    ServerHandle,
    execute_request,
    parse_request,
)

RING = {"kind": "ring-stream", "n": 96}
GNP = {"kind": "gnp", "n": 26, "density": 0.2, "seed": 5}
GREEDY = {"name": "greedy-reduction"}
SWEEP = {"name": "two-sweep", "p": 2, "seed": 7}


@pytest.fixture(scope="module")
def daemon():
    server = ColoringServer(mode="thread", max_batch=4,
                            prewarm=({"kind": "ring-stream", "n": 96},))
    with ServerHandle(server) as handle:
        yield handle


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.host, daemon.port) as conn:
        yield conn


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_unknown_route_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"

    def test_wrong_method_405(self, client):
        status, payload = client.request("POST", "/healthz", {})
        assert status == 405

    def test_malformed_json_400(self, client):
        client.conn.request("POST", "/color", body="{not json",
                            headers={"Content-Type": "application/json"})
        response = client.conn.getresponse()
        assert response.status == 400
        response.read()

    def test_bad_request_400(self, client):
        status, payload = client.color({"topology": {"kind": "torus"},
                                        "algorithm": GREEDY})
        assert status == 400
        assert payload["error"]["type"] == "RequestError"

    def test_stats_shape(self, client):
        client.color({"topology": RING, "algorithm": GREEDY})
        stats = client.stats()
        assert stats["kind"] == "stats"
        assert stats["requests"]["total"] >= 1
        assert stats["pool"]["mode"] == "thread"
        assert stats["pool"]["restarts"] == 0
        assert stats["queue"]["capacity"] == 256
        assert stats["latency_ms"]["p50"] is not None
        assert stats["latency_ms"]["p99"] is not None
        assert stats["caches"]["enabled"] is True
        assert "counters" in stats["caches"]
        assert stats["boot"]["prewarmed"] == ["('ring-stream', 96)"]


class TestColoring:
    def test_greedy_request(self, client):
        status, payload = client.color(
            {"topology": RING, "algorithm": GREEDY})
        assert status == 200
        assert payload["kind"] == "coloring"
        assert payload["result"]["valid"] is True
        assert payload["batch"]["size"] >= 1
        assert payload["timing"]["queue_wait_s"] >= 0
        assert payload["timing"]["request_wall_s"] > 0

    def test_prewarmed_topology_reports_shm_hit(self, client):
        # Satellite contract: a request against a published topology
        # reports a warm "topologies" lookup in its manifest.
        status, payload = client.color(
            {"topology": RING, "algorithm": GREEDY})
        assert status == 200
        counters = payload["manifest"]["cache_counters"]
        assert counters["topologies"]["hits"] == 1
        assert counters["topologies"]["misses"] == 0

    def test_second_identical_request_is_warm(self, client):
        # Warm-cache regression: first request on a fresh family pays
        # the misses, the identical follow-up rides the registries.
        body = {"topology": {"kind": "gnp", "n": 24, "density": 0.2,
                             "seed": 77},
                "algorithm": GREEDY}
        _, first = client.color(body)
        _, second = client.color(body)
        nets_first = first["manifest"]["cache_counters"].get(
            "networks", {})
        nets_second = second["manifest"]["cache_counters"].get(
            "networks", {})
        assert nets_first.get("misses", 0) >= 1
        assert nets_second == {"hits": 1, "misses": 0}

    def test_algorithm_failure_does_not_poison_the_pool(self, client):
        status, payload = client.color({
            "topology": {"kind": "ring-stream", "n": 16},
            "algorithm": {"name": "two-sweep", "lists": "stuck",
                          "check": False},
        })
        assert status == 422
        assert payload["error"]["type"] == "AlgorithmFailure"
        # The very next request on the same daemon succeeds.
        status, payload = client.color(
            {"topology": RING, "algorithm": GREEDY})
        assert status == 200
        assert payload["status"] == "ok"

    def test_upload_then_color_by_handle(self, client):
        edges = [(i, i + 1) for i in range(9)] + [(9, 0)]
        status, upload = client.upload(10, edges)
        assert status == 200
        assert upload["n"] == 10 and upload["m"] == 10
        status, payload = client.color({
            "topology": {"kind": "graph", "id": upload["id"]},
            "algorithm": GREEDY,
        })
        assert status == 200
        assert payload["result"]["valid"] is True
        assert payload["topology"]["n"] == 10

    def test_unknown_handle_400(self, client):
        status, payload = client.color({
            "topology": {"kind": "graph", "id": "deadbeef"},
            "algorithm": GREEDY,
        })
        assert status == 400


class TestBitIdentity:
    """The acceptance contract: daemon == serial, byte for byte."""

    def test_mixed_concurrent_traffic_matches_serial(self, daemon):
        # Two topologies x two algorithm classes, interleaved from
        # four client threads -- every response must be bit-identical
        # (logical trace + ledger + coloring checksum) to a serial
        # in-process execute_request of the same spec.
        bodies = [
            {"topology": RING, "algorithm": GREEDY},
            {"topology": GNP, "algorithm": SWEEP},
            {"topology": RING, "algorithm": dict(SWEEP, seed=9)},
            {"topology": GNP, "algorithm": GREEDY},
        ]
        references = [execute_request(parse_request(b)) for b in bodies]
        results = {}

        def drive(worker):
            with ServeClient(daemon.host, daemon.port) as conn:
                for step in range(3):
                    index = (worker + step) % len(bodies)
                    status, payload = conn.color(bodies[index])
                    results[(worker, step)] = (status, index, payload)

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert len(results) == 12
        for (worker, step), (status, index, payload) in results.items():
            reference = references[index]
            assert status == 200, (worker, step, payload)
            assert payload["result"]["colors_blake2b"] == \
                reference["result"]["colors_blake2b"]
            assert payload["ledger"] == reference["ledger"]
            assert canonical_lines(payload["trace"]) == \
                canonical_lines(reference["trace"])


class TestBatcherAdmission:
    def test_full_queue_raises_server_busy(self):
        async def scenario():
            supervisor = PoolSupervisor(workers=1, mode="thread")
            try:
                batcher = Batcher(supervisor, max_queue=1)
                # No dispatch loop running: the first submit parks in
                # the queue, the second must be shed immediately.
                first = asyncio.ensure_future(
                    batcher.submit(parse_request(
                        {"topology": RING, "algorithm": GREEDY})))
                await asyncio.sleep(0)
                with pytest.raises(ServerBusy):
                    await batcher.submit(parse_request(
                        {"topology": RING, "algorithm": GREEDY}))
                first.cancel()
            finally:
                supervisor.close()

        asyncio.run(scenario())

    def test_compatible_requests_coalesce(self):
        async def scenario():
            supervisor = PoolSupervisor(workers=1, mode="thread")
            try:
                batcher = Batcher(supervisor, max_batch=8)
                spec = parse_request(
                    {"topology": RING, "algorithm": GREEDY})
                pending = [asyncio.ensure_future(batcher.submit(spec))
                           for _ in range(4)]
                await asyncio.sleep(0)  # everything queued, no loop yet
                batcher.start()
                payloads = await asyncio.gather(*pending)
                await batcher.stop()
                return payloads
            finally:
                supervisor.close()

        payloads = asyncio.run(scenario())
        # All four were waiting when the dispatcher first looked, so
        # they ran as one micro-batch.
        assert [p["batch"]["size"] for p in payloads] == [4, 4, 4, 4]
        assert [p["batch"]["index"] for p in payloads] == [0, 1, 2, 3]
        assert all(p["status"] == "ok" for p in payloads)


class TestProcessMode:
    def test_worker_death_triggers_restart_and_recovery(self):
        import os
        import signal

        server = ColoringServer(mode="process", workers=2, max_batch=4)
        try:
            with ServerHandle(server) as handle:
                if server.supervisor.pool.mode != "process":
                    pytest.skip("process pools unavailable: "
                                f"{server.supervisor.pool.fallback_reason}")
                with ServeClient(handle.host, handle.port) as conn:
                    status, payload = conn.color(
                        {"topology": RING, "algorithm": GREEDY})
                    assert status == 200
                    reference = payload["result"]["colors_blake2b"]
                    victims = list(
                        server.supervisor.pool.executor._processes)
                    os.kill(victims[0], signal.SIGKILL)
                    # The batch hit by the kill is retried on a fresh
                    # pool; either way the daemon must answer correctly.
                    status, payload = conn.color(
                        {"topology": RING, "algorithm": GREEDY})
                    if status != 200:
                        status, payload = conn.color(
                            {"topology": RING, "algorithm": GREEDY})
                    assert status == 200
                    assert payload["result"]["colors_blake2b"] == \
                        reference
                    stats = conn.stats()
                    assert stats["pool"]["restarts"] >= 1
        except PermissionError:  # pragma: no cover - sandboxed CI
            pytest.skip("process pools unavailable in this sandbox")


class TestWarmBoot:
    def test_disk_cache_round_trip(self, tmp_path, monkeypatch):
        # Satellite contract: a daemon spills its substrate cache at
        # shutdown and the next boot starts warm from disk.
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
        first = ColoringServer(mode="thread")
        with ServerHandle(first) as handle:
            assert first.boot["disk_cache_loaded"] is False
            with ServeClient(handle.host, handle.port) as conn:
                status, _ = conn.color(
                    {"topology": GNP, "algorithm": GREEDY})
                assert status == 200
        assert (tmp_path / "substrate_cache.pkl").exists()
        second = ColoringServer(mode="thread")
        with ServerHandle(second) as handle:
            assert second.boot["disk_cache_loaded"] is True
            with ServeClient(handle.host, handle.port) as conn:
                stats = conn.stats()
                assert stats["caches"]["disk"]["loaded"] is True
