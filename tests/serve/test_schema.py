"""Tests for the serve request/response protocol."""

from __future__ import annotations

import pytest

from repro.serve.schema import (
    RequestError,
    SCHEMA_VERSION,
    batch_key,
    edges_digest,
    envelope,
    parse_algorithm,
    parse_request,
    parse_topology,
    topology_key,
)


class TestEnvelope:
    def test_stamps_schema_and_kind(self):
        body = envelope("coloring", status="ok", x=1)
        assert body["schema"] == SCHEMA_VERSION
        assert body["kind"] == "coloring"
        assert body["x"] == 1


class TestTopologyParsing:
    def test_ring_stream(self):
        spec = parse_topology({"kind": "ring-stream", "n": 100})
        assert spec == {"kind": "ring-stream", "n": 100}
        assert topology_key(spec) == ("ring-stream", 100)

    def test_stream_keys_match_streaming_registry(self):
        # The daemon's keys must be the exact keys stream_* interns
        # under, so a daemon request reuses a prior scale run's topology.
        spec = parse_topology({"kind": "gnp-stream", "n": 50,
                               "p": 0.1, "seed": 3})
        assert topology_key(spec) == ("gnp-stream", 50, 0.1, 3)

    def test_rejects_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown topology kind"):
            parse_topology({"kind": "torus", "n": 10})

    def test_rejects_non_dict(self):
        with pytest.raises(RequestError):
            parse_topology("ring")

    def test_bounds_checked(self):
        with pytest.raises(RequestError, match="must lie in"):
            parse_topology({"kind": "ring-stream", "n": 2})
        with pytest.raises(RequestError, match="must lie in"):
            parse_topology({"kind": "ring-stream", "n": 10 ** 9})

    def test_bool_is_not_an_int(self):
        with pytest.raises(RequestError, match="must be an integer"):
            parse_topology({"kind": "ring-stream", "n": True})

    def test_regular_parity(self):
        with pytest.raises(RequestError, match="even"):
            parse_topology({"kind": "regular-stream", "n": 5,
                            "degree": 3})

    def test_edges_validated_and_digested(self):
        spec = parse_topology({
            "kind": "edges", "n": 3, "edges": [[0, 1], [1, 2]],
        })
        assert spec["edges"] == [(0, 1), (1, 2)]
        assert spec["id"] == edges_digest(3, [(0, 1), (1, 2)])
        assert topology_key(spec) == ("uploaded", spec["id"])

    def test_edges_order_is_identity(self):
        # Adjacency order is part of the simulation's identity.
        a = edges_digest(3, [(0, 1), (1, 2)])
        b = edges_digest(3, [(1, 2), (0, 1)])
        assert a != b

    def test_edge_bounds(self):
        with pytest.raises(RequestError, match="out of bounds"):
            parse_topology({"kind": "edges", "n": 2, "edges": [[0, 5]]})
        with pytest.raises(RequestError, match="out of bounds"):
            parse_topology({"kind": "edges", "n": 3, "edges": [[1, 1]]})
        with pytest.raises(RequestError, match="malformed"):
            parse_topology({"kind": "edges", "n": 3, "edges": [[0]]})

    def test_graph_handle_needs_id(self):
        with pytest.raises(RequestError, match="string 'id'"):
            parse_topology({"kind": "graph"})


class TestSchemaVersion:
    def test_v2_stamp(self):
        # v2 added peak_rss_kb / nodes_per_s / colors_blake2b to the
        # scale payloads and the shards knob to greedy-reduction.
        assert SCHEMA_VERSION == "repro-result/v2"


class TestAlgorithmParsing:
    def test_name_shorthand(self):
        spec = parse_algorithm("greedy-reduction")
        assert spec["name"] == "greedy-reduction"
        assert spec["colors"] == 16
        assert spec["validate"] is True
        assert spec["shards"] == 1

    def test_shards_validated(self):
        spec = parse_algorithm({"name": "greedy-reduction", "shards": 4})
        assert spec["shards"] == 4
        with pytest.raises(RequestError, match="must lie in"):
            parse_algorithm({"name": "greedy-reduction", "shards": 0})
        with pytest.raises(RequestError, match="must be an integer"):
            parse_algorithm({"name": "greedy-reduction", "shards": "2"})

    def test_sweep_defaults(self):
        spec = parse_algorithm({"name": "two-sweep"})
        assert spec["p"] == 2
        assert spec["seed"] == 0
        assert spec["lists"] == "random"
        assert "epsilon" not in spec

    def test_fast_sweep_epsilon(self):
        spec = parse_algorithm({"name": "fast-two-sweep",
                                "epsilon": 0.5})
        assert spec["epsilon"] == 0.5

    def test_unknown_algorithm(self):
        with pytest.raises(RequestError, match="unknown algorithm"):
            parse_algorithm({"name": "magic"})

    def test_lists_mode_checked(self):
        with pytest.raises(RequestError, match="'lists'"):
            parse_algorithm({"name": "two-sweep", "lists": "evil"})


class TestRequestParsing:
    def test_full_request(self):
        spec = parse_request({
            "topology": {"kind": "ring-stream", "n": 32},
            "algorithm": "greedy-reduction",
            "include_colors": True,
        })
        assert spec["include_colors"] is True
        assert spec["trace"] is True

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            parse_request({
                "topology": {"kind": "ring-stream", "n": 32},
                "algorithm": "greedy-reduction",
                "sudo": True,
            })

    def test_non_object_body(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request([1, 2, 3])


class TestBatchKey:
    def test_same_topology_same_algorithm_coalesce(self):
        a = parse_request({"topology": {"kind": "ring-stream", "n": 32},
                           "algorithm": {"name": "greedy-reduction"}})
        b = parse_request({"topology": {"kind": "ring-stream", "n": 32},
                           "algorithm": {"name": "greedy-reduction",
                                         "colors": 32}})
        assert batch_key(a) == batch_key(b)

    def test_different_topology_splits(self):
        a = parse_request({"topology": {"kind": "ring-stream", "n": 32},
                           "algorithm": "greedy-reduction"})
        b = parse_request({"topology": {"kind": "ring-stream", "n": 33},
                           "algorithm": "greedy-reduction"})
        assert batch_key(a) != batch_key(b)

    def test_different_algorithm_splits(self):
        a = parse_request({"topology": {"kind": "ring-stream", "n": 32},
                           "algorithm": "greedy-reduction"})
        b = parse_request({"topology": {"kind": "ring-stream", "n": 32},
                           "algorithm": {"name": "two-sweep"}})
        assert batch_key(a) != batch_key(b)
