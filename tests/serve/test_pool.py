"""Tests for WorkerPool lifecycle and its serve-side supervisor."""

from __future__ import annotations

import pytest

from repro.serve.pool import PoolSupervisor
from repro.serve.schema import parse_request
from repro.sim import shm
from repro.sim.parallel import PoolUnavailable, WorkerPool


def _greedy_spec(n):
    return parse_request({"topology": {"kind": "ring-stream", "n": n},
                          "algorithm": "greedy-reduction"})


class TestWorkerPool:
    def test_thread_mode_lifecycle(self):
        with WorkerPool(max_workers=2, mode="thread") as pool:
            warmup = pool.warm()
            assert warmup >= 0.0
            assert pool.warmup_s == warmup
            future = pool.submit(len, [1, 2, 3])
            assert future.result(timeout=30) == 3
            stats = pool.stats()
            assert stats["mode"] == "thread"
            assert stats["completed"] >= 1
        with pytest.raises(PoolUnavailable):
            pool.submit(len, [])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown pool mode"):
            WorkerPool(mode="fiber")

    def test_engine_frozen_at_construction(self):
        with WorkerPool(max_workers=1, engine="reference",
                        mode="thread") as pool:
            assert pool.engine == "reference"
            assert pool.stats()["engine"] == "reference"

    def test_occupancy_counters(self):
        with WorkerPool(max_workers=1, mode="thread") as pool:
            futures = [pool.submit(sum, range(10)) for _ in range(3)]
            assert [f.result(timeout=30) for f in futures] == [45] * 3
            stats = pool.stats()
            assert stats["submitted"] == 3
            assert stats["completed"] == 3
            assert pool.in_flight == 0

    def test_close_releases_published_topologies(self):
        from repro.graphs.streaming import stream_ring

        compiled = stream_ring(97)
        key = ("serve-pool-test", 97)
        with WorkerPool(max_workers=1, mode="thread") as pool:
            handles = pool.add_topologies({key: compiled})
            if not handles:
                pytest.skip("shared memory unavailable")
            assert shm.lookup(key) is not None
        assert shm.lookup(key) is None


class TestPoolSupervisor:
    def test_submit_batch_thread_mode(self):
        supervisor = PoolSupervisor(workers=1, mode="thread")
        try:
            supervisor.warm()
            future = supervisor.submit_batch([_greedy_spec(48)])
            result = future.result(timeout=60)
            # The supervisor ships execute_batch_metrics: payloads plus
            # the worker's registry delta and pid.
            assert set(result) == {"payloads", "pid", "metrics"}
            payloads = result["payloads"]
            assert payloads[0]["status"] == "ok"
            stats = supervisor.stats()
            assert stats["restarts"] == 0
            assert stats["completed"] >= 1
        finally:
            supervisor.close()

    def test_restart_preserves_topologies_and_counts(self):
        from repro.graphs.streaming import stream_ring

        supervisor = PoolSupervisor(workers=1, mode="thread")
        try:
            key = ("serve-supervisor-test", 53)
            handles = supervisor.add_topologies({key: stream_ring(53)})
            supervisor.restart()
            assert supervisor.stats()["restarts"] == 1
            if handles:
                # Republish-before-close keeps the segment alive across
                # the handover.
                assert shm.lookup(key) is not None
            future = supervisor.submit_batch([_greedy_spec(49)])
            result = future.result(timeout=60)
            assert result["payloads"][0]["status"] == "ok"
        finally:
            supervisor.close()
        if handles:
            assert shm.lookup(key) is None

    def test_engine_stable_across_restart(self):
        supervisor = PoolSupervisor(workers=1, engine="reference",
                                    mode="thread")
        try:
            assert supervisor.engine == "reference"
            supervisor.restart()
            assert supervisor.engine == "reference"
        finally:
            supervisor.close()


class TestParallelSweepWithExternalPool:
    def test_external_pool_engine_conflict(self):
        from repro.sim.parallel import parallel_sweep

        with WorkerPool(max_workers=1, engine="fast",
                        mode="thread") as pool:
            with pytest.raises(ValueError, match="frozen engine"):
                parallel_sweep(
                    _measure, [{"x": 1}], engine="reference", pool=pool,
                )

    def test_external_pool_reused_across_sweeps(self):
        from repro.sim.parallel import parallel_sweep

        with WorkerPool(max_workers=2, mode="thread") as pool:
            first = parallel_sweep(_measure, [{"x": 1}, {"x": 2}],
                                   max_workers=2, pool=pool)
            second = parallel_sweep(_measure, [{"x": 3}],
                                    max_workers=2, pool=pool)
        assert [r["doubled"] for r in first] == [2, 4]
        assert second[0]["doubled"] == 6


def _measure(x):
    """Module-level so it pickles into worker processes."""
    return {"doubled": 2 * x}
