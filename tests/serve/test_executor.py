"""Tests for the request executor -- the daemon's single semantics."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import canonical_lines
from repro.serve.executor import (
    counters_delta,
    execute_batch,
    execute_request,
)
from repro.serve.schema import parse_request


def _spec(topology, algorithm, **extra):
    return parse_request({"topology": topology, "algorithm": algorithm,
                          **extra})


class TestCountersDelta:
    def test_only_moved_registries_reported(self):
        before = {"a": {"hits": 1, "misses": 2}, "b": {"hits": 5,
                                                       "misses": 0}}
        after = {"a": {"hits": 4, "misses": 2}, "b": {"hits": 5,
                                                      "misses": 0},
                 "c": {"hits": 0, "misses": 1}}
        assert counters_delta(before, after) == {
            "a": {"hits": 3, "misses": 0},
            "c": {"hits": 0, "misses": 1},
        }


class TestGreedyReduction:
    def test_ring_payload(self):
        payload = execute_request(_spec({"kind": "ring-stream", "n": 65},
                                        "greedy-reduction"))
        assert payload["status"] == "ok"
        assert payload["result"]["valid"] is True
        assert payload["result"]["target"] == 3
        assert payload["result"]["color_count"] <= 3
        assert payload["topology"] == {
            "kind": "ring-stream", "n": 65, "m": 65, "max_degree": 2,
            "key": ["ring-stream", "65"],
        }
        assert payload["ledger"]["rounds"] > 0
        assert payload["timing"]["solve_s"] >= 0
        assert payload["manifest"]["engine"]
        # v2 scale metrics ride every response.
        assert payload["peak_rss_kb"] is None or payload["peak_rss_kb"] > 0
        assert payload["nodes_per_s"] is None or payload["nodes_per_s"] > 0

    def test_sharded_request_bit_identical(self):
        """algorithm.shards reroutes through the sharded engine and must
        not change a single byte of the result or the logical trace."""
        serial = execute_request(_spec({"kind": "ring-stream", "n": 67},
                                       "greedy-reduction"))
        sharded = execute_request(_spec(
            {"kind": "ring-stream", "n": 67},
            {"name": "greedy-reduction", "shards": 3},
        ))
        assert sharded["status"] == "ok"
        assert sharded["result"]["shards"] == 3
        assert sharded["result"]["colors_blake2b"] == \
            serial["result"]["colors_blake2b"]
        assert sharded["ledger"] == serial["ledger"]
        assert canonical_lines(sharded["trace"]) == \
            canonical_lines(serial["trace"])

    def test_payload_is_json_serializable(self):
        payload = execute_request(_spec({"kind": "ring-stream", "n": 66},
                                        "greedy-reduction"))
        json.dumps(payload)

    def test_include_colors(self):
        payload = execute_request(
            _spec({"kind": "ring-stream", "n": 30}, "greedy-reduction",
                  include_colors=True)
        )
        colors = payload["result"]["colors"]
        assert len(colors) == 30
        assert all(isinstance(k, str) for k in colors)

    def test_trace_opt_out(self):
        payload = execute_request(
            _spec({"kind": "ring-stream", "n": 31}, "greedy-reduction",
                  trace=False)
        )
        assert payload["trace"] is None
        assert payload["status"] == "ok"


class TestSweeps:
    def test_two_sweep_on_gnp(self):
        payload = execute_request(_spec(
            {"kind": "gnp", "n": 30, "density": 0.15, "seed": 3},
            {"name": "two-sweep", "p": 2, "seed": 7},
        ))
        assert payload["status"] == "ok"
        assert payload["result"]["valid"] is True
        assert payload["result"]["q"] == 30
        assert payload["result"]["stats"]["max_local_work"] > 0

    def test_fast_two_sweep_on_stream(self):
        payload = execute_request(_spec(
            {"kind": "gnp-stream", "n": 40, "p": 0.1, "seed": 1},
            {"name": "fast-two-sweep", "p": 2, "seed": 5,
             "epsilon": 0.25},
        ))
        assert payload["status"] == "ok"
        assert payload["result"]["valid"] is True

    def test_id_bits_too_small_is_an_error_payload(self):
        payload = execute_request(_spec(
            {"kind": "ring-stream", "n": 100},
            {"name": "two-sweep", "id_bits": 4},
        ))
        assert payload["status"] == "error"
        assert payload["error"]["type"] == "RequestError"


class TestFailuresAreResults:
    def test_stuck_instance_yields_algorithm_failure(self):
        payload = execute_request(_spec(
            {"kind": "ring-stream", "n": 16},
            {"name": "two-sweep", "lists": "stuck", "check": False},
        ))
        assert payload["status"] == "error"
        assert payload["error"]["type"] == "AlgorithmFailure"
        assert "Eq. (5)" in payload["error"]["message"]
        # The payload still carries provenance and timing.
        assert payload["manifest"]["pid"]
        assert "total_s" in payload["timing"]

    def test_unknown_graph_handle(self):
        payload = execute_request(_spec(
            {"kind": "graph", "id": "deadbeef"}, "greedy-reduction",
        ))
        assert payload["status"] == "error"
        assert payload["error"]["type"] == "RequestError"
        assert "POST /graphs" in payload["error"]["message"]


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        spec = _spec({"kind": "gnp", "n": 28, "density": 0.2, "seed": 9},
                     {"name": "two-sweep", "p": 2, "seed": 4})
        first = execute_request(spec)
        second = execute_request(spec)
        assert first["result"]["colors_blake2b"] == \
            second["result"]["colors_blake2b"]
        assert first["ledger"] == second["ledger"]
        assert canonical_lines(first["trace"]) == \
            canonical_lines(second["trace"])

    def test_warm_second_request_reports_cache_hits(self):
        # The warm-pool contract: the first request pays the build
        # (misses), an identical second request rides the registries.
        spec = _spec({"kind": "gnp", "n": 27, "density": 0.2, "seed": 11},
                     "greedy-reduction")
        first = execute_request(spec)
        second = execute_request(spec)
        nets_first = first["manifest"]["cache_counters"].get(
            "networks", {})
        nets_second = second["manifest"]["cache_counters"].get(
            "networks", {})
        assert nets_first.get("misses", 0) >= 1
        assert nets_second.get("hits", 0) >= 1
        assert nets_second.get("misses", 0) == 0


class TestEdgesTopology:
    def test_inline_edges_round_trip(self):
        spec = _spec(
            {"kind": "edges", "n": 4,
             "edges": [[0, 1], [1, 2], [2, 3]]},
            "greedy-reduction",
        )
        payload = execute_request(spec)
        assert payload["status"] == "ok"
        assert payload["topology"]["n"] == 4
        assert payload["topology"]["m"] == 3
        # Bulk edge data is never echoed back.
        assert "edges" not in payload["topology"]

    def test_edges_match_materialized_network(self):
        """Inline edges and the equivalent gnp topology agree."""
        from repro.graphs import gnp_graph

        network = gnp_graph(22, 0.2, seed=5)
        edges = [list(edge) for edge in network.edges()]
        inline = execute_request(_spec(
            {"kind": "edges", "n": 22, "edges": edges},
            "greedy-reduction",
        ))
        assert inline["status"] == "ok"
        assert inline["result"]["valid"] is True


class TestBatch:
    def test_batch_preserves_order_and_isolation(self):
        specs = [
            _spec({"kind": "ring-stream", "n": 40}, "greedy-reduction"),
            _spec({"kind": "ring-stream", "n": 16},
                  {"name": "two-sweep", "lists": "stuck",
                   "check": False}),
            _spec({"kind": "ring-stream", "n": 40}, "greedy-reduction"),
        ]
        payloads = execute_batch(specs)
        assert [p["status"] for p in payloads] == ["ok", "error", "ok"]
        # The failure in the middle did not contaminate its neighbors.
        assert payloads[0]["result"]["colors_blake2b"] == \
            payloads[2]["result"]["colors_blake2b"]

    def test_batch_equals_serial(self):
        spec = _spec({"kind": "gnp", "n": 26, "density": 0.2, "seed": 2},
                     {"name": "two-sweep", "p": 2, "seed": 3})
        serial = execute_request(spec)
        batched = execute_batch([spec])[0]
        assert batched["result"]["colors_blake2b"] == \
            serial["result"]["colors_blake2b"]
        assert batched["ledger"] == serial["ledger"]
        assert canonical_lines(batched["trace"]) == \
            canonical_lines(serial["trace"])
