"""Daemon metrics under load: /metrics and /stats mid-batch.

Satellite for the unified metrics registry: drive concurrent coloring
clients while other clients scrape ``/stats`` and ``/metrics``
mid-batch, then assert the scraped numbers are internally consistent --
the latency window matches the request counters, the queue-wait
histogram counts every batched request exactly once, and the
batch-size histogram agrees with the batcher's own coalescing counters.
"""

import pathlib
import sys
import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.serve.client import ServeClient
from repro.serve.server import ColoringServer, ServerHandle


def _color_body(n: int):
    return {
        "topology": {"kind": "ring-stream", "n": n},
        "algorithm": {"name": "greedy-reduction", "q": n, "target": 3},
    }


def _metric_samples(snap, name):
    entry = snap.get(name) or {}
    return entry.get("samples", [])


def _counter_total(snap, name, **where):
    total = 0.0
    for sample in _metric_samples(snap, name):
        labels = sample.get("labels", {})
        if all(labels.get(k) == v for k, v in where.items()):
            total += sample["value"]
    return total


def _hist_totals(snap, name):
    count = 0
    total = 0.0
    for sample in _metric_samples(snap, name):
        count += sample["count"]
        total += sample["sum"]
    return count, total


@pytest.fixture(scope="module")
def loaded_server():
    """One daemon driven by concurrent clients, plus mid-batch scrapes."""
    obs_metrics.reset_metrics()
    server = ColoringServer(workers=2, mode="thread", max_batch=4,
                            max_queue=256)
    requests_per_client = 6
    clients = 4
    scrapes = {"stats": [], "metrics": [], "errors": []}
    with ServerHandle(server) as handle:
        def drive(worker_index: int) -> None:
            try:
                with ServeClient(handle.host, handle.port) as client:
                    for i in range(requests_per_client):
                        n = 32 + 16 * ((worker_index + i) % 3)
                        status, payload = client.color(_color_body(n))
                        assert status == 200, payload
            except Exception as error:  # noqa: BLE001 - surfaced below
                scrapes["errors"].append(error)

        def scrape() -> None:
            try:
                with ServeClient(handle.host, handle.port) as client:
                    for _ in range(4):
                        scrapes["stats"].append(client.stats())
                        scrapes["metrics"].append(client.metrics())
            except Exception as error:  # noqa: BLE001 - surfaced below
                scrapes["errors"].append(error)

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(clients)
        ] + [threading.Thread(target=scrape) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ServeClient(handle.host, handle.port) as client:
            final_stats = client.stats()
            final_text = client.metrics()
    assert scrapes["errors"] == [], scrapes["errors"]
    return {
        "total_requests": requests_per_client * clients,
        "scrapes": scrapes,
        "final_stats": final_stats,
        "final_text": final_text,
        "batcher": server.batcher,
    }


class TestUnderLoad:
    def test_all_requests_served(self, loaded_server):
        requests = loaded_server["final_stats"]["requests"]
        assert requests["ok"] == loaded_server["total_requests"]
        assert requests["errors"] == 0

    def test_request_histogram_matches_http_counter(self, loaded_server):
        snap = loaded_server["final_stats"]["metrics"]
        served = _counter_total(snap, "repro_http_requests_total",
                                route="/color")
        count, total = _hist_totals(snap, "repro_request_seconds")
        assert served == loaded_server["total_requests"]
        assert count == loaded_server["total_requests"]
        assert total > 0.0

    def test_queue_wait_counts_every_batched_request(self, loaded_server):
        snap = loaded_server["final_stats"]["metrics"]
        batcher = loaded_server["batcher"]
        wait_count, _ = _hist_totals(snap, "repro_queue_wait_seconds")
        assert wait_count == batcher.batched_requests

    def test_batch_size_histogram_matches_batcher(self, loaded_server):
        snap = loaded_server["final_stats"]["metrics"]
        batcher = loaded_server["batcher"]
        batches, coalesced = _hist_totals(snap, "repro_batch_size")
        assert batches == batcher.batches
        assert coalesced == batcher.batched_requests
        assert coalesced >= batches  # every batch has >= 1 request

    def test_latency_window_consistent_with_requests(self, loaded_server):
        stats = loaded_server["final_stats"]
        window = stats["latency_ms"]["window"]
        assert 0 < window <= stats["requests"]["ok"]
        assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["p99"]

    def test_midbatch_scrapes_monotone(self, loaded_server):
        """Every mid-batch /stats sees monotonically consistent totals."""
        sequence = []
        for payload in loaded_server["scrapes"]["stats"]:
            snap = payload["metrics"]
            count, _ = _hist_totals(snap, "repro_request_seconds")
            served = _counter_total(snap, "repro_http_requests_total",
                                    route="/color")
            # The histogram observation lands before the HTTP counter,
            # so a scrape between them may see count == served + 1.
            assert 0 <= count - served <= 1
            sequence.append(served)
        assert sequence == sorted(sequence)

    def test_midbatch_exposition_is_valid(self, loaded_server):
        scripts = str(pathlib.Path(__file__).resolve().parents[2]
                      / "scripts")
        sys.path.insert(0, scripts)
        try:
            from validate_prometheus import validate_text
        finally:
            sys.path.remove(scripts)
        for text in loaded_server["scrapes"]["metrics"]:
            assert validate_text(text) == []
        assert validate_text(loaded_server["final_text"]) == []

    def test_gauges_present_in_exposition(self, loaded_server):
        text = loaded_server["final_text"]
        for name in ("repro_queue_depth", "repro_pool_workers",
                     "repro_uptime_seconds"):
            assert f"# TYPE {name} gauge" in text

    def test_top_summary_over_live_snapshot(self, loaded_server):
        from repro.obs.top import render_top, summarize_metrics

        stats = loaded_server["final_stats"]
        summary = summarize_metrics(stats["metrics"],
                                    stats["uptime_s"])
        assert summary["requests"]["total"] == \
            loaded_server["total_requests"]
        assert summary["queue"]["batches"] == \
            loaded_server["batcher"].batches
        text = render_top(summary, source="test")
        assert "requests" in text and "queue" in text
