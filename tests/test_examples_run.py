"""Every example script must run cleanly (no rot)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"
