"""Tests for slack arithmetic and Two-Sweep parameter selection."""

from __future__ import annotations

import pytest

from repro.coloring import (
    OLDCInstance,
    balanced_p,
    choose_p,
    drop_negative_defects,
    feasible_p_interval,
    feasible_p_values,
    reduce_defects,
    uniform_lists,
)
from repro.graphs import orient_by_id, ring_graph


def uniform_instance(network, colors, defect):
    graph = orient_by_id(network)
    lists, defects = uniform_lists(network.nodes, colors, defect)
    return OLDCInstance(graph, lists, defects)


class TestFeasiblePValues:
    def test_every_listed_p_satisfies_eq2(self):
        instance = uniform_instance(ring_graph(8), range(9), 1)
        for p in feasible_p_values(instance):
            assert all(
                instance.satisfies_eq2(p, node) for node in instance.lists
            )

    def test_values_outside_interval_fail(self):
        instance = uniform_instance(ring_graph(8), range(9), 1)
        values = set(feasible_p_values(instance))
        low, high = feasible_p_interval(instance)
        for p in range(1, 12):
            if p not in values:
                assert not all(
                    instance.satisfies_eq2(p, node)
                    for node in instance.lists
                ) or not (low < p < high)

    def test_infeasible_instance_has_no_values(self):
        # One color, zero defect, ring: weight 1 <= beta.
        instance = uniform_instance(ring_graph(5), (0,), 0)
        assert feasible_p_values(instance) == ()
        assert choose_p(instance) is None

    def test_epsilon_shrinks_the_set(self):
        instance = uniform_instance(ring_graph(8), range(9), 1)
        lax = set(feasible_p_values(instance, 0.0))
        strict = set(feasible_p_values(instance, 1.0))
        assert strict <= lax


class TestChooseP:
    def test_choose_p_is_smallest(self):
        instance = uniform_instance(ring_graph(8), range(16), 2)
        values = feasible_p_values(instance)
        assert choose_p(instance) == values[0]

    def test_headline_parameterization(self):
        # Lists of size p^2 with weight > p * beta: p must be feasible.
        network = ring_graph(10)
        graph = orient_by_id(network)
        p = 3
        lists, defects = uniform_lists(network.nodes, range(p * p), 0)
        # beta <= 2; weight = 9 > max(3, 3) * 2 = 6.
        instance = OLDCInstance(graph, lists, defects)
        assert p in feasible_p_values(instance)


class TestBalancedP:
    def test_sqrt_of_max_list(self):
        instance = uniform_instance(ring_graph(5), range(9), 0)
        assert balanced_p(instance) == 3

    def test_minimum_one(self):
        instance = uniform_instance(ring_graph(5), (0,), 5)
        assert balanced_p(instance) == 1


class TestDefectRescaling:
    def test_reduce_defects(self):
        defects = {0: {1: 5, 2: 0}}
        reduced = reduce_defects(defects, {0: 2})
        assert reduced == {0: {1: 3, 2: -2}}

    def test_drop_negative_defects(self):
        lists = {0: (1, 2, 3)}
        defects = {0: {1: 3, 2: -1, 3: 0}}
        new_lists, new_defects = drop_negative_defects(lists, defects)
        assert new_lists == {0: (1, 3)}
        assert new_defects == {0: {1: 3, 3: 0}}

    def test_drop_preserves_order(self):
        lists = {0: (5, 1, 9)}
        defects = {0: {5: 0, 1: -1, 9: 2}}
        new_lists, _ = drop_negative_defects(lists, defects)
        assert new_lists[0] == (5, 9)
