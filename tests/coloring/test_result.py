"""Tests for ColoringResult helpers and leftover validator utilities."""

from __future__ import annotations

from repro.coloring import ColoringResult, check_complete
from repro.sim import CostLedger


class TestColoringResult:
    def test_palette_sorted_unique(self):
        result = ColoringResult(colors={0: 3, 1: 1, 2: 3})
        assert result.palette() == (1, 3)
        assert result.color_count() == 2

    def test_rounds_proxies_ledger(self):
        ledger = CostLedger()
        ledger.charge_rounds(5)
        result = ColoringResult(colors={}, ledger=ledger)
        assert result.rounds == 5

    def test_monochromatic_out_neighbors(self):
        result = ColoringResult(
            colors={0: 1, 1: 1},
            orientation={0: (1,), 1: ()},
        )
        assert result.monochromatic_out_neighbors(0) == (1,)
        assert result.monochromatic_out_neighbors(1) == ()

    def test_monochromatic_without_orientation(self):
        result = ColoringResult(colors={0: 1})
        assert result.monochromatic_out_neighbors(0) == ()

    def test_stats_default_none(self):
        assert ColoringResult(colors={}).stats is None


class TestCheckComplete:
    def test_complete(self):
        assert check_complete([0, 1], {0: 5, 1: 6}) == []

    def test_missing(self):
        violations = check_complete([0, 1, 2], {0: 5})
        assert len(violations) == 2

    def test_none_color_flagged(self):
        assert check_complete([0], {0: None}) != []


class TestReprs:
    def test_result_repr(self):
        result = ColoringResult(colors={0: 1, 1: 2})
        text = repr(result)
        assert "nodes=2" in text and "plain" in text

    def test_network_and_instance_reprs(self):
        from repro.coloring import ArbdefectiveInstance, uniform_lists
        from repro.graphs import orient_by_id, ring_graph

        network = ring_graph(5)
        assert "n=5" in repr(network) and "m=5" in repr(network)
        assert "beta=" in repr(orient_by_id(network))
        lists, defects = uniform_lists(network.nodes, (0, 1), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        assert "ArbdefectiveInstance" in repr(instance)
        assert "Lambda=2" in repr(instance)
