"""Tests for coloring instance classes."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    ListDefectiveInstance,
    OLDCInstance,
    degree_plus_one_instance,
    uniform_lists,
)
from repro.graphs import orient_by_id, path_graph, ring_graph, star_graph
from repro.sim import InstanceError


def make_oldc(network=None, defect=1, colors=(0, 1, 2)):
    network = network if network is not None else ring_graph(5)
    graph = orient_by_id(network)
    lists, defects = uniform_lists(network.nodes, colors, defect)
    return OLDCInstance(graph, lists, defects)


class TestNormalization:
    def test_missing_list_rejected(self):
        network = path_graph(2)
        with pytest.raises(InstanceError):
            ListDefectiveInstance(network, {0: (0,)}, {})

    def test_negative_color_rejected(self):
        network = path_graph(2)
        with pytest.raises(InstanceError):
            ListDefectiveInstance(network, {0: (-1,), 1: (0,)}, {})

    def test_negative_defect_rejected(self):
        network = path_graph(2)
        with pytest.raises(InstanceError):
            ListDefectiveInstance(
                network, {0: (0,), 1: (0,)}, {0: {0: -2}, 1: {}}
            )

    def test_defect_for_unlisted_color_rejected(self):
        network = path_graph(2)
        with pytest.raises(InstanceError):
            ListDefectiveInstance(
                network, {0: (0,), 1: (0,)}, {0: {5: 1}, 1: {}}
            )

    def test_missing_defects_default_to_zero(self):
        network = path_graph(2)
        instance = ListDefectiveInstance(network, {0: (0, 1), 1: (0,)}, {})
        assert instance.defect(0, 1) == 0

    def test_duplicate_colors_deduplicated(self):
        network = path_graph(2)
        instance = ListDefectiveInstance(
            network, {0: (1, 1, 2), 1: (0,)}, {}
        )
        assert instance.lists[0] == (1, 2)

    def test_color_space_inferred(self):
        network = path_graph(2)
        instance = ListDefectiveInstance(network, {0: (7,), 1: (3,)}, {})
        assert instance.color_space_size == 8

    def test_color_outside_declared_space_rejected(self):
        network = path_graph(2)
        with pytest.raises(InstanceError):
            ListDefectiveInstance(
                network, {0: (7,), 1: (3,)}, {}, color_space_size=5
            )


class TestWeights:
    def test_weight_formula(self):
        network = path_graph(2)
        instance = ListDefectiveInstance(
            network, {0: (0, 1), 1: (0,)}, {0: {0: 2, 1: 0}, 1: {0: 4}}
        )
        assert instance.weight(0) == (2 + 1) + (0 + 1)
        assert instance.weight(1) == 5

    def test_max_list_size(self):
        network = path_graph(2)
        instance = ListDefectiveInstance(network, {0: (0, 1, 2), 1: (0,)}, {})
        assert instance.max_list_size() == 3
        assert instance.total_list_entries() == 4


class TestOLDCConditions:
    def test_eq2_holds(self):
        instance = make_oldc(defect=2)
        # weight = 3 * 3 = 9; beta = 1 (ring oriented by id has outdeg <=2)
        for node in instance.graph.nodes:
            threshold = max(2, 3 / 2) * instance.beta(node)
            assert instance.satisfies_eq2(2, node) == (9 > threshold)

    def test_eq7_stricter_than_eq2(self):
        instance = make_oldc(defect=0)
        for node in instance.graph.nodes:
            if instance.satisfies_eq7(1, 0.5, node):
                assert instance.satisfies_eq2(1, node)

    def test_requires_oriented_graph(self):
        network = ring_graph(4)
        lists, defects = uniform_lists(network.nodes, (0, 1), 0)
        with pytest.raises(InstanceError):
            OLDCInstance(network, lists, defects)

    def test_restrict_keeps_orientation_and_space(self):
        instance = make_oldc()
        sub = instance.restrict([0, 1, 2])
        assert set(sub.graph.nodes) == {0, 1, 2}
        assert sub.color_space_size == instance.color_space_size


class TestSlack:
    def test_slack_definition(self):
        network = star_graph(3)
        lists, defects = uniform_lists(network.nodes, (0, 1), 1)
        instance = ListDefectiveInstance(network, lists, defects)
        # weight = 4 everywhere; center degree 3 -> slack 4/3.
        assert instance.slack(0) == pytest.approx(4 / 3)
        assert instance.min_slack() == pytest.approx(4 / 3)
        assert instance.has_slack(1.0)
        assert not instance.has_slack(4 / 3)  # strict inequality

    def test_isolated_node_has_infinite_slack(self):
        from repro.graphs import empty_graph

        network = empty_graph(2)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        assert instance.slack(0) == float("inf")


class TestDegreePlusOne:
    def test_accepts_large_enough_lists(self):
        network = path_graph(3)
        lists = {0: (0, 1), 1: (0, 1, 2), 2: (1, 2)}
        instance = degree_plus_one_instance(network, lists)
        assert all(
            instance.defect(node, color) == 0
            for node in network
            for color in instance.lists[node]
        )

    def test_rejects_short_lists(self):
        network = path_graph(3)
        lists = {0: (0, 1), 1: (0, 1), 2: (1, 2)}  # node 1 needs 3
        with pytest.raises(InstanceError):
            degree_plus_one_instance(network, lists)
