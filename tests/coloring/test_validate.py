"""Tests for the coloring validators (cross-checked by hand)."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    ListDefectiveInstance,
    OLDCInstance,
    assert_arbdefective,
    assert_list_defective,
    assert_oldc,
    assert_proper_coloring,
    check_arbdefective,
    check_defective_coloring,
    check_list_defective,
    check_list_membership,
    check_oldc,
    check_outdegree_defective,
    check_proper_coloring,
    uniform_lists,
)
from repro.graphs import orient_by_id, path_graph, ring_graph, star_graph
from repro.sim import AlgorithmFailure


class TestProperColoring:
    def test_valid(self):
        network = path_graph(3)
        assert check_proper_coloring(network, {0: 0, 1: 1, 2: 0}) == []

    def test_monochromatic_edge_flagged(self):
        network = path_graph(3)
        violations = check_proper_coloring(network, {0: 0, 1: 0, 2: 1})
        assert len(violations) == 1

    def test_uncolored_node_flagged(self):
        network = path_graph(2)
        assert check_proper_coloring(network, {0: 0}) != []

    def test_assert_raises(self):
        network = path_graph(2)
        with pytest.raises(AlgorithmFailure):
            assert_proper_coloring(network, {0: 1, 1: 1})


class TestListMembership:
    def test_valid(self):
        assert check_list_membership({0: (1, 2)}, {0: 2}) == []

    def test_violation(self):
        assert check_list_membership({0: (1, 2)}, {0: 3}) != []


class TestListDefective:
    def make(self, defect):
        network = star_graph(3)
        lists, defects = uniform_lists(network.nodes, (0, 1), defect)
        return ListDefectiveInstance(network, lists, defects)

    def test_defect_zero_requires_proper(self):
        instance = self.make(0)
        all_same = {node: 0 for node in instance.network}
        assert check_list_defective(instance, all_same) != []

    def test_defect_allows_conflicts(self):
        instance = self.make(3)
        all_same = {node: 0 for node in instance.network}
        assert check_list_defective(instance, all_same) == []

    def test_counts_per_chosen_color(self):
        network = star_graph(2)
        lists = {node: (0, 1) for node in network}
        defects = {node: {0: 0, 1: 2} for node in network}
        instance = ListDefectiveInstance(network, lists, defects)
        # Center and both leaves pick 1: center has 2 conflicts <= d(1)=2.
        assert check_list_defective(instance, {0: 1, 1: 1, 2: 1}) == []
        # All pick 0: center exceeds d(0)=0.
        assert check_list_defective(instance, {0: 0, 1: 0, 2: 0}) != []

    def test_assert_raises(self):
        instance = self.make(0)
        with pytest.raises(AlgorithmFailure):
            assert_list_defective(
                instance, {node: 0 for node in instance.network}
            )


class TestOLDC:
    def test_only_out_neighbors_count(self):
        network = path_graph(2)
        graph = orient_by_id(network)  # 1 -> 0
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        colors = {0: 0, 1: 0}
        violations = check_oldc(instance, colors)
        # Node 1 has out-conflict; node 0 has none.
        assert len(violations) == 1
        assert "1" in violations[0]

    def test_defect_budget_respected(self):
        network = star_graph(3)
        graph = orient_by_id(network)  # leaves point to center 0
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = OLDCInstance(graph, lists, defects)
        colors = {node: 0 for node in network}
        # Each leaf has exactly one out-conflict (the center): allowed.
        assert check_oldc(instance, colors) == []

    def test_assert_raises(self):
        network = path_graph(2)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        with pytest.raises(AlgorithmFailure):
            assert_oldc(instance, {0: 0, 1: 0})


class TestArbdefective:
    def make(self):
        network = path_graph(3)
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        return ArbdefectiveInstance(network, lists, defects)

    def test_valid_orientation(self):
        instance = self.make()
        colors = {0: 0, 1: 0, 2: 0}
        orientation = {0: (), 1: (0,), 2: (1,)}
        assert check_arbdefective(instance, colors, orientation) == []

    def test_unoriented_monochromatic_edge_flagged(self):
        instance = self.make()
        colors = {0: 0, 1: 0, 2: 0}
        orientation = {0: (), 1: (0,), 2: ()}
        violations = check_arbdefective(instance, colors, orientation)
        assert any("unoriented" in violation for violation in violations)

    def test_double_orientation_flagged(self):
        instance = self.make()
        colors = {0: 0, 1: 0, 2: 0}
        orientation = {0: (1,), 1: (0, 2), 2: ()}
        violations = check_arbdefective(instance, colors, orientation)
        assert any("both ways" in violation for violation in violations)

    def test_orienting_non_monochromatic_edge_flagged(self):
        network = path_graph(2)
        lists = {node: (0, 1) for node in network}
        instance = ArbdefectiveInstance(network, lists, {})
        colors = {0: 0, 1: 1}
        orientation = {0: (1,), 1: ()}
        violations = check_arbdefective(instance, colors, orientation)
        assert any("non-monochromatic" in violation for violation in violations)

    def test_out_defect_budget(self):
        network = star_graph(3)
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        colors = {node: 0 for node in network}
        # Center takes all three edges out: 3 > d = 1.
        orientation = {0: (1, 2, 3), 1: (), 2: (), 3: ()}
        violations = check_arbdefective(instance, colors, orientation)
        assert any("exceed defect" in violation for violation in violations)
        # Leaves take the edges instead: every out-count <= 1.
        orientation = {0: (), 1: (0,), 2: (0,), 3: (0,)}
        assert check_arbdefective(instance, colors, orientation) == []

    def test_orientation_on_non_edge_flagged(self):
        instance = self.make()
        colors = {0: 0, 1: 0, 2: 0}
        orientation = {0: (2,), 1: (0, 2), 2: ()}
        violations = check_arbdefective(instance, colors, orientation)
        assert any("non-edge" in violation for violation in violations)

    def test_assert_raises(self):
        instance = self.make()
        with pytest.raises(AlgorithmFailure):
            assert_arbdefective(instance, {0: 0, 1: 0, 2: 0}, {})


class TestSimpleDefective:
    def test_check_defective_coloring(self):
        network = ring_graph(4)
        colors = {0: 0, 1: 0, 2: 0, 3: 0}
        assert check_defective_coloring(network, colors, 2) == []
        assert check_defective_coloring(network, colors, 1) != []

    def test_check_outdegree_defective(self):
        network = star_graph(3)
        graph = orient_by_id(network)
        colors = {node: 0 for node in network}
        # Each leaf has 1 same-color out-neighbor, beta = 1.
        assert check_outdegree_defective(graph, colors, 1.0) == []
        assert check_outdegree_defective(graph, colors, 0.5) != []
