"""Tests for the coloring audit module."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    OLDCInstance,
    audit_oriented,
    audit_undirected,
    orientation_balance,
    uniform_lists,
)
from repro.graphs import orient_by_id, path_graph, ring_graph, star_graph


class TestUndirectedAudit:
    def test_proper_coloring_zero_conflicts(self):
        network = ring_graph(6)
        lists, defects = uniform_lists(network.nodes, (0, 1), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        colors = {node: node % 2 for node in network}
        audit = audit_undirected(instance, network, colors)
        assert audit.max_conflicts == 0
        assert audit.worst_utilization == 0.0
        assert audit.colors_used == 2
        assert audit.tight_nodes == 0

    def test_utilization_and_tightness(self):
        network = star_graph(2)
        lists, defects = uniform_lists(network.nodes, (0,), 2)
        instance = ArbdefectiveInstance(network, lists, defects)
        colors = {node: 0 for node in network}
        audit = audit_undirected(instance, network, colors)
        # Center: 2 conflicts / defect 2 = 1.0, and tight.
        assert audit.worst_utilization == 1.0
        assert audit.tight_nodes >= 1
        assert audit.max_conflicts == 2

    def test_infinite_utilization_on_violation(self):
        network = path_graph(2)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        colors = {0: 0, 1: 0}
        audit = audit_undirected(instance, network, colors)
        assert audit.worst_utilization == float("inf")

    def test_histogram(self):
        network = path_graph(3)
        lists, defects = uniform_lists(network.nodes, (0, 1), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        audit = audit_undirected(instance, network, {0: 0, 1: 1, 2: 0})
        assert audit.palette_histogram == {0: 2, 1: 1}

    def test_summary_readable(self):
        network = path_graph(2)
        lists, defects = uniform_lists(network.nodes, (0, 1), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        audit = audit_undirected(instance, network, {0: 0, 1: 1})
        assert "2 nodes" in audit.summary()


class TestOrientedAudit:
    def test_only_out_conflicts_counted(self):
        network = path_graph(2)
        graph = orient_by_id(network)  # 1 -> 0
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = OLDCInstance(graph, lists, defects)
        audit = audit_oriented(instance, {0: 0, 1: 0})
        assert audit.max_conflicts == 1  # node 1's out-conflict only
        assert audit.worst_utilization == 1.0


class TestOrientationBalance:
    def test_balance(self):
        assert orientation_balance({}) == (0, 0.0)
        orientation = {0: (1, 2), 1: (), 2: (0,)}
        maximum, mean = orientation_balance(orientation)
        assert maximum == 2
        assert mean == pytest.approx(1.0)
