"""Tests for instance and result serialization."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    ColoringResult,
    check_oldc,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_result,
    random_arbdefective_instance,
    random_defective_instance,
    random_oldc_instance,
    save_instance,
    save_result,
)
from repro.graphs import gnp_graph, orient_by_id, sequential_ids
from repro.sim import InstanceError


@pytest.fixture
def oldc_instance():
    network = gnp_graph(15, 0.3, seed=41)
    return random_oldc_instance(orient_by_id(network), p=2, seed=41)


class TestRoundTrips:
    def test_oldc_roundtrip(self, oldc_instance):
        rebuilt = instance_from_dict(instance_to_dict(oldc_instance))
        assert rebuilt.lists == oldc_instance.lists
        assert rebuilt.defects == oldc_instance.defects
        assert rebuilt.color_space_size == oldc_instance.color_space_size
        for node in oldc_instance.graph.nodes:
            assert set(rebuilt.graph.out_neighbors(node)) == set(
                oldc_instance.graph.out_neighbors(node)
            )

    def test_defective_roundtrip(self):
        network = gnp_graph(12, 0.3, seed=42)
        instance = random_defective_instance(
            network, slack=2.0, seed=42, color_space_size=10
        )
        rebuilt = instance_from_dict(instance_to_dict(instance))
        assert rebuilt.lists == instance.lists
        assert type(rebuilt) is type(instance)

    def test_arbdefective_roundtrip(self):
        network = gnp_graph(12, 0.3, seed=43)
        instance = random_arbdefective_instance(
            network, slack=2.0, seed=43, color_space_size=10
        )
        rebuilt = instance_from_dict(instance_to_dict(instance))
        assert isinstance(rebuilt, ArbdefectiveInstance)
        assert rebuilt.defects == instance.defects

    def test_string_node_ids(self):
        from repro.sim import Network

        network = Network({"a": ["b"], "b": ["a"]})
        instance = ArbdefectiveInstance(
            network, {"a": (0,), "b": (1,)}, {}
        )
        rebuilt = instance_from_dict(instance_to_dict(instance))
        assert set(rebuilt.network.nodes) == {"a", "b"}

    def test_result_roundtrip(self):
        result = ColoringResult(
            colors={0: 3, 1: 4}, orientation={0: (1,), 1: ()}
        )
        from repro.coloring import result_from_dict, result_to_dict

        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.colors == result.colors
        assert rebuilt.orientation == {0: (1,), 1: ()}

    def test_result_without_orientation(self):
        from repro.coloring import result_from_dict, result_to_dict

        rebuilt = result_from_dict(
            result_to_dict(ColoringResult(colors={0: 1}))
        )
        assert rebuilt.orientation is None


class TestFiles:
    def test_save_and_load_instance(self, oldc_instance, tmp_path):
        path = save_instance(oldc_instance, tmp_path / "instance.json")
        rebuilt = load_instance(path)
        assert rebuilt.lists == oldc_instance.lists

    def test_save_and_load_result(self, tmp_path):
        result = ColoringResult(colors={0: 1, 1: 0})
        path = save_result(result, tmp_path / "result.json")
        assert load_result(path).colors == result.colors

    def test_solve_a_loaded_instance(self, oldc_instance, tmp_path):
        """End to end: save, load, solve, validate against the ORIGINAL."""
        from repro.core import two_sweep

        path = save_instance(oldc_instance, tmp_path / "instance.json")
        loaded = load_instance(path)
        network = loaded.graph.network
        result = two_sweep(
            loaded, sequential_ids(network), len(network), 2
        )
        assert check_oldc(oldc_instance, result.colors) == []


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InstanceError):
            instance_from_dict({"kind": "mystery"})

    def test_unserializable_node_id(self):
        from repro.sim import Network

        network = Network({(1, 2): []})
        instance = ArbdefectiveInstance(network, {(1, 2): (0,)}, {})
        with pytest.raises(InstanceError):
            instance_to_dict(instance)
