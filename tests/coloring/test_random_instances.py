"""Tests for the random instance generators (feasibility guarantees)."""

from __future__ import annotations

import pytest

from repro.coloring import (
    random_arbdefective_instance,
    random_defective_instance,
    random_nonuniform_oldc_instance,
    random_oldc_instance,
)
from repro.graphs import gnp_graph, orient_by_id, ring_graph


@pytest.fixture
def oriented():
    return orient_by_id(gnp_graph(30, 0.15, seed=77))


class TestRandomOLDC:
    def test_satisfies_eq2(self, oriented):
        instance = random_oldc_instance(oriented, p=3, seed=1)
        assert all(
            instance.satisfies_eq2(3, node) for node in oriented.nodes
        )

    def test_satisfies_eq7(self, oriented):
        instance = random_oldc_instance(oriented, p=2, seed=1, epsilon=0.75)
        assert all(
            instance.satisfies_eq7(2, 0.75, node) for node in oriented.nodes
        )

    def test_list_size_is_p_squared(self, oriented):
        instance = random_oldc_instance(oriented, p=4, seed=2)
        assert all(
            instance.list_size(node) == 16 for node in oriented.nodes
        )

    def test_reproducible(self, oriented):
        a = random_oldc_instance(oriented, p=3, seed=5)
        b = random_oldc_instance(oriented, p=3, seed=5)
        assert a.lists == b.lists
        assert a.defects == b.defects

    def test_color_space_too_small_rejected(self, oriented):
        with pytest.raises(ValueError):
            random_oldc_instance(oriented, p=4, seed=1, color_space_size=10)

    def test_no_jitter_uses_base_defect(self, oriented):
        instance = random_oldc_instance(oriented, p=3, seed=3, jitter=False)
        for node in oriented.nodes:
            base = oriented.beta(node) // 3
            assert all(
                instance.defect(node, color) == base
                for color in instance.lists[node]
            )


class TestNonUniformOLDC:
    def test_satisfies_eq2(self, oriented):
        instance = random_nonuniform_oldc_instance(oriented, p=3, seed=4)
        assert all(
            instance.satisfies_eq2(3, node) for node in oriented.nodes
        )

    def test_list_sizes_vary(self, oriented):
        instance = random_nonuniform_oldc_instance(oriented, p=3, seed=4)
        sizes = {instance.list_size(node) for node in oriented.nodes}
        assert len(sizes) > 1


class TestSlackInstances:
    def test_defective_slack(self):
        network = gnp_graph(25, 0.2, seed=8)
        instance = random_defective_instance(
            network, slack=3.0, seed=1, color_space_size=20
        )
        assert instance.has_slack(3.0)

    def test_arbdefective_slack(self):
        network = ring_graph(12)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=2, color_space_size=8
        )
        assert instance.has_slack(1.5)

    def test_list_size_cap(self):
        network = ring_graph(12)
        instance = random_arbdefective_instance(
            network, slack=2.0, seed=3, color_space_size=30, list_size_cap=4
        )
        assert instance.max_list_size() <= 4
