"""Tests for the trace schema, exporters, and the summarizer."""

from __future__ import annotations

import json

from repro.coloring import random_oldc_instance
from repro.core import two_sweep
from repro.graphs import gnp_graph, orient_by_id, sequential_ids
from repro.obs import (
    Tracer,
    canonical_lines,
    chrome_trace,
    collect_manifest,
    load_trace_file,
    summarize_trace,
    use_tracer,
    validate_events,
    validate_record,
    validate_trace_file,
    write_chrome,
    write_jsonl,
    write_manifest,
)
from repro.sim import CostLedger, use_engine


def _traced_two_sweep(engine="vectorized"):
    """A small real traced run: (tracer, ledger)."""
    network = gnp_graph(30, 0.15, seed=5)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=5)
    ledger = CostLedger()
    tracer = Tracer()
    with use_engine(engine), use_tracer(tracer):
        two_sweep(
            instance, sequential_ids(network), len(network), 2,
            ledger=ledger,
        )
    return tracer, ledger


class TestSchema:
    def test_real_trace_validates(self):
        tracer, _ = _traced_two_sweep()
        assert validate_events(tracer.events) == []

    def test_unknown_kind_rejected(self):
        assert validate_record({"kind": "mystery"}, 3)

    def test_manifest_only_first(self):
        manifest = collect_manifest()
        assert validate_events([manifest]) == []
        errors = validate_events([manifest, manifest])
        assert any("first record" in error for error in errors)

    def test_round_batch_requires_counts(self):
        errors = validate_record(
            {"kind": "round-batch", "name": "rounds", "parent": 1,
             "rounds": 3}, 0,
        )
        assert any("messages" in error for error in errors)

    def test_span_requires_timing(self):
        errors = validate_record(
            {"kind": "run", "name": "r", "span": 1, "parent": 0}, 0,
        )
        assert any("wall_s" in error for error in errors)

    def test_duplicate_span_ids_rejected(self):
        record = {"kind": "run", "name": "r", "span": 1, "parent": 0,
                  "t0": 0.0, "wall_s": 0.0}
        errors = validate_events([record, dict(record)])
        assert any("duplicate" in error for error in errors)

    def test_dangling_parent_rejected(self):
        errors = validate_events([
            {"kind": "run", "name": "r", "span": 1, "parent": 9,
             "t0": 0.0, "wall_s": 0.0},
        ])
        assert any("names no span" in error for error in errors)


class TestJsonl:
    def test_roundtrip_with_manifest(self, tmp_path):
        tracer, ledger = _traced_two_sweep()
        manifest = collect_manifest(ledger=ledger)
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, tracer.events, manifest)
        loaded_manifest, loaded_events = load_trace_file(path)
        assert loaded_manifest["kind"] == "manifest"
        assert loaded_manifest["ledger"]["rounds"] == ledger.rounds
        assert canonical_lines(loaded_events) == \
            canonical_lines(tracer.events)
        assert validate_trace_file(path) == []

    def test_file_without_manifest(self, tmp_path):
        tracer, _ = _traced_two_sweep()
        path = str(tmp_path / "bare.jsonl")
        write_jsonl(path, tracer.events)
        manifest, events = load_trace_file(path)
        assert manifest is None
        assert len(events) == len(tracer.events)

    def test_malformed_json_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "run"}\nnot json\n')
        errors = validate_trace_file(str(path))
        assert errors and ":2:" in errors[0]


class TestChrome:
    def test_spans_become_complete_slices(self):
        tracer, ledger = _traced_two_sweep()
        manifest = collect_manifest(ledger=ledger)
        payload = chrome_trace(tracer.events, manifest)
        slices = [
            entry for entry in payload["traceEvents"]
            if entry["ph"] == "X"
        ]
        assert slices, "no span slices"
        for entry in slices:
            assert entry["ts"] >= 0.0 and entry["dur"] >= 0.0
        assert payload["metadata"]["kind"] == "manifest"

    def test_point_events_become_instants(self):
        tracer, _ = _traced_two_sweep()
        payload = chrome_trace(tracer.events)
        phases = {entry["ph"] for entry in payload["traceEvents"]}
        assert "i" in phases

    def test_worker_maps_to_thread_lane(self):
        tracer = Tracer()
        with tracer.span("run", "trial"):
            pass
        tracer.events[0]["worker"] = 42
        payload = chrome_trace(tracer.events)
        assert payload["traceEvents"][0]["tid"] == 42

    def test_write_chrome_is_valid_json(self, tmp_path):
        tracer, _ = _traced_two_sweep()
        path = str(tmp_path / "trace.json")
        write_chrome(path, tracer.events, collect_manifest())
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]


class TestManifestSidecar:
    def test_write_manifest_roundtrips(self, tmp_path):
        path = str(tmp_path / "x.manifest.json")
        write_manifest(path, collect_manifest(extra={"marker": True}))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["kind"] == "manifest"
        assert loaded["marker"] is True


class TestSummary:
    def test_summarize_real_trace(self):
        tracer, ledger = _traced_two_sweep(engine="vectorized")
        manifest = collect_manifest(ledger=ledger)
        text = summarize_trace(manifest, tracer.events)
        assert "two-sweep" in text
        assert "kernel hits" in text
        assert "scheduler run(s)" in text

    def test_summarize_empty_trace(self):
        text = summarize_trace(None, [])
        assert text  # degrades gracefully, never raises
