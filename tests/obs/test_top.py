"""Tests for the repro top summarizer/renderer (repro.obs.top)."""

import json

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.top import (
    render_top,
    snapshot_from_jsonl,
    summarize_metrics,
    watch,
)


def _loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    http = registry.counter("repro_http_requests_total", "t",
                            labelnames=("route", "code"))
    http.labels(route="/color", code="200").inc(8)
    http.labels(route="/color", code="503").inc(2)
    req = registry.histogram("repro_request_seconds", "t",
                             buckets=LATENCY_BUCKETS)
    for v in (0.002, 0.004, 0.01, 0.5):
        req.observe(v)
    registry.histogram("repro_queue_wait_seconds", "t",
                       buckets=LATENCY_BUCKETS).observe(0.001)
    batch = registry.histogram("repro_batch_size", "t",
                               buckets=SIZE_BUCKETS)
    batch.observe(2)
    batch.observe(4)
    registry.gauge("repro_queue_depth", "t").set(3.0)
    registry.gauge("repro_pool_workers", "t").set(4.0)
    registry.gauge("repro_uptime_seconds", "t").set(10.0)
    dispatch = registry.counter("repro_kernel_dispatch_total", "t",
                                labelnames=("outcome",))
    dispatch.labels(outcome="hit").inc(9)
    dispatch.labels(outcome="fallback").inc(1)
    lookups = registry.counter("repro_cache_lookups_total", "t",
                               labelnames=("registry", "outcome"))
    lookups.labels(registry="networks", outcome="hit").inc(3)
    lookups.labels(registry="networks", outcome="miss").inc(1)
    runs = registry.counter("repro_sim_runs_total", "t",
                            labelnames=("engine",))
    runs.labels(engine="fast").inc(5)
    runs.labels(engine="vectorized").inc(2)
    registry.gauge("repro_shard_skew_ratio", "t").set(1.25)
    return registry


class TestSummarize:
    def test_requests_section(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        req = summary["requests"]
        assert req["total"] == 10.0
        assert req["ok"] == 8.0
        assert req["per_s"] == 1.0  # 10 requests over the 10s gauge
        assert req["p50_s"] is not None
        assert req["p99_s"] >= req["p50_s"]

    def test_queue_and_pool(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        assert summary["queue"]["depth"] == 3.0
        assert summary["queue"]["batches"] == 2
        assert summary["queue"]["mean_batch"] == 3.0
        assert summary["pool"]["workers"] == 4.0

    def test_kernel_hit_rate(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        assert summary["kernels"]["hit_rate"] == 0.9

    def test_cache_rates(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        assert summary["caches"]["networks"]["rate"] == 0.75

    def test_engines_and_skew(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        assert summary["sim"]["runs_by_engine"] == {
            "fast": 5.0, "vectorized": 2.0,
        }
        assert summary["shards"]["skew"] == 1.25

    def test_empty_snapshot(self):
        summary = summarize_metrics({})
        assert summary["requests"]["total"] == 0.0
        assert summary["requests"]["p50_s"] is None
        assert summary["kernels"]["hit_rate"] is None
        assert summary["caches"] == {}

    def test_explicit_uptime_wins(self):
        snap = _loaded_registry().snapshot()
        summary = summarize_metrics(snap, uptime_s=5.0)
        assert summary["requests"]["per_s"] == 2.0


class TestRender:
    def test_renders_all_sections(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        text = render_top(summary, source="test")
        for token in ("repro top -- test", "requests", "queue", "pool",
                      "kernels", "caches", "shards", "sim"):
            assert token in text
        assert "hit-rate=90.0%" in text
        assert "networks=75.0%" in text
        assert "fast x5" in text

    def test_renders_empty_without_crashing(self):
        text = render_top(summarize_metrics({}))
        assert "requests  total=0" in text
        assert "hit-rate=-" in text

    def test_windowed_rate_override(self):
        summary = summarize_metrics(_loaded_registry().snapshot())
        text = render_top(summary, rate_per_s=42.0)
        assert "rate=42/s" in text


class TestJsonlSource:
    def test_reads_latest_record(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        older = _loaded_registry().snapshot()
        newer = _loaded_registry()
        newer.counter("repro_http_requests_total", "t",
                      labelnames=("route", "code")).labels(
            route="/color", code="200").inc(90)
        with open(path, "w") as handle:
            for t, snap in ((1, older), (2, newer.snapshot())):
                handle.write(json.dumps(
                    {"kind": "metrics", "t": t, "metrics": snap}) + "\n")
        snap, uptime = snapshot_from_jsonl(str(path))
        assert uptime is None
        assert summarize_metrics(snap)["requests"]["total"] == 100.0

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        try:
            snapshot_from_jsonl(str(path))
        except ValueError as error:
            assert "no metrics records" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestWatch:
    def test_bounded_iterations_and_rate(self):
        import io

        frames = []

        def fetch():
            registry = _loaded_registry()
            http = registry.counter("repro_http_requests_total", "t",
                                    labelnames=("route", "code"))
            http.labels(route="/color", code="200").inc(
                10 * len(frames))
            frames.append(None)
            return registry.snapshot(), 10.0, "test"

        out = io.StringIO()
        status = watch(fetch, interval_s=0.01, iterations=3, out=out,
                       clear=False)
        assert status == 0
        text = out.getvalue()
        assert text.count("repro top -- test") == 3

    def test_fetch_error_is_reported(self):
        import io

        def fetch():
            raise ValueError("boom")

        out = io.StringIO()
        assert watch(fetch, iterations=1, out=out) == 1
        assert "boom" in out.getvalue()
