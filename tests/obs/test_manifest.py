"""Tests for run-manifest collection."""

from __future__ import annotations

import json

import repro
from repro.obs import MANIFEST_VERSION, collect_manifest, validate_events
from repro.sim import CostLedger, default_engine


class TestCollectManifest:
    def test_core_fields(self):
        manifest = collect_manifest()
        assert manifest["kind"] == "manifest"
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["tool"] == "repro"
        assert manifest["version"] == repro.__version__
        assert manifest["engine"] == default_engine()
        assert manifest["python"]
        assert isinstance(manifest["pid"], int)

    def test_engine_override(self):
        assert collect_manifest(engine="reference")["engine"] == "reference"

    def test_env_capture(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "vectorized")
        monkeypatch.setenv("UNRELATED_VAR", "nope")
        env = collect_manifest()["env"]
        assert env["REPRO_SIM_ENGINE"] == "vectorized"
        assert "UNRELATED_VAR" not in env

    def test_seeds_and_argv_recorded_verbatim(self):
        manifest = collect_manifest(
            seeds={"seed": 7}, argv=["two-sweep", "--n", "40"]
        )
        assert manifest["seeds"] == {"seed": 7}
        assert manifest["argv"] == ["two-sweep", "--n", "40"]

    def test_ledger_embedded_as_dict(self):
        ledger = CostLedger()
        with ledger.phase("work"):
            ledger.charge_round(messages=2, bits=10)
        manifest = collect_manifest(ledger=ledger)
        assert manifest["ledger"]["rounds"] == 1
        assert manifest["ledger"]["phases"]["work"]["messages"] == 2

    def test_extra_wins(self):
        manifest = collect_manifest(extra={"engine": "custom", "run": 3})
        assert manifest["engine"] == "custom"
        assert manifest["run"] == 3

    def test_kernel_and_cache_counters_present(self):
        manifest = collect_manifest()
        assert "runs" in manifest["kernels"]
        assert "enabled" in manifest["caches"]
        assert isinstance(manifest["caches"]["registries"], dict)

    def test_json_serializable(self):
        json.dumps(collect_manifest())

    def test_valid_as_first_trace_record(self):
        assert validate_events([collect_manifest()]) == []
