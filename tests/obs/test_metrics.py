"""Unit tests for the unified metrics registry (repro.obs.metrics)."""

import json
import math
import threading

import pytest

from repro.obs import metrics as m
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricError,
    MetricsFlusher,
    MetricsRegistry,
    log_buckets,
    nearest_rank,
    percentile,
    read_metrics_jsonl,
    render_exposition,
    sample_quantile,
    snapshot_delta,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestNearestRank:
    def test_issue_example_p50_of_two(self):
        # The bug the shared implementation fixes: round() gave rank 1.
        assert percentile([1, 2], 0.50) == 2

    def test_singleton(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_p99_window(self):
        values = list(range(1, 101))
        assert percentile(values, 0.99) == 100
        assert percentile(values, 0.50) == 51

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 0.5) == 5

    def test_empty_returns_none(self):
        assert percentile([], 0.5) is None

    def test_fraction_zero_rejected(self):
        with pytest.raises(MetricError):
            nearest_rank(10, 0.0)
        with pytest.raises(MetricError):
            percentile([1, 2], 0.0)

    def test_fraction_above_one_rejected(self):
        with pytest.raises(MetricError):
            nearest_rank(10, 1.5)

    def test_fraction_one_is_max(self):
        assert percentile([3, 1, 2], 1.0) == 3

    def test_rank_never_exceeds_count(self):
        for count in (1, 2, 3, 10, 1000):
            for fraction in (0.01, 0.5, 0.99, 1.0):
                rank = nearest_rank(count, fraction)
                assert 1 <= rank <= count


class TestBuckets:
    def test_log_buckets_span(self):
        edges = log_buckets(1e-4, 100.0, per_decade=3)
        assert edges[0] == pytest.approx(1e-4)
        assert edges[-1] == pytest.approx(100.0)
        assert all(a < b for a, b in zip(edges, edges[1:]))

    def test_latency_buckets_default(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert LATENCY_BUCKETS[-1] == pytest.approx(100.0)

    def test_sample_quantile_matches_percentile_on_edges(self):
        # Observations placed exactly on bucket edges: the histogram
        # quantile must agree with the exact rolling-window percentile.
        edges = (1.0, 2.0, 4.0, 8.0)
        values = [1.0, 2.0, 2.0, 4.0, 8.0]
        counts = [1, 2, 1, 1, 0]
        for fraction in (0.25, 0.5, 0.75, 0.99, 1.0):
            assert sample_quantile(edges, counts, fraction, 8.0) == \
                percentile(values, fraction)

    def test_sample_quantile_empty(self):
        assert sample_quantile((1.0, 2.0), [0, 0, 0], 0.5) is None

    def test_sample_quantile_overflow_uses_max(self):
        assert sample_quantile((1.0,), [0, 3], 0.5, maximum=42.0) == 42.0


class TestCounter:
    def test_inc_and_snapshot(self, registry):
        registry.counter("repro_t_total", "t").inc()
        registry.counter("repro_t_total", "t").inc(2.5)
        snap = registry.snapshot()
        assert snap["repro_t_total"]["samples"][0]["value"] == 3.5

    def test_labeled_children(self, registry):
        c = registry.counter("repro_l_total", "t", labelnames=("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="b").inc(2)
        samples = registry.snapshot()["repro_l_total"]["samples"]
        assert {s["labels"]["kind"]: s["value"] for s in samples} == \
            {"a": 1.0, "b": 2.0}

    def test_negative_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("repro_n_total", "t").inc(-1)

    def test_kind_conflict_rejected(self, registry):
        registry.counter("repro_kc", "t")
        with pytest.raises(MetricError):
            registry.gauge("repro_kc", "t")

    def test_labelnames_conflict_rejected(self, registry):
        registry.counter("repro_lc_total", "t", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("repro_lc_total", "t", labelnames=("b",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro_g", "t")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert registry.snapshot()["repro_g"]["samples"][0]["value"] == 4.0


class TestHistogram:
    def test_observe_counts_and_sum(self, registry):
        h = registry.histogram("repro_h_seconds", "t",
                               buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        sample = registry.snapshot()["repro_h_seconds"]["samples"][0]
        assert sample["counts"] == [1, 1, 1]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(55.5)
        assert sample["min"] == 0.5
        assert sample["max"] == 50.0

    def test_quantile_handle(self, registry):
        h = registry.histogram("repro_q_seconds", "t",
                               buckets=(1.0, 10.0))
        assert h.quantile(0.5) is None
        for v in (0.5, 0.6, 20.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # bucket upper edge
        assert h.quantile(1.0) == 20.0  # overflow clamps to tracked max

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("repro_bb", "t", buckets=(2.0, 1.0))

    def test_trailing_inf_stripped(self, registry):
        h = registry.histogram("repro_inf", "t",
                               buckets=(1.0, math.inf))
        h.observe(0.5)
        entry = registry.snapshot()["repro_inf"]
        assert entry["buckets"] == [1.0]
        assert entry["samples"][0]["counts"] == [1, 0]


class TestSnapshotMergeDelta:
    def test_snapshot_is_json_ready(self, registry):
        registry.counter("repro_j_total", "t").inc()
        registry.histogram("repro_j_seconds", "t",
                           buckets=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())  # must not raise

    def test_merge_adds_counters_and_buckets(self, registry):
        registry.counter("repro_m_total", "t").inc(2)
        registry.histogram("repro_m_seconds", "t",
                           buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        registry.merge(snap)
        merged = registry.snapshot()
        assert merged["repro_m_total"]["samples"][0]["value"] == 4.0
        hist = merged["repro_m_seconds"]["samples"][0]
        assert hist["count"] == 2
        assert hist["counts"] == [2, 0]

    def test_merge_into_empty_registry(self, registry):
        registry.counter("repro_e_total", "t",
                         labelnames=("k",)).labels(k="x").inc(3)
        other = MetricsRegistry()
        other.merge(registry.snapshot())
        assert other.snapshot()["repro_e_total"]["samples"][0]["value"] \
            == 3.0

    def test_merge_gauge_last_write_wins(self, registry):
        registry.gauge("repro_mg", "t").set(1.0)
        snap = registry.snapshot()
        registry.gauge("repro_mg", "t").set(9.0)
        registry.merge(snap)
        assert registry.snapshot()["repro_mg"]["samples"][0]["value"] \
            == 1.0

    def test_merge_bucket_mismatch_rejected(self, registry):
        registry.histogram("repro_bm_seconds", "t",
                           buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        snap["repro_bm_seconds"]["buckets"] = [1.0, 2.0]
        snap["repro_bm_seconds"]["samples"][0]["counts"] = [1, 0, 0]
        with pytest.raises(MetricError):
            registry.merge(snap)

    def test_delta_drops_unchanged(self, registry):
        registry.counter("repro_d1_total", "t").inc()
        before = registry.snapshot()
        registry.counter("repro_d2_total", "t").inc(5)
        delta = snapshot_delta(before, registry.snapshot())
        assert "repro_d1_total" not in delta
        assert delta["repro_d2_total"]["samples"][0]["value"] == 5.0

    def test_delta_then_merge_roundtrip(self, registry):
        registry.counter("repro_rt_total", "t").inc(2)
        before = registry.snapshot()
        registry.counter("repro_rt_total", "t").inc(3)
        registry.histogram("repro_rt_seconds", "t",
                           buckets=(1.0,)).observe(0.5)
        delta = snapshot_delta(before, registry.snapshot())
        other = MetricsRegistry()
        other.merge(before)
        other.merge(delta)
        assert other.snapshot() == registry.snapshot()

    def test_reset_clears_but_handles_survive(self, registry):
        handle = registry.counter("repro_r_total", "t")
        handle.inc()
        registry.reset()
        # Metrics stay registered with their cells cleared.
        assert registry.snapshot()["repro_r_total"]["samples"] == []
        handle.inc()
        assert registry.snapshot()["repro_r_total"]["samples"][0]["value"] \
            == 1.0


class TestExposition:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("repro_x_total", "the help",
                         labelnames=("kind",)).labels(kind="a").inc(2)
        registry.gauge("repro_x_depth", "depth").set(3.0)
        text = render_exposition(registry.snapshot())
        assert "# HELP repro_x_total the help" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 2' in text
        assert "repro_x_depth 3" in text

    def test_histogram_cumulative_buckets(self, registry):
        h = registry.histogram("repro_x_seconds", "t",
                               buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        text = render_exposition(registry.snapshot())
        assert 'repro_x_seconds_bucket{le="1"} 1' in text
        assert 'repro_x_seconds_bucket{le="2"} 2' in text
        assert 'repro_x_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_x_seconds_count 3" in text
        assert "repro_x_seconds_sum 7" in text

    def test_label_escaping(self, registry):
        registry.counter("repro_esc_total", "t",
                         labelnames=("path",)).labels(
            path='a"b\\c\nd').inc()
        text = render_exposition(registry.snapshot())
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_validates_against_parser(self, registry):
        import pathlib
        import sys

        scripts = str(pathlib.Path(__file__).resolve().parents[2]
                      / "scripts")
        sys.path.insert(0, scripts)
        try:
            from validate_prometheus import validate_text
        finally:
            sys.path.remove(scripts)
        registry.counter("repro_v_total", "t",
                         labelnames=("kind",)).labels(kind="x").inc()
        registry.histogram("repro_v_seconds", "t",
                           buckets=LATENCY_BUCKETS).observe(0.01)
        registry.gauge("repro_v_depth", "t").set(1.0)
        assert validate_text(render_exposition(registry.snapshot())) == []


class TestThreadSafety:
    def test_concurrent_increments(self, registry):
        counter = registry.counter("repro_c_total", "t")
        hist = registry.histogram("repro_c_seconds", "t",
                                  buckets=(1.0,))

        def work():
            for _ in range(500):
                counter.inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["repro_c_total"]["samples"][0]["value"] == 2000.0
        assert snap["repro_c_seconds"]["samples"][0]["count"] == 2000


class TestModuleSingleton:
    def test_record_run_and_reset(self):
        m.reset_metrics()
        try:
            m.record_run("fast", rounds=3, messages=10, bits=40,
                         broadcasts=5, wall_s=0.01)
            snap = m.snapshot()
            runs = snap["repro_sim_runs_total"]["samples"]
            assert runs == [{"labels": {"engine": "fast"}, "value": 1.0}]
            assert snap["repro_sim_rounds_total"]["samples"][0]["value"] \
                == 3.0
        finally:
            m.reset_metrics()

    def test_disable_enable(self):
        m.reset_metrics()
        try:
            m.set_metrics_enabled(False)
            m.counter("repro_off_total", "t").inc()
            assert "repro_off_total" not in {
                name for name, entry in m.snapshot().items()
                if entry["samples"]
            }
        finally:
            m.set_metrics_enabled(True)
            m.reset_metrics()


class TestFlusher:
    def test_final_flush_and_readback(self, tmp_path, registry):
        registry.counter("repro_f_total", "t").inc(2)
        path = tmp_path / "metrics.jsonl"
        with MetricsFlusher(str(path), registry=registry):
            pass
        records = read_metrics_jsonl(str(path))
        assert len(records) == 1
        assert records[0]["kind"] == "metrics"
        assert records[0]["metrics"]["repro_f_total"]["samples"][0][
            "value"] == 2.0

    def test_periodic_flush(self, tmp_path, registry):
        import time

        registry.counter("repro_p_total", "t").inc()
        path = tmp_path / "metrics.jsonl"
        with MetricsFlusher(str(path), interval_s=0.05,
                            registry=registry):
            time.sleep(0.3)
        records = read_metrics_jsonl(str(path))
        assert len(records) >= 2  # at least one periodic + the final

    def test_readback_tolerates_garbage(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"kind": "metrics", "t": 1, "metrics": {}}\n'
            "not json\n"
            '{"kind": "other"}\n'
            '{"kind": "metrics", "t": 2, "metrics": {}}\n'
        )
        records = read_metrics_jsonl(str(path))
        assert [r["t"] for r in records] == [1, 2]


class TestLogicalInvariance:
    def test_colors_and_ledger_identical_with_metrics_off(self):
        """Instrumentation observes; it must never perturb results."""
        from repro.coloring import random_oldc_instance
        from repro.core import two_sweep
        from repro.graphs import gnp_graph, orient_by_id, sequential_ids
        from repro.sim import CostLedger

        def run():
            network = gnp_graph(24, 0.2, seed=3)
            instance = random_oldc_instance(
                orient_by_id(network), p=2, seed=3)
            ids = sequential_ids(network)
            ledger = CostLedger()
            result = two_sweep(instance, ids, 24, 2, ledger=ledger,
                               check=False)
            return sorted(result.colors.items()), ledger.to_dict()

        m.reset_metrics()
        with_metrics = run()
        m.set_metrics_enabled(False)
        try:
            without_metrics = run()
        finally:
            m.set_metrics_enabled(True)
            m.reset_metrics()
        assert with_metrics == without_metrics
