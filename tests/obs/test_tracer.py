"""Tests for the span/event tracer and its logical/physical split."""

from __future__ import annotations

import pytest

from repro.obs import (
    PHYSICAL_FIELDS,
    Tracer,
    canonical_lines,
    current_tracer,
    logical_view,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_records_appear_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("run", "outer"):
            with tracer.span("phase", "inner"):
                pass
        kinds = [record["kind"] for record in tracer.events]
        assert kinds == ["phase", "run"]  # children close first

    def test_span_and_parent_ids_reconstruct_the_tree(self):
        tracer = Tracer()
        with tracer.span("run", "outer"):
            with tracer.span("phase", "a"):
                pass
            with tracer.span("phase", "b"):
                pass
        a, b, outer = tracer.events
        assert outer["span"] == 1 and outer["parent"] == 0
        assert a["span"] == 2 and a["parent"] == 1
        assert b["span"] == 3 and b["parent"] == 1

    def test_late_attrs_land_on_the_record(self):
        tracer = Tracer()
        with tracer.span("phase", "work", fixed=1) as span:
            span.attrs["rounds"] = 7
        record = tracer.events[0]
        assert record["fixed"] == 1
        assert record["rounds"] == 7

    def test_span_records_timing(self):
        tracer = Tracer()
        with tracer.span("run", "timed"):
            pass
        record = tracer.events[0]
        assert record["wall_s"] >= 0.0
        assert isinstance(record["t0"], float)

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("run", "boom"):
                raise RuntimeError("kapow")
        assert tracer.events[0]["name"] == "boom"
        # The stack unwound: a new span is a root again.
        with tracer.span("run", "after"):
            pass
        assert tracer.events[1]["parent"] == 0

    def test_point_events_nest_without_consuming_span_ids(self):
        tracer = Tracer()
        with tracer.span("run", "outer"):
            tracer.event("round-batch", "rounds", rounds=3)
            with tracer.span("phase", "later"):
                pass
        batch, phase, outer = tracer.events
        assert "span" not in batch
        assert batch["parent"] == outer["span"]
        # The event did not shift the next span's id.
        assert phase["span"] == 2

    def test_annotations_are_kernel_kind(self):
        tracer = Tracer()
        with tracer.span("run", "outer"):
            tracer.annotate("dispatch", kernel="TwoSweepKernel")
        assert tracer.events[0]["kind"] == "kernel"
        assert tracer.events[0]["kernel"] == "TwoSweepKernel"


class TestLogicalView:
    def test_strips_physical_fields(self):
        tracer = Tracer()
        with tracer.span("run", "r", rounds=5, engine="fast"):
            pass
        view = logical_view(tracer.events)
        assert view[0]["rounds"] == 5
        assert not PHYSICAL_FIELDS & set(view[0])

    def test_drops_kernel_records_entirely(self):
        tracer = Tracer()
        with tracer.span("run", "r"):
            tracer.annotate("dispatch", kernel="K")
        assert [record["kind"] for record in logical_view(tracer.events)] \
            == ["run"]

    def test_canonical_lines_ignore_physical_differences(self):
        def trace(engine):
            tracer = Tracer()
            with tracer.span("run", "r", rounds=5, engine=engine) as span:
                span.attrs["messages"] = 9
                tracer.annotate("dispatch", kernel=engine)
            return tracer

        fast = trace("fast")
        vec = trace("vectorized")
        assert canonical_lines(fast.events) == canonical_lines(vec.events)
        assert canonical_lines(fast.events)  # and it is non-empty

    def test_canonical_lines_sort_keys(self):
        tracer = Tracer()
        with tracer.span("run", "r", zulu=1, alpha=2):
            pass
        line = canonical_lines(tracer.events)
        assert line.index('"alpha"') < line.index('"zulu"')


class TestMerge:
    def _worker_events(self):
        worker = Tracer()
        with worker.span("run", "trial"):
            worker.event("round-batch", "rounds", rounds=2)
        return worker.events

    def test_merge_rebases_ids_and_stamps_extra(self):
        parent = Tracer()
        with parent.span("algorithm", "sweep"):
            parent.merge(self._worker_events(), worker=1234)
        batch, run, algo = parent.events
        assert run["span"] == 2  # rebased past the open algorithm span
        assert run["parent"] == algo["span"]  # re-parented under it
        assert batch["parent"] == run["span"]
        assert run["worker"] == 1234 and batch["worker"] == 1234

    def test_merge_advances_seq_past_merged_ids(self):
        parent = Tracer()
        parent.merge(self._worker_events())
        with parent.span("run", "after"):
            pass
        span_ids = [
            record["span"] for record in parent.events if "span" in record
        ]
        assert len(span_ids) == len(set(span_ids))

    def test_two_workers_do_not_collide(self):
        parent = Tracer()
        parent.merge(self._worker_events(), worker=1)
        parent.merge(self._worker_events(), worker=2)
        span_ids = [
            record["span"] for record in parent.events if "span" in record
        ]
        assert len(span_ids) == len(set(span_ids)) == 2


class TestInstallation:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_use_tracer_installs_and_restores(self):
        with use_tracer() as tracer:
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        assert set_tracer(tracer) is None
        try:
            assert current_tracer() is tracer
        finally:
            assert set_tracer(None) is tracer
        assert current_tracer() is None
