"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestCommands:
    def test_two_sweep(self, capsys):
        assert main(["two-sweep", "--n", "24", "--p", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "rounds" in out

    def test_two_sweep_auto(self, capsys):
        assert main(["two-sweep", "--n", "24", "--p", "2", "--auto",
                     "--seed", "2"]) == 0
        assert "auto plan" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "route", ["thm13", "thm15", "baseline", "random"]
    )
    def test_delta_plus_one_routes(self, route, capsys):
        assert main([
            "delta-plus-one", "--route", route, "--n", "20",
            "--max-degree", "3", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "proper coloring verified" in out

    def test_edge_coloring(self, capsys):
        assert main(["edge-coloring", "--n", "12", "--density", "0.3",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "edge coloring" in out

    def test_edge_coloring_empty_graph(self, capsys):
        assert main(["edge-coloring", "--n", "6", "--density", "0.0",
                     "--seed", "5"]) == 1

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2024" in out

    def test_profile_wraps_command(self, capsys):
        assert main(["--profile", "two-sweep", "--n", "16", "--p", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "cumulative" in out
        assert "function calls" in out

    def test_profile_preserves_exit_status(self, capsys):
        assert main(["--profile", "edge-coloring", "--n", "6",
                     "--density", "0.0", "--seed", "5"]) == 1

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0
        assert "repro" in completed.stdout


class TestGenerateSolve:
    def test_oldc_roundtrip(self, tmp_path, capsys):
        instance_path = tmp_path / "inst.json"
        solution_path = tmp_path / "sol.json"
        assert main([
            "generate", "--kind", "oldc", "--n", "20",
            "--out", str(instance_path),
        ]) == 0
        assert main([
            "solve", "--instance", str(instance_path),
            "--out", str(solution_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "output validated" in out
        assert solution_path.exists()

    def test_arbdefective_roundtrip(self, tmp_path, capsys):
        instance_path = tmp_path / "inst.json"
        assert main([
            "generate", "--kind", "arbdefective", "--n", "20",
            "--out", str(instance_path),
        ]) == 0
        assert main(["solve", "--instance", str(instance_path)]) == 0
        assert "output validated" in capsys.readouterr().out

    def test_defective_with_enough_slack_solves(self, tmp_path, capsys):
        instance_path = tmp_path / "inst.json"
        assert main([
            "generate", "--kind", "defective", "--n", "15",
            "--slack", "400.0", "--out", str(instance_path),
        ]) == 0
        assert main(["solve", "--instance", str(instance_path)]) == 0
        assert "output validated" in capsys.readouterr().out

    def test_defective_without_slack_reports_failure(self, tmp_path,
                                                     capsys):
        instance_path = tmp_path / "inst.json"
        assert main([
            "generate", "--kind", "defective", "--n", "15",
            "--slack", "1.1", "--out", str(instance_path),
        ]) == 0
        assert main(["solve", "--instance", str(instance_path)]) == 2
        assert "could not solve" in capsys.readouterr().out


class TestTrace:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace_file, validate_trace_file

        trace_path = tmp_path / "run.jsonl"
        assert main([
            "--trace", str(trace_path),
            "two-sweep", "--n", "24", "--p", "2", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert validate_trace_file(str(trace_path)) == []
        manifest, events = load_trace_file(str(trace_path))
        assert manifest["command"] == "two-sweep"
        assert manifest["exit_status"] == 0
        assert manifest["seeds"] == {"seed": 1}
        assert manifest["ledger"]["rounds"] > 0
        assert any(record["kind"] == "run" for record in events)

    def test_trace_chrome_format(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.json"
        assert main([
            "--trace", str(trace_path), "--trace-format", "chrome",
            "two-sweep", "--n", "16", "--p", "2", "--seed", "1",
        ]) == 0
        with open(trace_path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]
        assert payload["metadata"]["kind"] == "manifest"

    def test_trace_subcommand_summarizes(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main([
            "--engine", "vectorized", "--trace", str(trace_path),
            "two-sweep", "--n", "24", "--p", "2", "--seed", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "two-sweep" in out
        assert "kernel hits" in out

    def test_trace_subcommand_logical_stream(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.jsonl"
        assert main([
            "--trace", str(trace_path),
            "two-sweep", "--n", "16", "--p", "2", "--seed", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--logical"]) == 0
        out = capsys.readouterr().out.strip()
        for line in out.splitlines():
            record = json.loads(line)
            assert "wall_s" not in record and "t0" not in record

    def test_trace_subcommand_chrome_conversion(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.jsonl"
        chrome_path = tmp_path / "run.chrome.json"
        assert main([
            "--trace", str(trace_path),
            "two-sweep", "--n", "16", "--p", "2", "--seed", "1",
        ]) == 0
        assert main([
            "trace", str(trace_path), "--chrome", str(chrome_path),
        ]) == 0
        with open(chrome_path) as handle:
            assert json.load(handle)["traceEvents"]

    def test_trace_subcommand_rejects_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "mystery"}\n')
        assert main(["trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_logical_stream_identical_across_engines(self, tmp_path,
                                                     capsys):
        streams = {}
        for engine in ("reference", "fast", "vectorized"):
            trace_path = tmp_path / f"{engine}.jsonl"
            assert main([
                "--engine", engine, "--trace", str(trace_path),
                "two-sweep", "--n", "24", "--p", "2", "--seed", "1",
            ]) == 0
            capsys.readouterr()
            assert main(["trace", str(trace_path), "--logical"]) == 0
            streams[engine] = capsys.readouterr().out
        assert streams["fast"] == streams["reference"]
        assert streams["vectorized"] == streams["reference"]

    def test_kernel_stats_fallback_note(self, capsys):
        from repro.sim import reset_kernel_stats

        reset_kernel_stats()
        # The randomized baseline has no registered kernel, so the
        # vectorized engine records an 'unregistered' fallback.
        assert main([
            "--engine", "vectorized", "--kernel-stats",
            "delta-plus-one", "--route", "random", "--n", "16",
            "--max-degree", "3", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "kernel stat" in out
        notes = [
            line for line in out.splitlines() if line.startswith("note:")
        ]
        assert notes, "fallback note missing"
        assert any("unregistered" in line and "no kernel is registered"
                   in line for line in notes)


class TestMetricsFlag:
    def test_metrics_flush_and_top_roundtrip(self, tmp_path, capsys):
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset_metrics()
        path = tmp_path / "metrics.jsonl"
        assert main([
            "--metrics", str(path),
            "two-sweep", "--n", "24", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert f"metrics written to {path}" in out
        assert path.exists()

        assert main(["top", str(path)]) == 0
        top_out = capsys.readouterr().out
        assert "repro top" in top_out
        assert "sim       runs:" in top_out

    def test_metrics_with_trace_embeds_manifest_section(self, tmp_path,
                                                        capsys):
        from repro.obs import load_trace_file
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset_metrics()
        trace = tmp_path / "run.jsonl"
        flushed = tmp_path / "metrics.jsonl"
        assert main([
            "--trace", str(trace), "--metrics", str(flushed),
            "two-sweep", "--n", "24", "--seed", "7",
        ]) == 0
        capsys.readouterr()
        manifest, _events = load_trace_file(str(trace))
        assert manifest["metrics"] is not None
        assert "repro_sim_runs_total" in manifest["metrics"]

        # Satellite: `repro trace` prints the manifest's metrics view.
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "metrics registry at capture:" in out
        assert "sim       runs:" in out

    def test_top_requires_exactly_one_source(self, capsys):
        assert main(["top"]) == 2
        assert "exactly one source" in capsys.readouterr().out

    def test_top_missing_file_reports_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["top", str(missing)]) == 1
        assert "repro top:" in capsys.readouterr().out
