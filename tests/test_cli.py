"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestCommands:
    def test_two_sweep(self, capsys):
        assert main(["two-sweep", "--n", "24", "--p", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "rounds" in out

    def test_two_sweep_auto(self, capsys):
        assert main(["two-sweep", "--n", "24", "--p", "2", "--auto",
                     "--seed", "2"]) == 0
        assert "auto plan" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "route", ["thm13", "thm15", "baseline", "random"]
    )
    def test_delta_plus_one_routes(self, route, capsys):
        assert main([
            "delta-plus-one", "--route", route, "--n", "20",
            "--max-degree", "3", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "proper coloring verified" in out

    def test_edge_coloring(self, capsys):
        assert main(["edge-coloring", "--n", "12", "--density", "0.3",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "edge coloring" in out

    def test_edge_coloring_empty_graph(self, capsys):
        assert main(["edge-coloring", "--n", "6", "--density", "0.0",
                     "--seed", "5"]) == 1

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2024" in out

    def test_profile_wraps_command(self, capsys):
        assert main(["--profile", "two-sweep", "--n", "16", "--p", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "cumulative" in out
        assert "function calls" in out

    def test_profile_preserves_exit_status(self, capsys):
        assert main(["--profile", "edge-coloring", "--n", "6",
                     "--density", "0.0", "--seed", "5"]) == 1

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0
        assert "repro" in completed.stdout


class TestGenerateSolve:
    def test_oldc_roundtrip(self, tmp_path, capsys):
        instance_path = tmp_path / "inst.json"
        solution_path = tmp_path / "sol.json"
        assert main([
            "generate", "--kind", "oldc", "--n", "20",
            "--out", str(instance_path),
        ]) == 0
        assert main([
            "solve", "--instance", str(instance_path),
            "--out", str(solution_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "output validated" in out
        assert solution_path.exists()

    def test_arbdefective_roundtrip(self, tmp_path, capsys):
        instance_path = tmp_path / "inst.json"
        assert main([
            "generate", "--kind", "arbdefective", "--n", "20",
            "--out", str(instance_path),
        ]) == 0
        assert main(["solve", "--instance", str(instance_path)]) == 0
        assert "output validated" in capsys.readouterr().out

    def test_defective_with_enough_slack_solves(self, tmp_path, capsys):
        instance_path = tmp_path / "inst.json"
        assert main([
            "generate", "--kind", "defective", "--n", "15",
            "--slack", "400.0", "--out", str(instance_path),
        ]) == 0
        assert main(["solve", "--instance", str(instance_path)]) == 0
        assert "output validated" in capsys.readouterr().out

    def test_defective_without_slack_reports_failure(self, tmp_path,
                                                     capsys):
        instance_path = tmp_path / "inst.json"
        assert main([
            "generate", "--kind", "defective", "--n", "15",
            "--slack", "1.1", "--out", str(instance_path),
        ]) == 0
        assert main(["solve", "--instance", str(instance_path)]) == 2
        assert "could not solve" in capsys.readouterr().out
