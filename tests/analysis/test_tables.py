"""Tests for the table renderer."""

from __future__ import annotations

from repro.analysis import format_value, render_records, render_table


class TestFormatValue:
    def test_ints_and_strings(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"

    def test_floats(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(0.0001) == "0.0001"

    def test_none_and_nan(self):
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "-"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(
            ["name", "rounds"], [["two-sweep", 41], ["greedy", 7]]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "name" in lines[0] and "rounds" in lines[0]
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all lines must share a width"

    def test_title_prepended(self):
        text = render_table(["x"], [[1]], title="E1")
        assert text.splitlines()[0] == "E1"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderRecords:
    def test_column_selection_and_order(self):
        records = [
            {"a": 1, "b": 2, "c": 3},
            {"a": 4, "b": 5},
        ]
        text = render_records(records, ["b", "a"])
        lines = text.splitlines()
        assert lines[0].startswith("b")
        assert "5" in lines[3] and "4" in lines[3]

    def test_missing_fields_dash(self):
        text = render_records([{"a": 1}], ["a", "zzz"])
        assert "-" in text.splitlines()[-1]
