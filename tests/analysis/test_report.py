"""Tests for the benchmark report aggregator."""

from __future__ import annotations

import pathlib

from repro.analysis import build_report, collect_result_files, write_report


def make_results(tmp_path: pathlib.Path) -> pathlib.Path:
    results = tmp_path / "results"
    results.mkdir()
    (results / "E2_second.txt").write_text("E2: title two\nrow\n")
    (results / "E10a_tenth.txt").write_text("E10a: title ten\nrow\n")
    (results / "E1_first.txt").write_text("E1: title one\nrow\n")
    (results / "notes.md").write_text("not a result file")
    return results


class TestCollect:
    def test_numeric_ordering(self, tmp_path):
        results = make_results(tmp_path)
        names = [path.stem for path in collect_result_files(results)]
        assert names == ["E1_first", "E2_second", "E10a_tenth"]

    def test_non_result_files_ignored(self, tmp_path):
        results = make_results(tmp_path)
        assert all(
            path.suffix == ".txt" for path in collect_result_files(results)
        )


class TestBuildAndWrite:
    def test_report_contains_all_tables(self, tmp_path):
        results = make_results(tmp_path)
        report = build_report(results)
        assert "E1: title one" in report
        assert "E10a: title ten" in report
        assert report.index("E1: title one") < report.index(
            "E2: title two"
        )

    def test_empty_directory_notice(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert "no result files" in build_report(empty)

    def test_write_report(self, tmp_path):
        results = make_results(tmp_path)
        output = write_report(results)
        assert output.exists()
        assert output.name == "REPORT.md"
        assert "Benchmark report" in output.read_text()

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        results = make_results(tmp_path)
        assert main(["report", "--results-dir", str(results)]) == 0
        assert "report written" in capsys.readouterr().out

    def test_cli_report_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["report", "--results-dir", str(tmp_path / "nope")]
        ) == 1
