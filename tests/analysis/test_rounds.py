"""Tests for the theoretical bound calculators."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    defective_3coloring_threshold,
    lemma_44_factor,
    lemma_a1_factor,
    substituted_13_rounds,
    theorem_11_rounds,
    theorem_12_rounds,
    theorem_13_rounds,
    theorem_14_round_factor,
    theorem_15_rounds,
)


class TestTheorem11:
    def test_epsilon_zero_is_q(self):
        assert theorem_11_rounds(100, 3, 0.0) == 100.0

    def test_min_with_q(self):
        # Tiny q: the sweep bound wins.
        assert theorem_11_rounds(5, 3, 0.1) == 5.0
        # Huge q: the (p/eps)^2 bound wins.
        value = theorem_11_rounds(10 ** 9, 2, 0.5)
        assert value == pytest.approx(16 + 5)


class TestTheorem12:
    def test_cubic_in_log_c(self):
        a = theorem_12_rounds(16, 100)
        b = theorem_12_rounds(256, 100)
        assert b == pytest.approx(
            a - math.log2(16) ** 3 + math.log2(256) ** 3
        )


class TestTheorem13:
    def test_substituted_is_sqrt_delta_slower(self):
        claimed = theorem_13_rounds(64, 1000)
        ours = substituted_13_rounds(64, 1000)
        ratio = (ours - 4) / (claimed - 4)  # strip the log* n term
        assert ratio == pytest.approx(math.sqrt(64), rel=0.01)


class TestTheorem15:
    def test_min_of_two_branches(self):
        # For tiny theta and large Delta the quasi-poly branch wins.
        small_theta = theorem_15_rounds(2 ** 16, theta=1, n=1000)
        poly = 1 * 1 * (2 ** 16) ** 0.25 * 16.0 ** 8
        assert small_theta <= poly

    def test_monotone_in_theta(self):
        a = theorem_15_rounds(256, theta=1, n=100)
        b = theorem_15_rounds(256, theta=4, n=100)
        assert a <= b


class TestFactors:
    def test_theorem_14_factor(self):
        assert theorem_14_round_factor(8) == 4
        assert theorem_14_round_factor(9) == 5

    def test_lemma_factors(self):
        assert lemma_44_factor(3.0) == 9.0
        assert lemma_a1_factor(2.0, 16) == 4.0 * 4


class TestDefective3Coloring:
    def test_threshold_formula(self):
        assert defective_3coloring_threshold(6) == pytest.approx(3.0)
        assert defective_3coloring_threshold(9) == pytest.approx(5.0)
