"""Tests for the parameter-sweep harness."""

from __future__ import annotations

from repro.analysis import grid, summarize, sweep


class TestGrid:
    def test_cartesian_product(self):
        cells = grid(a=[1, 2], b=["x", "y", "z"])
        assert len(cells) == 6
        assert {"a": 2, "b": "y"} in cells

    def test_single_axis(self):
        assert grid(n=[10]) == [{"n": 10}]


class TestSweep:
    def test_records_tagged_with_params(self):
        records = sweep(
            lambda n: {"double": 2 * n}, grid(n=[1, 2, 3])
        )
        assert records == [
            {"n": 1, "double": 2},
            {"n": 2, "double": 4},
            {"n": 3, "double": 6},
        ]

    def test_repeats_add_rep_axis(self):
        records = sweep(
            lambda n, rep: {"v": n + rep}, grid(n=[10]), repeats=3
        )
        assert [record["rep"] for record in records] == [0, 1, 2]

    def test_timing_recorded(self):
        records = sweep(lambda n: {}, grid(n=[1]), timing=True)
        assert records[0]["wall_s"] >= 0.0


class TestSummarize:
    def test_group_means(self):
        records = [
            {"n": 1, "v": 2.0},
            {"n": 1, "v": 4.0},
            {"n": 2, "v": 10.0},
        ]
        rows = summarize(records, group_by=["n"], fields=["v"])
        by_n = {row["n"]: row["v"] for row in rows}
        assert by_n[1] == 3.0
        assert by_n[2] == 10.0

    def test_custom_reducer(self):
        records = [{"n": 1, "v": 2.0}, {"n": 1, "v": 9.0}]
        rows = summarize(
            records, group_by=["n"], fields=["v"], reducer=max
        )
        assert rows[0]["v"] == 9.0

    def test_missing_values_skipped(self):
        records = [{"n": 1, "v": None}, {"n": 1, "v": 6.0}]
        rows = summarize(records, group_by=["n"], fields=["v"])
        assert rows[0]["v"] == 6.0
