"""Tests for the Theorem 1.5 vs 1.3 crossover analysis."""

from __future__ import annotations

import pytest

from repro.analysis import (
    crossover_exponent,
    crossover_table,
    crossover_theta,
    theorem_13_rounds,
    theorem_15_rounds,
    theorem_15_beats_13,
)


class TestBeats:
    def test_consistent_with_models(self):
        delta, n = 2 ** 16, 2 ** 18
        for theta in (1, 2, 8, 64):
            direct = theorem_15_rounds(delta, theta, n) < (
                theorem_13_rounds(delta, n)
            )
            assert theorem_15_beats_13(delta, theta, n) == direct


class TestCrossoverTheta:
    def test_prefix_property(self):
        """Every theta at or below the crossover wins; above loses."""
        delta = 2 ** 16
        star = crossover_theta(delta)
        assert star >= 1
        for theta in range(1, star + 1):
            assert theorem_15_beats_13(delta, theta)
        assert not theorem_15_beats_13(delta, star + 1)

    def test_matches_linear_scan(self):
        """Binary search agrees with the brute-force definition."""
        for delta in (64, 256, 1024):
            star = crossover_theta(delta)
            scan = 0
            for theta in range(1, delta + 1):
                if theorem_15_beats_13(delta, theta):
                    scan = theta
                else:
                    break
            assert star == scan

    def test_zero_when_never_wins(self):
        # Tiny degrees: the quasi-poly factor has not amortized.
        assert crossover_theta(4) in (0, 1, 2, 3, 4)  # well-defined
        assert isinstance(crossover_theta(4), int)


class TestExponent:
    def test_approaches_paper_band_at_scale(self):
        """The paper's Delta^{1/8}: the measured exponent must sit in
        (0, 1/4] once Delta is large (polylog slop around 1/8)."""
        for log2_delta in (16, 20, 24, 28):
            exponent = crossover_exponent(2 ** log2_delta)
            assert exponent is not None
            assert 0.0 < exponent <= 0.25

    def test_exponent_none_or_zero_cases(self):
        value = crossover_exponent(2)
        assert value is None or value >= 0.0


class TestTable:
    def test_table_shape(self):
        rows = crossover_table([256, 1024])
        assert len(rows) == 2
        delta, theta_star, exponent = rows[0]
        assert delta == 256
        assert theta_star == crossover_theta(256)
