"""Remaining small branches across modules."""

from __future__ import annotations

import pytest

from repro.graphs import gnp_graph, ring_graph, sequential_ids
from repro.sim import (
    BandwidthExceeded,
    CongestModel,
    CostLedger,
    Scheduler,
)


class TestSchedulerOutputs:
    def test_outputs_collects_program_outputs(self):
        from repro.sim import NodeProgram

        class Fixed(NodeProgram):
            def __init__(self, value):
                self.value = value

            def on_round(self, ctx):
                ctx.halt()

            def output(self):
                return self.value

        network = ring_graph(4)
        scheduler = Scheduler(
            network, {node: Fixed(node * 10) for node in network}
        )
        scheduler.run()
        assert scheduler.outputs() == {0: 0, 1: 10, 2: 20, 3: 30}
        assert scheduler.rounds_executed == 1


class TestCongestEdges:
    def test_single_node_budget(self):
        model = CongestModel(n=1)
        assert model.budget_bits() >= 32  # log2 floor is clamped to 1

    def test_tight_budget_kills_algebraic_recoloring(self):
        from repro.graphs import random_ids
        from repro.substrates import linial_coloring

        network = gnp_graph(30, 0.2, seed=1)
        ids = random_ids(network, seed=1, bits=30)
        # One bit per message cannot carry a 30-bit color.
        bandwidth = CongestModel(n=2, factor=1)
        with pytest.raises(BandwidthExceeded):
            linial_coloring(
                network, ids, 2 ** 30, bandwidth=bandwidth
            )


class TestColorReductionNoop:
    def test_q_equals_target(self):
        from repro.substrates import greedy_color_reduction

        network = ring_graph(5)
        colors = {node: node for node in network}
        ledger = CostLedger()
        reduced = greedy_color_reduction(
            network, colors, 5, target=5, ledger=ledger
        )
        assert reduced == colors
        assert ledger.rounds <= 1


class TestLovaszMoveCap:
    def test_max_moves_zero_freezes_partition(self):
        from repro.substrates import lovasz_defective_partition

        network = gnp_graph(20, 0.4, seed=2)
        frozen = lovasz_defective_partition(
            network, 3, seed=2, max_moves=0
        )
        # With no moves allowed the result is exactly the seeded random
        # start -- reproducible, even if not locally optimal.
        again = lovasz_defective_partition(
            network, 3, seed=2, max_moves=0
        )
        assert frozen == again


class TestSubspaceChoiceValidation:
    def test_p_must_be_positive(self):
        from repro.coloring import random_arbdefective_instance
        from repro.core import build_subspace_instance
        from repro.sim import InfeasibleInstanceError

        network = ring_graph(6)
        instance = random_arbdefective_instance(
            network, slack=3.0, seed=1, color_space_size=8
        )
        with pytest.raises(InfeasibleInstanceError):
            build_subspace_instance(instance, p=0, sigma=1.0)


class TestSummarizeEdges:
    def test_empty_records(self):
        from repro.analysis import summarize

        assert summarize([], group_by=["a"], fields=["b"]) == []


class TestPlanDescribe:
    def test_plain_sweep_description(self):
        from repro.core import OLDCPlan

        plan = OLDCPlan(p=2, epsilon=0.0, estimated_rounds=41,
                        sweep_palette=20)
        assert plan.describe().startswith("two-sweep")
        fast = OLDCPlan(p=2, epsilon=0.5, estimated_rounds=100,
                        sweep_palette=49)
        assert fast.describe().startswith("fast-two-sweep")
