"""Tests for the CI gate scripts in scripts/."""

import json
import pathlib
import sys

import pytest

SCRIPTS = str(pathlib.Path(__file__).resolve().parents[1] / "scripts")


@pytest.fixture()
def drift():
    sys.path.insert(0, SCRIPTS)
    try:
        import check_bench_drift

        yield check_bench_drift
    finally:
        sys.path.remove(SCRIPTS)


@pytest.fixture()
def reports(tmp_path):
    committed = tmp_path / "committed.json"
    smoke = tmp_path / "smoke.json"
    committed.write_text(json.dumps({
        "headline": {"speedup": 2.0, "nodes_per_s": 100000},
    }))
    smoke.write_text(json.dumps({
        "headline": {"speedup": 1.0, "nodes_per_s": 40000},
    }))
    return str(committed), str(smoke)


class TestDriftGate:
    def test_regression_fails_build(self, drift, reports, capsys):
        committed, smoke = reports
        status = drift.main([
            committed, smoke, "--metric", "headline.speedup:0.9",
        ])
        out = capsys.readouterr().out
        assert status == 1
        assert "::error" in out

    def test_ok_metric_passes(self, drift, reports, capsys):
        committed, smoke = reports
        status = drift.main([
            committed, smoke, "--metric", "headline.speedup:0.4",
        ])
        assert status == 0
        assert "no blocking drift" in capsys.readouterr().out

    def test_warn_only_escape_hatch(self, drift, reports, capsys):
        committed, smoke = reports
        status = drift.main([
            committed, smoke, "--warn-only",
            "--metric", "headline.speedup:0.9",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "::warning" in out
        assert "::error" not in out

    def test_allowlisted_path_only_warns(self, drift, reports,
                                         tmp_path, capsys):
        committed, smoke = reports
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text(
            "# throughputs are noisy on shared runners\n"
            "headline.nodes_per_s\n"
        )
        status = drift.main([
            committed, smoke, "--allowlist", str(allowlist),
            "--metric", "headline.nodes_per_s:0.9",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "::warning" in out

    def test_allowlist_does_not_shield_other_paths(self, drift, reports,
                                                   tmp_path):
        committed, smoke = reports
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text("headline.nodes_per_s\n")
        status = drift.main([
            committed, smoke, "--allowlist", str(allowlist),
            "--metric", "headline.speedup:0.9",
        ])
        assert status == 1

    def test_missing_path_skips(self, drift, reports, capsys):
        committed, smoke = reports
        status = drift.main([
            committed, smoke, "--metric", "headline.absent",
        ])
        assert status == 0
        assert "skipped" in capsys.readouterr().out

    def test_repo_allowlist_covers_throughputs(self, drift):
        entries = drift.load_allowlist(
            str(pathlib.Path(SCRIPTS) / "bench_drift_allowlist.txt")
        )
        assert "headline.nodes_per_s" in entries
        assert "headline_multicore.nodes_per_s" in entries
        # Within-run ratios stay hard-gated.
        assert "headline.speedup" not in entries


class TestPrometheusValidator:
    @pytest.fixture()
    def validator(self):
        sys.path.insert(0, SCRIPTS)
        try:
            import validate_prometheus

            yield validate_prometheus
        finally:
            sys.path.remove(SCRIPTS)

    def test_live_exposition_passes(self, validator):
        from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("repro_ok_total", "t",
                         labelnames=("k",)).labels(k="a").inc()
        registry.histogram("repro_ok_seconds", "t",
                           buckets=LATENCY_BUCKETS).observe(0.2)
        assert validator.validate_text(registry.exposition()) == []

    def test_untyped_sample_flagged(self, validator):
        errors = validator.validate_text("repro_mystery_total 3\n")
        assert any("no preceding TYPE" in error for error in errors)

    def test_noncumulative_buckets_flagged(self, validator):
        text = (
            "# TYPE repro_bad_seconds histogram\n"
            'repro_bad_seconds_bucket{le="1"} 5\n'
            'repro_bad_seconds_bucket{le="2"} 3\n'
            'repro_bad_seconds_bucket{le="+Inf"} 5\n'
            "repro_bad_seconds_sum 4\n"
            "repro_bad_seconds_count 5\n"
        )
        errors = validator.validate_text(text)
        assert any("not cumulative" in error for error in errors)

    def test_missing_inf_bucket_flagged(self, validator):
        text = (
            "# TYPE repro_noinf_seconds histogram\n"
            'repro_noinf_seconds_bucket{le="1"} 5\n'
            "repro_noinf_seconds_count 5\n"
        )
        errors = validator.validate_text(text)
        assert any("+Inf" in error for error in errors)

    def test_inf_bucket_count_mismatch_flagged(self, validator):
        text = (
            "# TYPE repro_mm_seconds histogram\n"
            'repro_mm_seconds_bucket{le="+Inf"} 4\n'
            "repro_mm_seconds_count 5\n"
        )
        errors = validator.validate_text(text)
        assert any("_count" in error for error in errors)

    def test_duplicate_series_flagged(self, validator):
        text = (
            "# TYPE repro_dup_total counter\n"
            'repro_dup_total{k="a"} 1\n'
            'repro_dup_total{k="a"} 2\n'
        )
        errors = validator.validate_text(text)
        assert any("duplicate series" in error for error in errors)
