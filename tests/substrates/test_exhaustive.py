"""Tests for the brute-force ground-truth solvers."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ListDefectiveInstance,
    OLDCInstance,
    check_list_defective,
    check_oldc,
    random_defective_instance,
    uniform_lists,
)
from repro.graphs import (
    complete_graph,
    orient_by_id,
    path_graph,
    ring_graph,
)
from repro.substrates import (
    solve_list_defective_bruteforce,
    solve_oldc_bruteforce,
)


class TestListDefectiveBruteforce:
    def test_finds_valid_solution(self):
        network = ring_graph(8)
        instance = random_defective_instance(
            network, slack=1.5, seed=1, color_space_size=6
        )
        colors = solve_list_defective_bruteforce(instance)
        assert colors is not None
        assert check_list_defective(instance, colors) == []

    def test_detects_unsolvable(self):
        # Triangle, everyone must take the same single color, defect 0.
        network = complete_graph(3)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = ListDefectiveInstance(network, lists, defects)
        assert solve_list_defective_bruteforce(instance) is None

    def test_defect_makes_it_solvable(self):
        network = complete_graph(3)
        lists, defects = uniform_lists(network.nodes, (0,), 2)
        instance = ListDefectiveInstance(network, lists, defects)
        colors = solve_list_defective_bruteforce(instance)
        assert colors is not None

    def test_tight_proper_coloring(self):
        # An odd ring needs 3 colors; 2 zero-defect colors must fail.
        network = ring_graph(5)
        lists, defects = uniform_lists(network.nodes, (0, 1), 0)
        instance = ListDefectiveInstance(network, lists, defects)
        assert solve_list_defective_bruteforce(instance) is None
        lists3, defects3 = uniform_lists(network.nodes, (0, 1, 2), 0)
        instance3 = ListDefectiveInstance(network, lists3, defects3)
        assert solve_list_defective_bruteforce(instance3) is not None

    def test_size_cap(self):
        network = path_graph(80)
        lists, defects = uniform_lists(network.nodes, (0, 1, 2), 0)
        instance = ListDefectiveInstance(network, lists, defects)
        with pytest.raises(ValueError):
            solve_list_defective_bruteforce(instance)


class TestOLDCBruteforce:
    def test_finds_valid_solution(self):
        network = ring_graph(7)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0, 1, 2), 0)
        instance = OLDCInstance(graph, lists, defects)
        colors = solve_oldc_bruteforce(instance)
        assert colors is not None
        assert check_oldc(instance, colors) == []

    def test_orientation_makes_hard_instances_easy(self):
        # Triangle, one shared color, defect 1: each node may have one
        # same-colored OUT-neighbor; with an acyclic orientation the node
        # with outdegree 2 fails, so defect 1 is NOT enough...
        network = complete_graph(3)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = OLDCInstance(graph, lists, defects)
        assert solve_oldc_bruteforce(instance) is None
        # ...but defect 2 is.
        lists2, defects2 = uniform_lists(network.nodes, (0,), 2)
        instance2 = OLDCInstance(graph, lists2, defects2)
        assert solve_oldc_bruteforce(instance2) is not None

    def test_agrees_with_two_sweep_on_feasible_instances(self):
        """Where Two-Sweep's precondition holds, a solution must exist --
        brute force must never say 'unsolvable'."""
        from repro.coloring import random_oldc_instance
        from repro.graphs import gnp_graph

        network = gnp_graph(10, 0.3, seed=5)
        graph = orient_by_id(network)
        instance = random_oldc_instance(
            graph, p=2, seed=6, color_space_size=8
        )
        assert solve_oldc_bruteforce(instance) is not None
