"""Tests for the [Lov66] local-search defective partition."""

from __future__ import annotations

import pytest

from repro.graphs import complete_graph, gnp_graph, ring_graph
from repro.sim import InstanceError
from repro.substrates import lovasz_defective_partition


def same_class_neighbors(network, colors, node):
    return sum(
        1 for neighbor in network.neighbors(node)
        if colors[neighbor] == colors[node]
    )


class TestGuarantee:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_defect_at_most_deg_over_k(self, k):
        network = gnp_graph(40, 0.3, seed=k)
        colors = lovasz_defective_partition(network, k, seed=1)
        for node in network:
            assert same_class_neighbors(network, colors, node) <= (
                network.degree(node) // k
            )

    def test_clique_partition(self):
        network = complete_graph(12)
        colors = lovasz_defective_partition(network, 3, seed=2)
        # deg = 11, k = 3: at most 3 same-class neighbors each,
        # i.e. classes of size at most 4.
        for node in network:
            assert same_class_neighbors(network, colors, node) <= 3

    def test_one_class_allows_everything(self):
        network = ring_graph(6)
        colors = lovasz_defective_partition(network, 1, seed=3)
        assert set(colors.values()) == {0}

    def test_uses_at_most_k_classes(self):
        network = gnp_graph(30, 0.2, seed=9)
        colors = lovasz_defective_partition(network, 4, seed=4)
        assert set(colors.values()) <= set(range(4))

    def test_invalid_class_count(self):
        with pytest.raises(InstanceError):
            lovasz_defective_partition(ring_graph(4), 0)

    def test_deterministic_for_seed(self):
        network = gnp_graph(25, 0.25, seed=5)
        a = lovasz_defective_partition(network, 3, seed=7)
        b = lovasz_defective_partition(network, 3, seed=7)
        assert a == b


class TestPartitionOverrideInSlackReduction:
    def test_valid_partition_accepted_and_used(self):
        from repro.coloring import (
            check_arbdefective,
            random_arbdefective_instance,
        )
        from repro.core import slack_reduction, solve_arbdefective_base
        from repro.graphs import sequential_ids

        network = gnp_graph(36, 0.3, seed=11)
        instance = random_arbdefective_instance(
            network, slack=2.5, seed=11, color_space_size=16
        )
        mu = 2.0
        partition = lovasz_defective_partition(network, 4, seed=1)
        edges_seen = []

        def inner(sub, sub_initial, sub_q, ledger):
            edges_seen.append(sub.network.edge_count())
            return solve_arbdefective_base(
                sub, sub_initial, sub_q, ledger=ledger
            )

        result = slack_reduction(
            instance, sequential_ids(network), len(network),
            mu=mu, inner_solver=inner, partition=partition,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_bad_partition_rejected(self):
        from repro.coloring import random_arbdefective_instance
        from repro.core import slack_reduction, solve_arbdefective_base
        from repro.graphs import sequential_ids
        from repro.sim import InfeasibleInstanceError

        network = complete_graph(8)
        instance = random_arbdefective_instance(
            network, slack=2.5, seed=12, color_space_size=16
        )
        everyone_same = {node: 0 for node in network}
        with pytest.raises(InfeasibleInstanceError):
            slack_reduction(
                instance, sequential_ids(network), len(network),
                mu=4.0,
                inner_solver=lambda *args: None,
                partition=everyone_same,
            )
