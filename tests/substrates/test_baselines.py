"""Tests for the prior-work baselines and resource envelopes."""

from __future__ import annotations

import pytest

from repro.graphs import (
    gnp_graph,
    orient_by_id,
    random_regular_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InstanceError
from repro.substrates import (
    baseline_palette_size,
    fk23_local_work,
    fk23_required_list_size,
    mt20_required_list_size,
    two_sweep_defective_baseline,
    two_sweep_local_work,
    two_sweep_required_list_size,
)


class TestDefectiveTwoSweepBaseline:
    @pytest.mark.parametrize("defect", [0, 2, 4, 8])
    def test_defect_bound_holds(self, defect):
        network = gnp_graph(40, 0.2, seed=17)
        graph = orient_by_id(network)
        ids = sequential_ids(network)
        result = two_sweep_defective_baseline(
            graph, ids, len(network), defect
        )
        for node in graph.nodes:
            conflicts = sum(
                1
                for neighbor in graph.out_neighbors(node)
                if result.colors[neighbor] == result.colors[node]
            )
            assert conflicts <= defect

    def test_palette_size_matches_formula(self):
        network = random_regular_graph(30, 6, seed=4)
        graph = orient_by_id(network)
        ids = sequential_ids(network)
        defect = 2
        result = two_sweep_defective_baseline(
            graph, ids, len(network), defect
        )
        assert result.color_count() <= baseline_palette_size(
            graph.max_beta(), defect
        )

    def test_zero_defect_gives_proper_on_out_edges(self):
        network = gnp_graph(25, 0.2, seed=3)
        graph = orient_by_id(network)
        ids = sequential_ids(network)
        result = two_sweep_defective_baseline(graph, ids, len(network), 0)
        for node in graph.nodes:
            for neighbor in graph.out_neighbors(node):
                assert result.colors[neighbor] != result.colors[node]

    def test_rounds_linear_in_q(self):
        network = gnp_graph(20, 0.2, seed=5)
        graph = orient_by_id(network)
        ids = sequential_ids(network)
        ledger = CostLedger()
        two_sweep_defective_baseline(
            graph, ids, len(network), 2, ledger=ledger
        )
        assert ledger.rounds <= 2 * len(network) + 2

    def test_negative_defect_rejected(self):
        network = gnp_graph(10, 0.3, seed=1)
        graph = orient_by_id(network)
        with pytest.raises(InstanceError):
            two_sweep_defective_baseline(
                graph, sequential_ids(network), 10, -1
            )


class TestResourceEnvelopes:
    def test_ours_beats_fk23_by_log_factor(self):
        for beta in (8, 32, 128):
            for defect in (1, 2, 4):
                ours = two_sweep_required_list_size(beta, defect)
                theirs = fk23_required_list_size(beta, defect, 2 * beta, beta)
                assert ours < theirs

    def test_mt20_proper_lists(self):
        # MT20 needs beta^2 log beta for proper (defect-0) list coloring.
        assert mt20_required_list_size(16, 64) >= 16 * 16 * 4

    def test_two_sweep_list_size_formula(self):
        # p = ceil((beta+1)/(d+1)); defect 0 -> p = beta + 1.
        assert two_sweep_required_list_size(4, 0) == 25
        assert two_sweep_required_list_size(8, 3) == 9

    def test_local_work_gap(self):
        # Near-linear vs exponential: the gap must be dramatic already
        # at moderate list sizes.
        list_size = 40
        ours = two_sweep_local_work(beta=16, list_size=list_size)
        theirs = fk23_local_work(list_size)
        assert theirs > 1000 * ours

    def test_fk23_work_capped(self):
        assert fk23_local_work(10 ** 6, cap_bits=32) == 2 ** 32
