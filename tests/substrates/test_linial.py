"""Tests for Linial's coloring and its oriented variant."""

from __future__ import annotations

import pytest

from repro.coloring import check_proper_coloring
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    orient_low_outdegree,
    random_ids,
    ring_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InstanceError
from repro.substrates import (
    linial_coloring,
    linial_oriented_coloring,
    linial_palette_bound,
    log_star,
)


class TestLinial:
    def test_output_proper(self):
        network = gnp_graph(50, 0.12, seed=31)
        ids = random_ids(network, seed=1, bits=32)
        colors, palette = linial_coloring(network, ids, 2 ** 32)
        assert check_proper_coloring(network, colors) == []
        assert all(0 <= colors[node] < palette for node in network)

    def test_palette_quadratic_in_delta(self):
        network = gnp_graph(60, 0.1, seed=7)
        ids = random_ids(network, seed=2, bits=40)
        _, palette = linial_coloring(network, ids, 2 ** 40)
        assert palette <= linial_palette_bound(network.raw_max_degree())

    def test_rounds_log_star(self):
        network = ring_graph(32)
        ids = random_ids(network, seed=3, bits=48)
        ledger = CostLedger()
        linial_coloring(network, ids, 2 ** 48, ledger=ledger)
        # One round per schedule step plus the initial broadcast; the
        # schedule length is O(log* q) -- generous constant here.
        assert ledger.rounds <= 3 * log_star(2 ** 48) + 3

    def test_noop_when_q_already_small(self):
        network = ring_graph(6)
        ids = sequential_ids(network)
        ledger = CostLedger()
        colors, palette = linial_coloring(network, ids, 6, ledger=ledger)
        assert colors == ids
        assert ledger.rounds == 0

    def test_rejects_out_of_range_initial_colors(self):
        network = ring_graph(4)
        with pytest.raises(InstanceError):
            linial_coloring(network, {node: node for node in network}, 2)


class TestLinialOriented:
    def test_output_proper(self):
        network = gnp_graph(50, 0.15, seed=13)
        graph = orient_low_outdegree(network)
        ids = random_ids(network, seed=4, bits=32)
        colors, palette = linial_oriented_coloring(graph, ids, 2 ** 32)
        assert check_proper_coloring(network, colors) == []

    def test_palette_quadratic_in_beta_not_delta(self):
        # A dense graph with a low-outdegree orientation: the oriented
        # palette must beat the undirected bound when beta << Delta.
        network = gnp_graph(60, 0.4, seed=5)
        graph = orient_low_outdegree(network)
        beta = graph.max_outdegree()
        delta = network.raw_max_degree()
        assert beta < delta  # sanity of the scenario
        ids = random_ids(network, seed=6, bits=40)
        _, palette = linial_oriented_coloring(graph, ids, 2 ** 40)
        assert palette <= linial_palette_bound(beta)

    def test_oriented_on_id_orientation(self):
        network = ring_graph(20)
        graph = orient_by_id(network)
        ids = random_ids(network, seed=9, bits=24)
        colors, _ = linial_oriented_coloring(graph, ids, 2 ** 24)
        assert check_proper_coloring(network, colors) == []
