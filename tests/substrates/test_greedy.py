"""Tests for greedy baselines, the greedy sweep, and color reduction."""

from __future__ import annotations

import pytest

from repro.coloring import (
    check_arbdefective,
    check_proper_coloring,
    random_arbdefective_instance,
    uniform_lists,
    ArbdefectiveInstance,
)
from repro.graphs import (
    complete_graph,
    gnp_graph,
    neighborhood_independence,
    random_ids,
    ring_graph,
    sequential_ids,
    star_graph,
)
from repro.sim import CostLedger, InfeasibleInstanceError, InstanceError
from repro.substrates import (
    greedy_arbdefective_sweep,
    greedy_color_reduction,
    linial_coloring,
    sequential_greedy_arbdefective,
    sequential_greedy_coloring,
    sequential_greedy_defective,
)


class TestSequentialGreedy:
    def test_proper_and_delta_plus_one(self):
        network = gnp_graph(40, 0.15, seed=12)
        colors = sequential_greedy_coloring(network)
        assert check_proper_coloring(network, colors) == []
        assert max(colors.values()) <= network.raw_max_degree()

    def test_clique_uses_exactly_n_colors(self):
        colors = sequential_greedy_coloring(complete_graph(5))
        assert sorted(colors.values()) == [0, 1, 2, 3, 4]

    def test_respects_order(self):
        network = star_graph(2)
        colors = sequential_greedy_coloring(network, order=[1, 2, 0])
        assert colors[1] == 0 and colors[2] == 0 and colors[0] == 1


class TestSequentialDefective:
    def test_earlier_conflicts_bounded(self):
        network = gnp_graph(40, 0.2, seed=5)
        k = 4
        colors = sequential_greedy_defective(network, k)
        order = list(network.nodes)
        position = {node: i for i, node in enumerate(order)}
        for node in network:
            earlier_conflicts = sum(
                1
                for neighbor in network.neighbors(node)
                if position[neighbor] < position[node]
                and colors[neighbor] == colors[node]
            )
            assert earlier_conflicts <= network.degree(node) // k

    def test_claim_41_bound_on_bounded_theta(self):
        # Claim 4.1: at most (2d+1) * theta same-colored neighbors where
        # d = floor(Delta / k) is the arbdefective (out-)defect.
        from repro.graphs import line_graph_of_network

        base = gnp_graph(16, 0.3, seed=9)
        network, _ = line_graph_of_network(base)
        theta = neighborhood_independence(network)
        k = 3
        colors = sequential_greedy_defective(network, k)
        d = network.raw_max_degree() // k
        bound = (2 * d + 1) * theta
        for node in network:
            conflicts = sum(
                1
                for neighbor in network.neighbors(node)
                if colors[neighbor] == colors[node]
            )
            assert conflicts <= bound

    def test_needs_a_color(self):
        with pytest.raises(InstanceError):
            sequential_greedy_defective(ring_graph(4), 0)


class TestSequentialArbdefective:
    def test_out_defect_bounded(self):
        network = gnp_graph(40, 0.2, seed=6)
        k = 4
        colors, orientation = sequential_greedy_arbdefective(network, k)
        for node in network:
            assert len(orientation[node]) <= network.degree(node) // k

    def test_orientation_is_valid_arbdefective_output(self):
        network = gnp_graph(30, 0.2, seed=7)
        k = 3
        colors, orientation = sequential_greedy_arbdefective(network, k)
        d = network.raw_max_degree() // k
        lists, defects = uniform_lists(network.nodes, range(k), d)
        instance = ArbdefectiveInstance(network, lists, defects)
        assert check_arbdefective(instance, colors, orientation) == []


class TestGreedySweep:
    def test_solves_random_slack_instances(self):
        network = gnp_graph(35, 0.15, seed=3)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=4, color_space_size=12
        )
        ids = sequential_ids(network)
        result = greedy_arbdefective_sweep(instance, ids, len(network))
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_rounds_linear_in_q(self):
        network = ring_graph(15)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=5, color_space_size=6
        )
        ids = sequential_ids(network)
        ledger = CostLedger()
        greedy_arbdefective_sweep(instance, ids, len(network), ledger=ledger)
        assert ledger.rounds <= len(network) + 2

    def test_rejects_slack_one_instance(self):
        # A single color with defect 0 on an edge: weight = 1 = deg.
        network = ring_graph(4)
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        ids = sequential_ids(network)
        with pytest.raises(InfeasibleInstanceError):
            greedy_arbdefective_sweep(instance, ids, len(network))

    def test_rejects_improper_initial_coloring(self):
        network = ring_graph(4)
        instance = random_arbdefective_instance(
            network, slack=2.0, seed=1, color_space_size=6
        )
        bad = {node: 0 for node in network}
        with pytest.raises(InstanceError):
            greedy_arbdefective_sweep(instance, bad, 1)


class TestColorReduction:
    def test_reduces_to_delta_plus_one(self):
        network = gnp_graph(40, 0.15, seed=2)
        ids = random_ids(network, seed=3, bits=30)
        colors, q = linial_coloring(network, ids, 2 ** 30)
        target = network.raw_max_degree() + 1
        ledger = CostLedger()
        reduced = greedy_color_reduction(
            network, colors, q, target, ledger=ledger
        )
        assert check_proper_coloring(network, reduced) == []
        assert max(reduced.values()) < target
        assert ledger.rounds <= q - target + 2

    def test_target_validation(self):
        network = ring_graph(5)
        ids = sequential_ids(network)
        with pytest.raises(InstanceError):
            greedy_color_reduction(network, ids, 5, target=1)
