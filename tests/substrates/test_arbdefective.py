"""Tests for the classic arbdefective coloring tool."""

from __future__ import annotations

import pytest

from repro.graphs import gnp_graph, random_ids, ring_graph
from repro.sim import CostLedger, InstanceError
from repro.substrates import arbdefective_coloring, arbdefective_palette


class TestPalette:
    def test_formula(self):
        assert arbdefective_palette(10, 0) == 11
        assert arbdefective_palette(10, 1) == 6
        assert arbdefective_palette(10, 10) == 1
        assert arbdefective_palette(0, 3) == 1


class TestColoring:
    @pytest.mark.parametrize("defect", [0, 1, 2, 4])
    def test_out_defect_bounded(self, defect):
        network = gnp_graph(40, 0.2, seed=defect)
        result = arbdefective_coloring(network, defect)
        for node in network:
            out = result.orientation[node]
            assert len(out) <= defect
            assert all(
                result.colors[target] == result.colors[node]
                for target in out
            )

    def test_palette_respected(self):
        network = gnp_graph(35, 0.25, seed=5)
        defect = 2
        result = arbdefective_coloring(network, defect)
        assert result.color_count() <= arbdefective_palette(
            network.raw_max_degree(), defect
        )

    def test_zero_defect_is_proper(self):
        network = ring_graph(9)
        result = arbdefective_coloring(network, 0)
        for u, v in network.edges():
            assert result.colors[u] != result.colors[v]

    def test_orientation_covers_every_monochromatic_edge(self):
        network = gnp_graph(30, 0.3, seed=7)
        result = arbdefective_coloring(network, 3)
        for u, v in network.edges():
            if result.colors[u] == result.colors[v]:
                assert (
                    v in result.orientation[u]
                ) != (u in result.orientation[v])

    def test_wide_id_space(self):
        network = gnp_graph(30, 0.2, seed=8)
        ids = random_ids(network, seed=8, bits=32)
        ledger = CostLedger()
        result = arbdefective_coloring(network, 2, ids=ids, ledger=ledger)
        # Linial first: rounds ~ O(Delta^2), nowhere near 2^32.
        assert ledger.rounds < 10_000

    def test_negative_defect_rejected(self):
        with pytest.raises(InstanceError):
            arbdefective_coloring(ring_graph(4), -1)
