"""Tests for the polynomial set systems and recoloring schedules."""

from __future__ import annotations

import itertools

import pytest

from repro.substrates import (
    PolynomialFamily,
    choose_defective_step,
    choose_proper_step,
    defective_schedule,
    is_prime,
    next_prime,
    proper_schedule,
)


class TestPrimes:
    def test_is_prime_small(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23}
        for n in range(25):
            assert is_prime(n) == (n in primes)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(8) == 11
        assert next_prime(11) == 11
        assert next_prime(90) == 97


class TestPolynomialFamily:
    def test_capacity_check(self):
        with pytest.raises(ValueError):
            PolynomialFamily(q=1000, m=5, k=1)  # capacity 25

    def test_field_must_be_prime(self):
        with pytest.raises(ValueError):
            PolynomialFamily(q=10, m=4, k=2)

    def test_distinct_indices_distinct_coefficients(self):
        family = PolynomialFamily(q=25, m=5, k=1)
        coefficient_sets = {family.coefficients(i) for i in range(25)}
        assert len(coefficient_sets) == 25

    def test_agreement_bound(self):
        """Two distinct degree-k polynomials agree on at most k points."""
        family = PolynomialFamily(q=49, m=7, k=2)
        for a, b in itertools.combinations(range(20), 2):
            agreements = sum(
                1
                for x in range(7)
                if family.evaluate(a, x) == family.evaluate(b, x)
            )
            assert agreements <= 2

    def test_pair_color_bijective_per_point(self):
        family = PolynomialFamily(q=9, m=3, k=1)
        colors = {family.pair_color(4, x) for x in range(3)}
        assert len(colors) == 3
        assert all(0 <= color < 9 for color in colors)

    def test_index_range_checked(self):
        family = PolynomialFamily(q=9, m=3, k=1)
        with pytest.raises(ValueError):
            family.coefficients(9)


class TestProperStep:
    def test_field_dodges_all_rivals(self):
        step = choose_proper_step(q=10 ** 6, avoid=8)
        assert step is not None
        assert step.m > 8 * step.k
        assert step.palette_size < 10 ** 6

    def test_no_progress_returns_none(self):
        # q already below any reachable palette.
        assert choose_proper_step(q=10, avoid=8) is None

    def test_capacity_sufficient(self):
        step = choose_proper_step(q=10 ** 9, avoid=4)
        assert step.m ** (step.k + 1) >= 10 ** 9


class TestDefectiveStep:
    def test_collision_rate_bound(self):
        step = choose_defective_step(q=10 ** 6, alpha_step=0.25)
        assert step is not None
        assert step.k / step.m <= 0.25

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            choose_defective_step(q=100, alpha_step=0.0)


class TestSchedules:
    def test_proper_schedule_converges_to_quadratic(self):
        for avoid in (2, 5, 16):
            schedule = proper_schedule(q=2 ** 40, avoid=avoid)
            assert schedule, "schedule must not be empty for huge q"
            final = schedule[-1].palette_size
            assert final <= (4 * avoid + 2) ** 2
            # log*-ish length
            assert len(schedule) <= 8

    def test_proper_schedule_chains_palettes(self):
        schedule = proper_schedule(q=2 ** 30, avoid=6)
        current = 2 ** 30
        for step in schedule:
            assert step.q == current
            assert step.palette_size < current
            current = step.palette_size

    def test_defective_schedule_budget_sums_below_alpha(self):
        for alpha in (0.5, 0.25, 0.1):
            schedule = defective_schedule(q=2 ** 40, alpha=alpha)
            assert sum(step.alpha_step for step in schedule) <= alpha + 1e-9

    def test_defective_schedule_final_palette(self):
        schedule = defective_schedule(q=2 ** 40, alpha=0.5)
        assert schedule
        final = schedule[-1].palette_size
        # O(1/alpha^2) with our constants.
        assert final <= (12 / 0.5 + 4) ** 2

    def test_defective_schedule_empty_when_q_small(self):
        assert defective_schedule(q=4, alpha=0.5) == []

    def test_defective_alpha_validation(self):
        with pytest.raises(ValueError):
            defective_schedule(q=100, alpha=0.0)
        with pytest.raises(ValueError):
            defective_schedule(q=100, alpha=1.5)
