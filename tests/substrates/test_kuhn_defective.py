"""Tests for the Lemma 3.4 defective coloring [Kuh09, KS18]."""

from __future__ import annotations

import pytest

from repro.coloring import check_outdegree_defective
from repro.graphs import (
    BidirectedView,
    gnp_graph,
    orient_by_id,
    random_ids,
    ring_graph,
)
from repro.sim import CostLedger, InstanceError
from repro.substrates import (
    defective_palette_bound,
    kuhn_defective_coloring,
    log_star,
)


@pytest.fixture
def setup():
    network = gnp_graph(60, 0.12, seed=21)
    graph = orient_by_id(network)
    ids = random_ids(network, seed=5, bits=36)
    return network, graph, ids, 2 ** 36


class TestOrientedDefect:
    @pytest.mark.parametrize("alpha", [1.0, 0.5, 0.25, 0.1])
    def test_defect_within_alpha_beta(self, setup, alpha):
        network, graph, ids, q = setup
        colors, _ = kuhn_defective_coloring(graph, ids, q, alpha)
        assert check_outdegree_defective(graph, colors, alpha) == []

    def test_palette_quadratic_in_inverse_alpha(self, setup):
        network, graph, ids, q = setup
        for alpha in (0.5, 0.25):
            _, palette = kuhn_defective_coloring(graph, ids, q, alpha)
            assert palette <= defective_palette_bound(alpha)

    def test_rounds_log_star(self, setup):
        network, graph, ids, q = setup
        ledger = CostLedger()
        kuhn_defective_coloring(graph, ids, q, 0.25, ledger=ledger)
        assert ledger.rounds <= 4 * log_star(q) + 4


class TestUndirectedDefect:
    def test_bidirected_view_bounds_all_neighbors(self):
        network = gnp_graph(50, 0.15, seed=33)
        view = BidirectedView(network)
        ids = random_ids(network, seed=8, bits=32)
        alpha = 0.3
        colors, _ = kuhn_defective_coloring(view, ids, 2 ** 32, alpha)
        for node in network:
            conflicts = sum(
                1
                for neighbor in network.neighbors(node)
                if colors[neighbor] == colors[node]
            )
            assert conflicts <= alpha * network.degree(node) or (
                network.degree(node) == 0
            )


class TestValidation:
    def test_alpha_range_checked(self):
        network = ring_graph(5)
        graph = orient_by_id(network)
        ids = {node: node for node in network}
        with pytest.raises(InstanceError):
            kuhn_defective_coloring(graph, ids, 5, alpha=0.0)
        with pytest.raises(InstanceError):
            kuhn_defective_coloring(graph, ids, 5, alpha=1.5)

    def test_initial_colors_range_checked(self):
        network = ring_graph(5)
        graph = orient_by_id(network)
        with pytest.raises(InstanceError):
            kuhn_defective_coloring(
                graph, {node: node for node in network}, 3, alpha=0.5
            )

    def test_small_q_is_noop_with_zero_defect(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        ids = {node: node for node in network}
        colors, palette = kuhn_defective_coloring(graph, ids, 6, alpha=0.9)
        # No shrinking step exists; the (proper) input is returned, which
        # trivially satisfies any defect bound.
        assert colors == ids
        assert check_outdegree_defective(graph, colors, 0.0) == []
