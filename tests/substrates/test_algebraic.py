"""Tests for the shared algebraic recoloring runner."""

from __future__ import annotations

import pytest

from repro.graphs import ring_graph, sequential_ids
from repro.sim import AlgorithmFailure, CostLedger, InstanceError
from repro.substrates import RecoloringStep, run_recoloring
from repro.substrates.cover_free import choose_proper_step


class TestRunRecoloring:
    def test_empty_schedule_is_identity(self):
        network = ring_graph(5)
        ids = sequential_ids(network)
        relevant = {node: network.neighbor_set(node) for node in network}
        ledger = CostLedger()
        colors, palette = run_recoloring(
            network, ids, [], relevant, ledger=ledger
        )
        assert colors == ids
        assert palette == 5
        assert ledger.rounds == 0

    def test_missing_initial_color_rejected(self):
        network = ring_graph(4)
        relevant = {node: network.neighbor_set(node) for node in network}
        step = choose_proper_step(q=10 ** 6, avoid=2)
        with pytest.raises(InstanceError):
            run_recoloring(network, {0: 0}, [step], relevant)

    def test_color_outside_declared_q_fails_loudly(self):
        network = ring_graph(4)
        relevant = {node: network.neighbor_set(node) for node in network}
        step = choose_proper_step(q=100, avoid=2)
        bad_initial = {node: 5000 for node in network}
        with pytest.raises(AlgorithmFailure):
            run_recoloring(network, bad_initial, [step], relevant)

    def test_custom_phase_name(self):
        network = ring_graph(5)
        ids = {node: node * 20 for node in network}
        relevant = {node: network.neighbor_set(node) for node in network}
        step = choose_proper_step(q=100, avoid=2)
        assert step is not None
        ledger = CostLedger()
        run_recoloring(
            network, ids, [step], relevant, ledger=ledger, phase="custom"
        )
        assert ledger.phase_rounds("custom") == ledger.rounds > 0


class TestRecoloringStep:
    def test_family_construction(self):
        step = RecoloringStep(q=25, m=5, k=1)
        family = step.family()
        assert family.palette_size == 25
        assert step.palette_size == 25

    def test_proper_step_none_alpha(self):
        step = RecoloringStep(q=100, m=11, k=1)
        assert step.alpha_step == 0.0
