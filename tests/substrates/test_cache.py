"""Tests for the process-level substrate caches."""

from __future__ import annotations

import pytest

from repro.substrates import (
    PolynomialFamily,
    cache_enabled,
    clear_substrate_cache,
    defective_schedule,
    is_prime,
    next_prime,
    proper_schedule,
    set_cache_enabled,
    shared_family,
)
from repro.substrates import cache
from repro.substrates.cache import (
    CACHE_DIR_ENV,
    CACHE_FILE_VERSION,
    cache_file_path,
    load_from_disk,
    registry,
    restore,
    save_to_disk,
    snapshot,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_substrate_cache()
    yield
    set_cache_enabled(True)
    clear_substrate_cache()


class TestPrimeMemo:
    def test_memoized_matches_raw(self):
        values = list(range(0, 60)) + [97, 98, 121, 7919]
        warm = [is_prime(v) for v in values]
        set_cache_enabled(False)
        raw = [is_prime(v) for v in values]
        assert warm == raw

    def test_next_prime_memoized_matches_raw(self):
        values = [0, 1, 2, 3, 14, 24, 90, 7907]
        warm = [next_prime(v) for v in values]
        again = [next_prime(v) for v in values]
        set_cache_enabled(False)
        raw = [next_prime(v) for v in values]
        assert warm == again == raw


class TestSharedFamily:
    def test_same_parameters_share_one_instance(self):
        assert shared_family(100, 11, 2) is shared_family(100, 11, 2)

    def test_distinct_parameters_get_distinct_instances(self):
        assert shared_family(100, 11, 2) is not shared_family(99, 11, 2)

    def test_disabled_cache_returns_fresh_instances(self):
        set_cache_enabled(False)
        assert shared_family(100, 11, 2) is not shared_family(100, 11, 2)

    def test_shared_instance_evaluates_like_a_fresh_one(self):
        shared = shared_family(50, 7, 2)
        fresh = PolynomialFamily(50, 7, 2)
        for index in range(50):
            assert shared.coefficients(index) == fresh.coefficients(index)
            for x in range(7):
                assert shared.evaluate(index, x) == fresh.evaluate(index, x)

    def test_evaluation_memo_handles_out_of_field_points(self):
        family = PolynomialFamily(50, 7, 2)
        # x and x + m evaluate identically over F_m; the memo key must
        # not collide them with other polynomial indices.
        assert family.evaluate(1, 9) == family.evaluate(1, 2)
        assert family.evaluate(2, 0) == PolynomialFamily(50, 7, 2).evaluate(2, 0)

    def test_step_family_is_shared_when_enabled(self):
        schedule = proper_schedule(2047, 3)
        assert schedule
        assert schedule[0].family() is schedule[0].family()


class TestScheduleMemo:
    def test_proper_schedule_memo_returns_equal_fresh_lists(self):
        first = proper_schedule(2047, 3)
        second = proper_schedule(2047, 3)
        assert first == second
        assert first is not second
        second.append("sentinel")
        assert proper_schedule(2047, 3) == first

    def test_defective_schedule_memo_matches_raw(self):
        warm = defective_schedule(5000, 0.25)
        again = defective_schedule(5000, 0.25)
        set_cache_enabled(False)
        raw = defective_schedule(5000, 0.25)
        assert warm == again == raw

    def test_invalid_alpha_rejected_before_memo(self):
        with pytest.raises(ValueError):
            defective_schedule(100, 0.0)
        with pytest.raises(ValueError):
            defective_schedule(100, 1.5)


class TestSnapshotRestore:
    def test_snapshot_roundtrip_restores_shared_objects(self):
        schedule = proper_schedule(2047, 3)
        family = schedule[0].family()
        family.evaluate(5, 2)
        state = snapshot()
        assert "proper_schedule" in state and "families" in state
        clear_substrate_cache()
        assert schedule[0].family() is not family
        restore(state)
        assert schedule[0].family() is family

    def test_snapshot_is_picklable(self):
        import pickle

        proper_schedule(2047, 3)[0].family().evaluate(3, 1)
        state = pickle.loads(pickle.dumps(snapshot()))
        clear_substrate_cache()
        restore(state)
        assert proper_schedule(2047, 3)

    def test_restore_none_or_empty_is_noop(self):
        restore(None)
        restore({})

    def test_restore_while_disabled_is_noop(self):
        proper_schedule(2047, 3)
        state = snapshot()
        set_cache_enabled(False)
        restore(state)
        assert not registry("proper_schedule")

    def test_set_cache_enabled_reports_previous_state(self):
        assert cache_enabled()
        assert set_cache_enabled(False) is True
        assert not cache_enabled()
        assert set_cache_enabled(True) is False


class TestDiskSpill:
    def test_path_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert cache_file_path() is None
        assert cache_file_path("/explicit/file.pkl") == "/explicit/file.pkl"
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        resolved = cache_file_path()
        assert resolved == str(tmp_path / "substrate_cache.pkl")

    def test_save_and_load_roundtrip(self, tmp_path):
        target = str(tmp_path / "spill" / "substrate_cache.pkl")
        schedule = proper_schedule(2047, 3)
        assert save_to_disk(target) == target
        clear_substrate_cache()
        assert not registry("proper_schedule")
        assert load_from_disk(target)
        assert proper_schedule(2047, 3) == schedule
        assert registry("proper_schedule")

    def test_roundtrip_via_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        proper_schedule(2047, 3)
        written = save_to_disk()
        assert written == str(tmp_path / "substrate_cache.pkl")
        clear_substrate_cache()
        assert load_from_disk()

    def test_save_without_configuration_is_noop(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        proper_schedule(2047, 3)
        assert save_to_disk() is None

    def test_save_empty_registries_writes_nothing(self, tmp_path):
        target = str(tmp_path / "substrate_cache.pkl")
        assert save_to_disk(target) is None
        assert not (tmp_path / "substrate_cache.pkl").exists()

    def test_save_unwritable_destination_degrades(self, tmp_path):
        blocker = tmp_path / "not-a-directory"
        blocker.write_bytes(b"")
        proper_schedule(2047, 3)
        assert save_to_disk(str(blocker / "substrate_cache.pkl")) is None

    def test_load_missing_file_is_cold_start(self, tmp_path):
        assert not load_from_disk(str(tmp_path / "absent.pkl"))

    def test_load_corrupt_file_is_cold_start(self, tmp_path):
        target = tmp_path / "substrate_cache.pkl"
        target.write_bytes(b"definitely not a pickle")
        assert not load_from_disk(str(target))
        assert not registry("proper_schedule")

    def test_load_truncated_file_is_cold_start(self, tmp_path):
        source = str(tmp_path / "substrate_cache.pkl")
        proper_schedule(2047, 3)
        assert save_to_disk(source)
        data = (tmp_path / "substrate_cache.pkl").read_bytes()
        (tmp_path / "substrate_cache.pkl").write_bytes(data[: len(data) // 2])
        clear_substrate_cache()
        assert not load_from_disk(source)

    def test_load_wrong_version_is_cold_start(self, tmp_path):
        import pickle

        target = tmp_path / "substrate_cache.pkl"
        payload = {
            "version": CACHE_FILE_VERSION + 1,
            "registries": {"proper_schedule": {(2047, 3): []}},
        }
        target.write_bytes(pickle.dumps(payload))
        assert not load_from_disk(str(target))
        assert not registry("proper_schedule")

    def test_load_wrong_shape_is_cold_start(self, tmp_path):
        import pickle

        target = tmp_path / "substrate_cache.pkl"
        for payload in (
            ["not", "a", "dict"],
            {"version": CACHE_FILE_VERSION},  # registries missing
            {"version": CACHE_FILE_VERSION, "registries": "nope"},
            {"version": CACHE_FILE_VERSION, "registries": {1: {}}},
            {"version": CACHE_FILE_VERSION,
             "registries": {"families": "nope"}},
            {"version": CACHE_FILE_VERSION, "registries": {}},
        ):
            target.write_bytes(pickle.dumps(payload))
            assert not load_from_disk(str(target))

    def test_disk_spill_disabled_with_cache(self, tmp_path):
        source = str(tmp_path / "substrate_cache.pkl")
        proper_schedule(2047, 3)
        assert save_to_disk(source)
        set_cache_enabled(False)
        assert not load_from_disk(source)
        assert save_to_disk(source) is None


class TestCounters:
    def setup_method(self):
        cache.reset_cache_counters()

    def teardown_method(self):
        cache.reset_cache_counters()

    def test_record_lookup_counts_hits_and_misses(self):
        cache.record_lookup("widgets", False)
        cache.record_lookup("widgets", True)
        cache.record_lookup("widgets", True)
        assert cache.cache_counters() == {
            "widgets": {"hits": 2, "misses": 1}
        }

    def test_counters_are_copies(self):
        cache.record_lookup("widgets", True)
        counters = cache.cache_counters()
        counters["widgets"]["hits"] = 99
        assert cache.cache_counters()["widgets"]["hits"] == 1

    def test_shared_family_counts(self):
        from repro.substrates.cover_free import shared_family

        cache.clear_substrate_cache()
        cache.reset_cache_counters()
        shared_family(9, 3, 1)
        shared_family(9, 3, 1)
        counters = cache.cache_counters()["families"]
        assert counters == {"hits": 1, "misses": 1}

    def test_disabled_cache_counts_all_misses(self):
        from repro.substrates.cover_free import shared_family

        previous = cache.set_cache_enabled(False)
        try:
            cache.reset_cache_counters()
            shared_family(9, 3, 1)
            shared_family(9, 3, 1)
            assert cache.cache_counters()["families"] == {
                "hits": 0, "misses": 2
            }
        finally:
            cache.set_cache_enabled(previous)

    def test_interned_network_counts(self):
        from repro.graphs.generators import star_graph

        cache.clear_substrate_cache()
        cache.reset_cache_counters()
        star_graph(23)
        star_graph(23)
        counters = cache.cache_counters()["networks"]
        assert counters["misses"] == 1 and counters["hits"] == 1

    def test_manifest_carries_counters_and_disk_state(self):
        from repro.obs import collect_manifest

        cache.record_lookup("widgets", True)
        caches = collect_manifest()["caches"]
        assert caches["counters"]["widgets"]["hits"] >= 1
        assert set(caches["disk"]) == {"path", "loaded", "saved"}


class TestDiskState:
    def test_load_marks_state(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        cache.registry("disk_state_probe")["k"] = "v"
        try:
            assert cache.save_to_disk() is not None
            assert cache.disk_state()["saved"] is True
            assert cache.load_from_disk() is True
            state = cache.disk_state()
            assert state["loaded"] is True
            assert state["path"].endswith("substrate_cache.pkl")
        finally:
            cache.registry("disk_state_probe").clear()
