"""Tests for the randomized trial coloring baseline."""

from __future__ import annotations

import math
import random

import pytest

from repro.coloring import check_proper_coloring
from repro.graphs import (
    complete_graph,
    gnp_graph,
    random_bounded_degree_graph,
    ring_graph,
)
from repro.sim import CostLedger, InstanceError
from repro.substrates import (
    randomized_delta_plus_one,
    randomized_list_coloring,
)


class TestValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_delta_plus_one(self, seed):
        network = gnp_graph(50, 0.12, seed=seed)
        result = randomized_delta_plus_one(network, seed=seed)
        assert check_proper_coloring(network, result.colors) == []
        assert max(result.colors.values()) <= network.raw_max_degree()

    def test_clique(self):
        network = complete_graph(10)
        result = randomized_delta_plus_one(network, seed=1)
        assert sorted(result.colors.values()) == list(range(10))

    @pytest.mark.parametrize("seed", range(3))
    def test_list_variant(self, seed):
        network = random_bounded_degree_graph(40, 5, seed=seed)
        rng = random.Random(seed)
        space = network.raw_max_degree() + 4
        lists = {
            node: tuple(
                sorted(rng.sample(range(space), network.degree(node) + 1))
            )
            for node in network
        }
        result = randomized_list_coloring(network, lists, seed=seed)
        assert check_proper_coloring(network, result.colors) == []
        for node in network:
            assert result.colors[node] in lists[node]


class TestRounds:
    def test_logarithmic_rounds(self):
        """O(log n) w.h.p.; assert a generous multiple on seeded runs."""
        for n in (30, 120, 480):
            network = gnp_graph(n, min(0.5, 8.0 / n), seed=n)
            ledger = CostLedger()
            randomized_delta_plus_one(network, seed=n, ledger=ledger)
            assert ledger.rounds <= 20 * math.log2(n) + 20

    def test_reproducible(self):
        network = gnp_graph(30, 0.15, seed=3)
        a = randomized_delta_plus_one(network, seed=9)
        b = randomized_delta_plus_one(network, seed=9)
        assert a.colors == b.colors

    def test_seed_changes_run(self):
        network = gnp_graph(30, 0.15, seed=3)
        a = randomized_delta_plus_one(network, seed=1)
        b = randomized_delta_plus_one(network, seed=2)
        assert a.colors != b.colors


class TestValidation:
    def test_short_lists_rejected(self):
        network = ring_graph(5)
        lists = {node: (0, 1) for node in network}
        with pytest.raises(InstanceError):
            randomized_list_coloring(network, lists, seed=1)
