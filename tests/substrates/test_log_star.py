"""Tests for iterated logarithm helpers."""

from __future__ import annotations

import pytest

from repro.substrates import ceil_log2, log_star, tower


class TestLogStar:
    def test_base_cases(self):
        assert log_star(0) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1

    def test_known_values(self):
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2 ** 65536 if False else 65537) == 5

    def test_monotone(self):
        values = [log_star(x) for x in range(1, 1000)]
        assert values == sorted(values)

    def test_inverse_of_tower(self):
        for height in range(5):
            assert log_star(tower(height)) == height


class TestTower:
    def test_values(self):
        assert tower(0) == 1
        assert tower(1) == 2
        assert tower(2) == 4
        assert tower(3) == 16
        assert tower(4) == 65536

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tower(-1)


class TestCeilLog2:
    def test_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(8) == 3
        assert ceil_log2(9) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_log2(0)
