"""Tests for the distributed local-search defective partition."""

from __future__ import annotations

import pytest

from repro.graphs import (
    complete_graph,
    gnp_graph,
    random_ids,
    ring_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InstanceError
from repro.substrates import distributed_lovasz_partition


def same_class_neighbors(network, colors, node):
    return sum(
        1 for neighbor in network.neighbors(node)
        if colors[neighbor] == colors[node]
    )


class TestGuarantee:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_defect_at_most_deg_over_k(self, k, seed):
        network = gnp_graph(40, 0.3, seed=seed)
        colors = distributed_lovasz_partition(network, k, seed=seed)
        for node in network:
            assert same_class_neighbors(network, colors, node) <= (
                network.degree(node) // k
            )

    def test_clique(self):
        network = complete_graph(12)
        colors = distributed_lovasz_partition(network, 4, seed=7)
        for node in network:
            assert same_class_neighbors(network, colors, node) <= 11 // 4

    def test_matches_sequential_guarantee(self):
        """Same guarantee as the sequential [Lov66] local search."""
        from repro.substrates import lovasz_defective_partition

        network = gnp_graph(30, 0.35, seed=9)
        k = 3
        distributed = distributed_lovasz_partition(network, k, seed=9)
        sequential = lovasz_defective_partition(network, k, seed=9)
        for colors in (distributed, sequential):
            for node in network:
                assert same_class_neighbors(network, colors, node) <= (
                    network.degree(node) // k
                )


class TestProtocolProperties:
    def test_rounds_counted(self):
        network = gnp_graph(30, 0.3, seed=4)
        ledger = CostLedger()
        distributed_lovasz_partition(network, 3, seed=4, ledger=ledger)
        assert 3 <= ledger.rounds <= 2 * network.edge_count() + 4

    def test_custom_sparse_ids(self):
        network = gnp_graph(25, 0.3, seed=5)
        ids = random_ids(network, seed=5, bits=20)
        colors = distributed_lovasz_partition(network, 3, ids=ids, seed=5)
        for node in network:
            assert same_class_neighbors(network, colors, node) <= (
                network.degree(node) // 3
            )

    def test_deterministic(self):
        network = ring_graph(12)
        a = distributed_lovasz_partition(network, 2, seed=3)
        b = distributed_lovasz_partition(network, 2, seed=3)
        assert a == b

    def test_single_class_trivial(self):
        network = ring_graph(6)
        colors = distributed_lovasz_partition(network, 1, seed=1)
        assert set(colors.values()) == {0}

    def test_validation(self):
        with pytest.raises(InstanceError):
            distributed_lovasz_partition(ring_graph(4), 0)
        with pytest.raises(InstanceError):
            distributed_lovasz_partition(
                ring_graph(4), 2, ids={node: 7 for node in range(4)}
            )

    def test_messages_are_small(self):
        network = gnp_graph(25, 0.3, seed=6)
        ledger = CostLedger()
        distributed_lovasz_partition(network, 4, seed=6, ledger=ledger)
        # class (2 bits) + flag + id (<= ~10 bits at n = 25).
        assert ledger.max_message_bits <= 16
