"""The README's code snippets must actually run."""

from __future__ import annotations

import pathlib
import re


def extract_python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_runs(self):
        readme = pathlib.Path(__file__).parent.parent / "README.md"
        blocks = extract_python_blocks(readme.read_text())
        assert blocks, "README must contain a python snippet"
        for block in blocks:
            exec(compile(block, "<README>", "exec"), {})

    def test_package_docstring_snippet_runs(self):
        import repro

        match = re.search(
            r"Quick start::\n\n((?:    .*\n)+)", repro.__doc__
        )
        assert match, "package docstring must contain the quick start"
        code = "\n".join(
            line[4:] for line in match.group(1).splitlines()
        )
        exec(compile(code, "<repro.__doc__>", "exec"), {})


class TestExamplesExist:
    def test_every_readme_example_listed_exists(self):
        root = pathlib.Path(__file__).parent.parent
        readme = (root / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", readme):
            if name in ("setup.py",):
                continue
            assert (root / "examples" / name).exists(), name
