"""The tutorial's code blocks must run, top to bottom."""

from __future__ import annotations

import pathlib
import re

import pytest


def python_blocks():
    doc = pathlib.Path(__file__).parent.parent / "docs" / "tutorial.md"
    return re.findall(r"```python\n(.*?)```", doc.read_text(), re.DOTALL)


def test_tutorial_blocks_run_in_sequence(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the save/load block writes files
    blocks = python_blocks()
    assert len(blocks) >= 6
    namespace = {
        # Section 6 references a user-provided measurement function.
        "run_mine": lambda n, seed: n + seed,
    }
    for index, block in enumerate(blocks):
        exec(compile(block, f"<tutorial:{index}>", "exec"), namespace)
    # Spot-check the state the tutorial builds up.
    assert namespace["ledger"].rounds == 2 * len(namespace["net"]) + 1
    assert namespace["auto"].stats is not None
    assert namespace["edge_colors"]
    assert (tmp_path / "instance.json").exists()
