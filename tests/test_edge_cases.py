"""Edge cases across modules that the mainline tests do not reach."""

from __future__ import annotations

import pytest

from repro.coloring import random_oldc_instance
from repro.core import color_space_reduced_oldc, reduction_depth, two_sweep
from repro.graphs import (
    binary_tree,
    blow_up,
    empty_graph,
    gnp_graph,
    grid_graph,
    orient_by_id,
    path_graph,
    sequential_ids,
)
from repro.sim import Message


class TestGeneratorEdges:
    def test_grid_single_row(self):
        network = grid_graph(1, 6)
        assert network.edge_count() == 5

    def test_binary_tree_depth_zero(self):
        network = binary_tree(0)
        assert len(network) == 1
        assert network.edge_count() == 0

    def test_blow_up_of_edgeless(self):
        blown = blow_up(empty_graph(3), 4)
        assert len(blown) == 12
        assert blown.edge_count() == 0

    def test_blow_up_factor_one_is_isomorphic(self):
        base = gnp_graph(10, 0.3, seed=1)
        blown = blow_up(base, 1)
        assert len(blown) == len(base)
        assert blown.edge_count() == base.edge_count()


class TestMessageSemantics:
    def test_bits_do_not_affect_equality(self):
        a = Message("x", "y", "t", payload=1, bits=3)
        b = Message("x", "y", "t", payload=1, bits=99)
        assert a == b

    def test_payload_affects_equality(self):
        a = Message("x", "y", "t", payload=1)
        b = Message("x", "y", "t", payload=2)
        assert a != b


class TestReductionDepthEdges:
    def test_trivial_color_spaces(self):
        assert reduction_depth(1, 4) == 1
        assert reduction_depth(2, 4) == 1

    def test_lambda_two(self):
        assert reduction_depth(8, 2) == 3  # 8 -> 4 -> 2

    def test_reduction_with_lambda_two_end_to_end(self):
        network = gnp_graph(20, 0.2, seed=2)
        graph = orient_by_id(network)
        kappa, lam = 2.5, 2
        depth = reduction_depth(16, lam)
        import random as rnd

        rng = rnd.Random(0)
        size = 8
        need = kappa ** depth
        lists, defects = {}, {}
        for node in graph.nodes:
            d = int(need * graph.beta(node) / size) + 1
            colors = tuple(sorted(rng.sample(range(16), size)))
            lists[node] = colors
            defects[node] = {color: d for color in colors}
        from repro.coloring import OLDCInstance, check_oldc

        instance = OLDCInstance(graph, lists, defects, 16)

        def base_solver(sub, initial, q, ledger):
            restricted = {n: initial[n] for n in sub.graph.nodes}
            return two_sweep(
                sub, restricted, q, 2, ledger=ledger, check=False
            ).colors

        colors = color_space_reduced_oldc(
            instance, sequential_ids(network), len(network),
            base_solver, kappa, lam,
        )
        assert check_oldc(instance, colors) == []


class TestTinyGraphs:
    def test_two_sweep_on_single_edge(self):
        network = path_graph(2)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=1, seed=1)
        result = two_sweep(instance, sequential_ids(network), 2, 1)
        assert len(result.colors) == 2

    def test_two_sweep_on_single_node(self):
        network = empty_graph(1)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=1, seed=2)
        result = two_sweep(instance, sequential_ids(network), 1, 1)
        assert len(result.colors) == 1

    def test_recursion_on_single_node(self):
        from repro.coloring import ArbdefectiveInstance
        from repro.core import theta_recursive_arbdefective

        network = empty_graph(1)
        instance = ArbdefectiveInstance(network, {0: (5,)}, {0: {5: 0}})
        result = theta_recursive_arbdefective(instance, theta=1)
        assert result.colors == {0: 5}


class TestBaselineDefectOne:
    def test_defect_one_uses_full_palette(self):
        """defect = 1 gives floor(d/2) = 0 per sweep: proper per sweep."""
        from repro.graphs import sequential_ids as ids
        from repro.substrates import two_sweep_defective_baseline

        network = gnp_graph(20, 0.25, seed=3)
        graph = orient_by_id(network)
        result = two_sweep_defective_baseline(
            graph, ids(network), len(network), 1
        )
        for node in graph.nodes:
            conflicts = sum(
                1 for u in graph.out_neighbors(node)
                if result.colors[u] == result.colors[node]
            )
            assert conflicts <= 1
