"""Tests for Algorithm 1 (Two-Sweep) -- Theorem 1.1 with epsilon = 0."""

from __future__ import annotations

import pytest

from repro.coloring import (
    OLDCInstance,
    check_oldc,
    choose_p,
    random_nonuniform_oldc_instance,
    random_oldc_instance,
    uniform_lists,
)
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    orient_low_outdegree,
    orient_random,
    path_graph,
    ring_graph,
    sequential_ids,
    star_graph,
)
from repro.sim import (
    CongestModel,
    CostLedger,
    InfeasibleInstanceError,
    InstanceError,
)
from repro.core import two_sweep

import random


def run_and_check(instance, initial, q, p, **kwargs):
    ledger = CostLedger()
    result = two_sweep(instance, initial, q, p, ledger=ledger, **kwargs)
    violations = check_oldc(instance, result.colors)
    assert violations == [], violations[:3]
    return result, ledger


class TestValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_uniform_instances(self, seed):
        network = gnp_graph(35, 0.15, seed=seed)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=3, seed=seed)
        run_and_check(instance, sequential_ids(network), len(network), 3)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_nonuniform_instances(self, seed):
        network = gnp_graph(30, 0.2, seed=100 + seed)
        graph = orient_by_id(network)
        instance = random_nonuniform_oldc_instance(graph, p=3, seed=seed)
        run_and_check(instance, sequential_ids(network), len(network), 3)

    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_various_p(self, p):
        network = gnp_graph(25, 0.2, seed=50)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=p, seed=p)
        run_and_check(instance, sequential_ids(network), len(network), p)

    def test_random_orientation(self):
        network = gnp_graph(30, 0.2, seed=51)
        graph = orient_random(network, random.Random(9))
        instance = random_oldc_instance(graph, p=3, seed=1)
        run_and_check(instance, sequential_ids(network), len(network), 3)

    def test_low_outdegree_orientation(self):
        network = gnp_graph(30, 0.3, seed=52)
        graph = orient_low_outdegree(network)
        instance = random_oldc_instance(graph, p=2, seed=2)
        run_and_check(instance, sequential_ids(network), len(network), 2)

    def test_proper_list_coloring_via_zero_defects(self):
        """Section 1.1: lists of size beta^2 + beta + 1 and p = beta + 1
        solve proper list coloring on bounded-outdegree graphs."""
        network = gnp_graph(30, 0.25, seed=53)
        graph = orient_low_outdegree(network)
        beta = graph.max_outdegree()
        p = beta + 1
        size = beta * beta + beta + 1
        rng = random.Random(3)
        space = 3 * size
        lists = {
            node: tuple(sorted(rng.sample(range(space), size)))
            for node in graph.nodes
        }
        defects = {
            node: {color: 0 for color in lists[node]} for node in graph.nodes
        }
        instance = OLDCInstance(graph, lists, defects, space)
        result, _ = run_and_check(
            instance, sequential_ids(network), len(network), p
        )
        # Zero defects on an orientation of all edges = proper coloring.
        for u, v in network.edges():
            assert result.colors[u] != result.colors[v]


class TestRounds:
    def test_rounds_linear_in_q(self):
        network = ring_graph(20)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=4)
        _, ledger = run_and_check(
            instance, sequential_ids(network), len(network), 2
        )
        assert ledger.rounds <= 2 * len(network) + 2

    def test_fewer_initial_colors_fewer_rounds(self):
        network = path_graph(30)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=5)
        # A path is properly 2-colorable by parity.
        coloring = {node: node % 2 for node in network}
        _, ledger = run_and_check(instance, coloring, 2, 2)
        assert ledger.rounds <= 6


class TestMessages:
    def test_sublist_size_bounded_by_p(self):
        network = gnp_graph(25, 0.2, seed=54)
        graph = orient_by_id(network)
        p = 3
        instance = random_oldc_instance(graph, p=p, seed=6)
        trace = []
        two_sweep(
            instance, sequential_ids(network), len(network), p, trace=trace
        )
        for event in trace:
            if event["phase"] == 1:
                assert len(event["sublist"]) <= p

    def test_congest_with_reasonable_budget(self):
        network = gnp_graph(25, 0.2, seed=55)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=7)
        bandwidth = CongestModel(n=len(network), factor=8)
        result = two_sweep(
            instance, sequential_ids(network), len(network), 2,
            bandwidth=bandwidth,
        )
        assert check_oldc(instance, result.colors) == []


class TestPreconditions:
    def test_infeasible_instance_rejected(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            two_sweep(instance, sequential_ids(network), 6, 1)

    def test_improper_initial_coloring_rejected(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=8)
        bad = {node: 0 for node in network}
        with pytest.raises(InstanceError):
            two_sweep(instance, bad, 1, 2)

    def test_initial_color_out_of_range_rejected(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=9)
        with pytest.raises(InstanceError):
            two_sweep(instance, sequential_ids(network), 3, 2)

    def test_p_must_be_positive(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=10)
        with pytest.raises(InstanceError):
            two_sweep(instance, sequential_ids(network), 6, 0)

    def test_outdegree_zero_nodes_exempt(self):
        # A star oriented towards the center: leaves have outdegree 1,
        # the center 0.  The center may carry a tiny list.
        network = star_graph(4)
        graph = orient_by_id(network)  # leaves -> center 0
        lists = {0: (5,)}
        defects = {0: {5: 0}}
        for leaf in range(1, 5):
            lists[leaf] = (0, 1, 2, 3)
            defects[leaf] = {color: 1 for color in lists[leaf]}
        instance = OLDCInstance(graph, lists, defects, 8)
        result = two_sweep(instance, sequential_ids(network), 5, 2)
        assert check_oldc(instance, result.colors) == []

    def test_check_false_runs_anyway(self):
        network = path_graph(4)
        graph = orient_by_id(network)
        # Huge defects: trivially satisfiable even though Eq.(2) with
        # p = 1 and list size 2 fails the formal check at some node.
        lists, defects = uniform_lists(network.nodes, (0, 1), 10)
        instance = OLDCInstance(graph, lists, defects)
        result = two_sweep(
            instance, sequential_ids(network), 4, 1, check=False
        )
        assert check_oldc(instance, result.colors) == []


class TestChosenP:
    def test_choose_p_integration(self):
        network = gnp_graph(30, 0.15, seed=56)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=3, seed=11)
        p = choose_p(instance)
        assert p is not None
        run_and_check(instance, sequential_ids(network), len(network), p)


class TestTrace:
    def test_trace_records_both_phases(self):
        network = path_graph(5)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=12)
        trace = []
        two_sweep(
            instance, sequential_ids(network), len(network), 2, trace=trace
        )
        phases = {event["phase"] for event in trace}
        assert phases == {1, 2}
        nodes_traced = {event["node"] for event in trace}
        assert nodes_traced == set(network.nodes)

    def test_phase2_choice_satisfies_eq5(self):
        network = gnp_graph(20, 0.25, seed=57)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=3, seed=13)
        trace = []
        two_sweep(
            instance, sequential_ids(network), len(network), 3, trace=trace
        )
        for event in trace:
            if event["phase"] == 2:
                node, color = event["node"], event["color"]
                k, r = event["k"][color], event["r"][color]
                assert k + r <= instance.defect(node, color)


class TestLocalWork:
    def test_stats_present(self):
        network = gnp_graph(25, 0.2, seed=91)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=91)
        result = two_sweep(
            instance, sequential_ids(network), len(network), 2
        )
        assert result.stats["max_local_work"] > 0
        assert result.stats["total_local_work"] >= result.stats[
            "max_local_work"
        ]

    def test_near_linear_in_beta_times_list(self):
        """Section 1.1: per-node computation ~ Delta * Lambda, not
        exponential -- the instrumented counter must stay within a small
        factor of beta * p + |L| log |L| per node."""
        import math

        network = gnp_graph(60, 0.25, seed=92)
        graph = orient_by_id(network)
        p = 4
        instance = random_oldc_instance(graph, p=p, seed=92)
        result = two_sweep(
            instance, sequential_ids(network), len(network), p
        )
        size = p * p
        beta = graph.max_outdegree()
        bound = 4 * (beta * (p + 1) + size * math.ceil(math.log2(size)))
        assert result.stats["max_local_work"] <= bound
