"""Tests for the shared partial-coloring bookkeeping."""

from __future__ import annotations

import pytest

from repro.coloring import ArbdefectiveInstance, uniform_lists
from repro.graphs import path_graph, ring_graph, star_graph
from repro.sim import AlgorithmFailure
from repro.core import PartialColoring


def make_instance(network, colors=(0, 1), defect=2):
    lists, defects = uniform_lists(network.nodes, colors, defect)
    return ArbdefectiveInstance(network, lists, defects)


class TestConflictTracking:
    def test_commit_updates_conflicts(self):
        network = star_graph(3)
        partial = PartialColoring(make_instance(network))
        partial.commit({1: 0, 2: 1})
        assert partial.conflicts(0, 0) == 1
        assert partial.conflicts(0, 1) == 1
        assert partial.colored_neighbor_count(0) == 2
        assert partial.colored_neighbor_count(3) == 0

    def test_residual_defect(self):
        network = star_graph(2)
        partial = PartialColoring(make_instance(network, defect=1))
        partial.commit({1: 0, 2: 0})
        assert partial.residual_defect(0, 0) == 1 - 2
        assert partial.residual_defect(0, 1) == 1

    def test_residual_weight_drops_exhausted_colors(self):
        network = star_graph(2)
        partial = PartialColoring(make_instance(network, defect=1))
        partial.commit({1: 0, 2: 0})
        # Color 0 is exhausted (residual -1); only color 1 contributes.
        assert partial.residual_weight(0) == 2

    def test_double_commit_rejected(self):
        network = path_graph(2)
        partial = PartialColoring(make_instance(network))
        partial.commit({0: 0})
        with pytest.raises(AlgorithmFailure):
            partial.commit({0: 1})


class TestResidualInstance:
    def test_colored_nodes_excluded(self):
        network = ring_graph(5)
        partial = PartialColoring(make_instance(network))
        partial.commit({0: 0})
        sub = partial.residual_instance([0, 1, 2])
        assert set(sub.network.nodes) == {1, 2}

    def test_defects_reduced_and_lists_filtered(self):
        network = star_graph(2)
        partial = PartialColoring(make_instance(network, defect=1))
        partial.commit({1: 0, 2: 0})
        sub = partial.residual_instance([0])
        assert sub.lists[0] == (1,)
        assert sub.defects[0] == {1: 1}

    def test_custom_lists_respected(self):
        network = path_graph(3)
        partial = PartialColoring(make_instance(network, colors=(0, 1, 2)))
        sub = partial.residual_instance([0, 2], lists={0: (2,), 2: (0, 1)})
        assert sub.lists[0] == (2,)
        assert sub.lists[2] == (0, 1)


class TestOrientation:
    def test_cross_edges_point_to_earlier(self):
        network = path_graph(3)
        partial = PartialColoring(make_instance(network))
        partial.commit({0: 0})
        partial.commit({1: 0})
        assert partial.orientation[1] == (0,)
        assert partial.orientation[0] == ()

    def test_inner_orientation_preserved(self):
        network = path_graph(3)
        partial = PartialColoring(make_instance(network))
        partial.commit({0: 0, 1: 0}, inner_orientation={1: (0,), 0: ()})
        assert partial.orientation[1] == (0,)

    def test_different_colors_not_oriented(self):
        network = path_graph(2)
        partial = PartialColoring(make_instance(network))
        partial.commit({0: 0})
        partial.commit({1: 1})
        assert partial.orientation[1] == ()


class TestCompleteness:
    def test_require_complete(self):
        network = path_graph(2)
        partial = PartialColoring(make_instance(network))
        with pytest.raises(AlgorithmFailure):
            partial.require_complete("test")
        partial.commit({0: 0, 1: 1})
        partial.require_complete("test")

    def test_uncolored_listing(self):
        network = path_graph(3)
        partial = PartialColoring(make_instance(network))
        partial.commit({1: 0})
        assert set(partial.uncolored()) == {0, 2}
