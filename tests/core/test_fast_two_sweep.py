"""Tests for Algorithm 2 (Fast-Two-Sweep) -- Theorem 1.1 with epsilon > 0."""

from __future__ import annotations

import pytest

from repro.coloring import (
    OLDCInstance,
    check_oldc,
    random_oldc_instance,
    uniform_lists,
)
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    random_ids,
    ring_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InfeasibleInstanceError, InstanceError
from repro.substrates import log_star
from repro.core import fast_two_sweep, two_sweep


class TestValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances_large_q(self, seed):
        """With a huge ID space the defective-coloring path must engage."""
        network = gnp_graph(45, 0.15, seed=seed)
        graph = orient_by_id(network)
        instance = random_oldc_instance(
            graph, p=2, seed=seed, epsilon=0.5
        )
        ids = random_ids(network, seed=seed, bits=36)
        ledger = CostLedger()
        result = fast_two_sweep(
            instance, ids, 2 ** 36, 2, 0.5, ledger=ledger
        )
        assert check_oldc(instance, result.colors) == []
        assert ledger.phase_rounds("fast-two-sweep-defective") > 0

    @pytest.mark.parametrize("epsilon", [0.25, 0.5, 1.0])
    def test_epsilon_values(self, epsilon):
        network = gnp_graph(35, 0.2, seed=60)
        graph = orient_by_id(network)
        instance = random_oldc_instance(
            graph, p=2, seed=1, epsilon=epsilon
        )
        ids = random_ids(network, seed=2, bits=32)
        result = fast_two_sweep(instance, ids, 2 ** 32, 2, epsilon)
        assert check_oldc(instance, result.colors) == []

    def test_epsilon_zero_equals_plain_two_sweep(self):
        network = ring_graph(10)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=3)
        ids = sequential_ids(network)
        a = fast_two_sweep(instance, ids, len(network), 2, 0.0)
        b = two_sweep(instance, ids, len(network), 2)
        assert a.colors == b.colors


class TestRoundBound:
    def test_rounds_independent_of_q(self):
        """Theorem 1.1: rounds O((p/eps)^2 + log* q), not O(q)."""
        network = gnp_graph(40, 0.15, seed=61)
        graph = orient_by_id(network)
        p, epsilon = 2, 0.5
        instance = random_oldc_instance(
            graph, p=p, seed=4, epsilon=epsilon
        )
        q = 2 ** 48
        ids = random_ids(network, seed=5, bits=48)
        ledger = CostLedger()
        fast_two_sweep(instance, ids, q, p, epsilon, ledger=ledger)
        # Generous constant; the point is "nowhere near q = 2^48".
        bound = 40 * ((p / epsilon) ** 2 + log_star(q)) + 40
        assert ledger.rounds <= bound

    def test_small_q_takes_plain_sweep_branch(self):
        network = ring_graph(8)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=6, epsilon=0.5)
        ids = sequential_ids(network)
        ledger = CostLedger()
        fast_two_sweep(instance, ids, len(network), 2, 0.5, ledger=ledger)
        assert ledger.phase_rounds("fast-two-sweep-defective") == 0
        assert ledger.rounds <= 2 * len(network) + 2


class TestPreconditions:
    def test_eq7_violation_rejected(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        # Satisfies Eq.(2) for p=2 exactly but not the (1+eps) version:
        # weight = 4+1 = 5 > 2*beta(=2)*... pick tight defects.
        lists, defects = uniform_lists(network.nodes, (0, 1), 2)
        # weight = 6 > 2 * 2 = 4 (Eq.2, p=2), but 6 <= (1+1.0) * 2 * 2 = 8.
        instance = OLDCInstance(graph, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            fast_two_sweep(
                instance, sequential_ids(network), 6, 2, 1.0
            )

    def test_negative_epsilon_rejected(self):
        network = ring_graph(6)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=7)
        with pytest.raises(InstanceError):
            fast_two_sweep(
                instance, sequential_ids(network), 6, 2, -0.5
            )

    def test_defect_reduction_never_breaks_validity(self):
        """End-to-end: the floor-based reduction still meets the ORIGINAL
        defect bounds (the whole point of Algorithm 2's bookkeeping)."""
        for seed in range(4):
            network = gnp_graph(40, 0.2, seed=70 + seed)
            graph = orient_by_id(network)
            instance = random_oldc_instance(
                graph, p=3, seed=seed, epsilon=1.0, jitter=False
            )
            ids = random_ids(network, seed=seed, bits=32)
            result = fast_two_sweep(instance, ids, 2 ** 32, 3, 1.0)
            assert check_oldc(instance, result.colors) == []


class TestMinimalSlackEpsilon:
    def test_boundary_eps_instances_solved_with_wide_ids(self):
        """Minimal Eq. (7) instances through the full Algorithm 2 path
        (defective coloring engaged by a 2^32 identifier space)."""
        from repro.coloring import minimal_slack_oldc_instance

        for seed in range(3):
            network = gnp_graph(35, 0.2, seed=80 + seed)
            graph = orient_by_id(network)
            instance = minimal_slack_oldc_instance(graph, p=2, epsilon=0.5)
            ids = random_ids(network, seed=seed, bits=32)
            result = fast_two_sweep(instance, ids, 2 ** 32, 2, 0.5)
            assert check_oldc(instance, result.colors) == []

    def test_stats_propagated(self):
        network = gnp_graph(30, 0.2, seed=85)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=85, epsilon=0.5)
        ids = random_ids(network, seed=85, bits=32)
        result = fast_two_sweep(instance, ids, 2 ** 32, 2, 0.5)
        assert result.stats["max_local_work"] > 0
