"""Tests for Theorem 1.3 ((deg+1)-list coloring in CONGEST)."""

from __future__ import annotations

import math
import random

import pytest

from repro.coloring import check_proper_coloring
from repro.graphs import (
    gnp_graph,
    random_bounded_degree_graph,
    random_ids,
    ring_graph,
    sequential_ids,
)
from repro.sim import CongestModel, CostLedger, InstanceError
from repro.core import (
    deg_plus_one_list_coloring,
    delta_plus_one_coloring,
    linial_reduction_baseline,
)


def random_lists(network, seed, extra=2):
    rng = random.Random(seed)
    space = network.raw_max_degree() + 1 + extra
    lists = {
        node: tuple(
            sorted(rng.sample(range(space), network.degree(node) + 1))
        )
        for node in network
    }
    return lists, space


class TestDegPlusOneLists:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity_and_list_membership(self, seed):
        network = random_bounded_degree_graph(25, 4, seed=seed)
        lists, space = random_lists(network, seed)
        result = deg_plus_one_list_coloring(
            network, lists, color_space_size=space
        )
        assert check_proper_coloring(network, result.colors) == []
        for node in network:
            assert result.colors[node] in lists[node]

    def test_short_list_rejected(self):
        network = ring_graph(5)
        lists = {node: (0, 1) for node in network}  # need deg+1 = 3
        with pytest.raises(InstanceError):
            deg_plus_one_list_coloring(network, lists)

    def test_congest_budget_respected(self):
        network = random_bounded_degree_graph(20, 4, seed=7)
        lists, space = random_lists(network, 7)
        bits_c = max(1, math.ceil(math.log2(space)))
        bandwidth = CongestModel(n=len(network), factor=8,
                                 extra_bits=bits_c)
        result = deg_plus_one_list_coloring(
            network, lists, color_space_size=space, bandwidth=bandwidth
        )
        assert check_proper_coloring(network, result.colors) == []


class TestDeltaPlusOne:
    def test_palette_within_delta_plus_one(self):
        network = random_bounded_degree_graph(25, 4, seed=9)
        result = delta_plus_one_coloring(network)
        assert check_proper_coloring(network, result.colors) == []
        assert max(result.colors.values()) <= network.raw_max_degree()

    def test_with_sparse_id_space(self):
        network = random_bounded_degree_graph(20, 3, seed=10)
        ids = random_ids(network, seed=2, bits=24)
        result = delta_plus_one_coloring(network, ids=ids)
        assert check_proper_coloring(network, result.colors) == []


class TestBaseline:
    def test_baseline_valid(self):
        network = gnp_graph(40, 0.12, seed=11)
        result = linial_reduction_baseline(network)
        assert check_proper_coloring(network, result.colors) == []
        assert max(result.colors.values()) <= network.raw_max_degree()

    def test_baseline_rounds_quadratic_in_delta(self):
        network = gnp_graph(40, 0.12, seed=12)
        ledger = CostLedger()
        linial_reduction_baseline(network, ledger=ledger)
        delta = network.raw_max_degree()
        assert ledger.rounds <= (4 * delta + 2) ** 2 + 20
