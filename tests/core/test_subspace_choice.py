"""Tests for Lemma 4.5 (subspace choice for arbdefective instances)."""

from __future__ import annotations

import math

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    check_arbdefective,
    check_list_defective,
    random_arbdefective_instance,
)
from repro.graphs import gnp_graph, sequential_ids
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import (
    build_residual_instance,
    build_subspace_instance,
    solve_arbdefective_base,
    subspace_reduced_arbdefective,
)


def make_instance(seed, slack, color_space=36):
    network = gnp_graph(30, 0.2, seed=seed)
    return random_arbdefective_instance(
        network, slack=slack, seed=seed, color_space_size=color_space
    ), network


class TestSubspaceInstanceConstruction:
    def test_choice_instance_has_sigma_slack(self):
        instance, network = make_instance(seed=1, slack=8.0)
        choice, block_size = build_subspace_instance(instance, p=6, sigma=4.0)
        # Eq.(19)-with-floor must yield a P_D(sigma, p) instance.
        assert choice.has_slack(4.0)
        assert choice.color_space_size == 6
        assert block_size == 6

    def test_choice_lists_only_nonempty_blocks(self):
        instance, network = make_instance(seed=2, slack=8.0)
        choice, block_size = build_subspace_instance(instance, p=6, sigma=4.0)
        for node in network:
            blocks_with_mass = {
                color // block_size for color in instance.lists[node]
            }
            assert set(choice.lists[node]) == blocks_with_mass

    def test_residual_slack_lower_bound(self):
        """W_{v,i} >= d_{v,i} * W_v / (sigma * deg) -- the floor fix."""
        instance, network = make_instance(seed=3, slack=8.0)
        sigma = 4.0
        choice, block_size = build_subspace_instance(instance, p=6,
                                                     sigma=sigma)
        for node in network:
            degree = network.degree(node)
            if degree == 0:
                continue
            total = instance.weight(node)
            for block in choice.lists[node]:
                mass = sum(
                    instance.defects[node][color] + 1
                    for color in instance.lists[node]
                    if color // block_size == block
                )
                allocated = choice.defects[node][block]
                assert mass * sigma * degree >= allocated * total


class TestResidualConstruction:
    def test_residual_drops_cross_block_edges(self):
        instance, network = make_instance(seed=4, slack=8.0)
        choice, block_size = build_subspace_instance(instance, p=6, sigma=4.0)
        # Fake block choice: parity of node id.
        chosen = {node: node % 2 for node in network}
        residual = build_residual_instance(instance, chosen, block_size)
        for u, v in residual.network.edges():
            assert chosen[u] == chosen[v]

    def test_residual_colors_renumbered(self):
        instance, network = make_instance(seed=5, slack=8.0)
        _, block_size = build_subspace_instance(instance, p=6, sigma=4.0)
        chosen = {node: 1 for node in network}
        residual = build_residual_instance(instance, chosen, block_size)
        for node in network:
            for color in residual.lists[node]:
                assert 0 <= color < block_size
                original = color + block_size
                assert original in instance.lists[node]


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity(self, seed):
        """Drive Lemma 4.5 in isolation: the subspace choice is solved by
        the exact brute-force P_D solver, the residual by the universal
        base solver -- on a small graph where both are fast."""
        from repro.coloring import ColoringResult
        from repro.graphs import ring_graph
        from repro.substrates import solve_list_defective_bruteforce

        network = ring_graph(10)
        instance = random_arbdefective_instance(
            network, slack=10.0, seed=seed, color_space_size=36
        )
        ids = sequential_ids(network)

        def defective_solver(pd_instance, ledger):
            colors = solve_list_defective_bruteforce(pd_instance)
            assert colors is not None, "choice instance must be solvable"
            assert check_list_defective(pd_instance, colors) == []
            return ColoringResult(colors=colors)

        def residual_solver(sub, ledger):
            return solve_arbdefective_base(
                sub, {n: ids[n] for n in sub.network}, len(network),
                ledger=ledger,
            )

        result = subspace_reduced_arbdefective(
            instance, p=6, sigma=5.0,
            defective_solver=defective_solver,
            residual_solver=residual_solver,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_sigma_slack_required(self):
        instance, network = make_instance(seed=30, slack=1.5)
        with pytest.raises(InfeasibleInstanceError):
            subspace_reduced_arbdefective(
                instance, p=6, sigma=5.0,
                defective_solver=lambda inst, led: None,
                residual_solver=lambda inst, led: None,
            )
