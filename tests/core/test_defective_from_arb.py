"""Tests for Theorem 1.4 (Section 4.1): defective via arbdefective."""

from __future__ import annotations

import math

import pytest

from repro.coloring import (
    ListDefectiveInstance,
    check_list_defective,
    random_defective_instance,
    uniform_lists,
)
from repro.graphs import (
    gnp_graph,
    line_graph_of_network,
    neighborhood_independence,
    ring_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import (
    defective_from_arbdefective,
    solve_arbdefective_base,
    theorem_14_slack,
)


def base_arb_solver(sub, sub_initial, sub_q, ledger):
    return solve_arbdefective_base(sub, sub_initial, sub_q, ledger=ledger)


def bounded_theta_graph(seed):
    base = gnp_graph(14, 0.3, seed=seed)
    network, _ = line_graph_of_network(base)
    return network, neighborhood_independence(network)


class TestSlackFormula:
    def test_matches_eq9(self):
        assert theorem_14_slack(theta=1, max_degree=8, s=1.0) == (
            21.0 * (math.ceil(math.log2(8)) + 1)
        )

    def test_scales_with_theta_and_s(self):
        one = theorem_14_slack(1, 16, 1.0)
        assert theorem_14_slack(3, 16, 1.0) == 3 * one
        assert theorem_14_slack(1, 16, 2.0) == 2 * one


class TestValidity:
    @pytest.mark.parametrize("seed", range(3))
    def test_line_graphs(self, seed):
        network, theta = bounded_theta_graph(seed)
        need = theorem_14_slack(theta, network.max_degree(), 1.0)
        instance = random_defective_instance(
            network, slack=need, seed=seed, color_space_size=32
        )
        ids = sequential_ids(network)
        # validate=True re-checks Lemma 4.3 internally and raises on any
        # violation; no exception = the theorem's guarantee held.
        result = defective_from_arbdefective(
            instance, theta, s=1.0, arb_solver=base_arb_solver,
            initial_colors=ids, q=len(network),
        )
        assert check_list_defective(instance, result.colors) == []

    def test_free_color_peel_path(self):
        # Defects >= deg everywhere: everyone is peeled up front.
        network = ring_graph(6)
        lists, defects = uniform_lists(network.nodes, tuple(range(200)), 2)
        instance = ListDefectiveInstance(network, lists, defects)
        ids = sequential_ids(network)
        ledger = CostLedger()
        result = defective_from_arbdefective(
            instance, theta=2, s=1.0, arb_solver=base_arb_solver,
            initial_colors=ids, q=6, ledger=ledger,
        )
        assert check_list_defective(instance, result.colors) == []

    def test_sub_instances_meet_eq13(self):
        """Every instance handed to the P_A solver has slack above s,
        on an instance engineered to have no free colors (so the peel
        shortcut cannot swallow all the work)."""
        network, theta = bounded_theta_graph(7)
        need = theorem_14_slack(theta, network.max_degree(), 1.0)
        # Per-color defect deg(v) - 1 (never free); list size just above
        # the Eq. (9) slack requirement.
        size = int(need) + 2
        space = 2 * size
        lists = {}
        defects = {}
        for node in network:
            degree = max(1, network.degree(node))
            lists[node] = tuple(range(size))
            defects[node] = {
                color: max(0, degree - 1) for color in range(size)
            }
        instance = ListDefectiveInstance(network, lists, defects, space)
        assert instance.has_slack(need)
        seen = []

        def recorder(sub, sub_initial, sub_q, ledger):
            seen.append(sub)
            return base_arb_solver(sub, sub_initial, sub_q, ledger)

        defective_from_arbdefective(
            instance, theta, s=1.0, arb_solver=recorder,
            initial_colors=sequential_ids(network), q=len(network),
        )
        assert seen
        for sub in seen:
            assert sub.has_slack(1.0)
            # Uniform per-iteration defects d_i = 2^i - 1.
            per_node = {
                frozenset(sub.defects[node].values()) for node in sub.network
            }
            assert all(len(values) <= 1 for values in per_node)

    def test_iteration_count_bounded(self):
        network, theta = bounded_theta_graph(9)
        need = theorem_14_slack(theta, network.max_degree(), 1.0)
        instance = random_defective_instance(
            network, slack=need, seed=9, color_space_size=32
        )
        calls = []

        def counter(sub, sub_initial, sub_q, ledger):
            calls.append(len(sub.network))
            return base_arb_solver(sub, sub_initial, sub_q, ledger)

        defective_from_arbdefective(
            instance, theta, s=1.0, arb_solver=counter,
            initial_colors=sequential_ids(network), q=len(network),
        )
        assert len(calls) <= math.ceil(
            math.log2(network.max_degree())
        ) + 1


class TestPrecondition:
    def test_eq9_violation_rejected(self):
        network = ring_graph(6)
        lists, defects = uniform_lists(network.nodes, (0, 1), 1)
        instance = ListDefectiveInstance(network, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            defective_from_arbdefective(
                instance, theta=2, s=1.0, arb_solver=base_arb_solver,
                initial_colors=sequential_ids(network), q=6,
            )
