"""Tests for the automatic (p, epsilon) planner."""

from __future__ import annotations

import pytest

from repro.coloring import (
    OLDCInstance,
    check_oldc,
    random_oldc_instance,
    uniform_lists,
)
from repro.graphs import gnp_graph, orient_by_id, random_ids, sequential_ids
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import plan_oldc, solve_oldc_auto


@pytest.fixture
def setup():
    network = gnp_graph(40, 0.15, seed=61)
    graph = orient_by_id(network)
    return network, graph


class TestPlanner:
    def test_plans_sorted_by_estimate(self, setup):
        network, graph = setup
        instance = random_oldc_instance(graph, p=3, seed=1, epsilon=1.0)
        plans = plan_oldc(instance, len(network))
        estimates = [plan.estimated_rounds for plan in plans]
        assert estimates == sorted(estimates)
        assert plans

    def test_small_q_prefers_plain_sweep(self, setup):
        network, graph = setup
        instance = random_oldc_instance(graph, p=3, seed=2, epsilon=1.0)
        best = plan_oldc(instance, len(network))[0]
        # q = 40 is below any defective palette: the plain 2q+1 wins.
        assert best.estimated_rounds == 2 * len(network) + 1

    def test_large_q_prefers_defective_path(self, setup):
        network, graph = setup
        instance = random_oldc_instance(graph, p=2, seed=3, epsilon=2.0)
        best = plan_oldc(instance, 2 ** 40)[0]
        assert best.epsilon > 0.0
        assert best.estimated_rounds < 2 ** 20

    def test_describe(self, setup):
        network, graph = setup
        instance = random_oldc_instance(graph, p=2, seed=4)
        plan = plan_oldc(instance, len(network))[0]
        assert "p=" in plan.describe()

    def test_infeasible_instance_has_no_plans(self):
        from repro.graphs import ring_graph

        network = ring_graph(6)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        assert plan_oldc(instance, 6) == []


class TestAutoSolver:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity_small_q(self, setup, seed):
        network, graph = setup
        instance = random_oldc_instance(graph, p=3, seed=seed)
        result = solve_oldc_auto(
            instance, sequential_ids(network), len(network)
        )
        assert check_oldc(instance, result.colors) == []
        assert "p" in result.stats

    def test_validity_large_q(self, setup):
        network, graph = setup
        instance = random_oldc_instance(graph, p=2, seed=5, epsilon=2.0)
        ids = random_ids(network, seed=6, bits=36)
        ledger = CostLedger()
        result = solve_oldc_auto(instance, ids, 2 ** 36, ledger=ledger)
        assert check_oldc(instance, result.colors) == []
        # Must have taken the defective path: far fewer than 2^36 rounds.
        assert ledger.rounds < 10_000

    def test_estimate_close_to_actual(self, setup):
        network, graph = setup
        instance = random_oldc_instance(graph, p=2, seed=7, epsilon=1.0)
        ids = random_ids(network, seed=8, bits=32)
        ledger = CostLedger()
        result = solve_oldc_auto(instance, ids, 2 ** 32, ledger=ledger)
        estimate = result.stats["estimated_rounds"]
        assert ledger.rounds <= 2 * estimate + 10
        assert estimate <= 4 * ledger.rounds + 10

    def test_infeasible_raises(self):
        from repro.graphs import ring_graph

        network = ring_graph(6)
        graph = orient_by_id(network)
        lists, defects = uniform_lists(network.nodes, (0,), 0)
        instance = OLDCInstance(graph, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            solve_oldc_auto(instance, sequential_ids(network), 6)
