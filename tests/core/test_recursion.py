"""Tests for Lemma 4.6 / Theorem 1.5 (bounded-theta recursion)."""

from __future__ import annotations

import math

import pytest

from repro.coloring import (
    check_arbdefective,
    check_proper_coloring,
    random_arbdefective_instance,
)
from repro.graphs import (
    gnp_graph,
    line_graph_of_hypergraph,
    line_graph_of_network,
    neighborhood_independence,
    random_uniform_hypergraph,
    ring_graph,
)
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import (
    lemma_46_slack,
    theta_delta_plus_one_coloring,
    theta_recursive_arbdefective,
)


def line_graph_instance(seed, slack, color_space=32):
    base = gnp_graph(14, 0.3, seed=seed)
    network, _ = line_graph_of_network(base)
    theta = neighborhood_independence(network)
    instance = random_arbdefective_instance(
        network, slack=slack, seed=seed, color_space_size=color_space
    )
    return instance, network, theta


class TestSlackFormula:
    def test_lemma_46_slack(self):
        assert lemma_46_slack(1, 8) == 84.0 * 3
        assert lemma_46_slack(2, 8) == 2 * 84.0 * 3
        assert lemma_46_slack(1, 2) == 84.0


class TestDefaultDispatch:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity_slack_just_above_one(self, seed):
        instance, network, theta = line_graph_instance(seed, slack=1.2)
        result = theta_recursive_arbdefective(instance, theta)
        # validate=True already asserted; double-check independently.
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_validity_high_slack(self):
        instance, network, theta = line_graph_instance(11, slack=30.0)
        result = theta_recursive_arbdefective(instance, theta)
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_infeasible_rejected(self):
        network = ring_graph(6)
        from repro.coloring import ArbdefectiveInstance, uniform_lists

        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            theta_recursive_arbdefective(instance, theta=2)


class TestForcedRecursion:
    def test_all_branches_visited(self):
        hg = random_uniform_hypergraph(24, 36, rank=3, seed=8)
        network, _ = line_graph_of_hypergraph(hg)
        theta = neighborhood_independence(network)
        big = lemma_46_slack(theta, network.raw_max_degree())
        instance = random_arbdefective_instance(
            network, slack=big + 1, seed=3, color_space_size=64
        )
        result = theta_recursive_arbdefective(
            instance, theta, force_recursion=True,
            base_degree=0, base_color_space=2,
        )
        assert result.stats["lemma44"] + result.stats["lemma46"] > 0
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_low_slack_routes_through_a1(self):
        instance, network, theta = line_graph_instance(21, slack=1.3)
        result = theta_recursive_arbdefective(
            instance, theta, force_recursion=True,
            base_degree=0, base_color_space=2, max_depth=10,
        )
        assert result.stats["lemmaA1"] >= 1

    def test_depth_budget_respected(self):
        """max_depth = 0 must immediately fall back to the base solver
        (which is universally correct)."""
        instance, network, theta = line_graph_instance(22, slack=2.5)
        result = theta_recursive_arbdefective(
            instance, theta, max_depth=0,
        )
        assert result.stats["base"] >= 1
        assert result.stats["lemma44"] == 0


class TestDeltaPlusOne:
    @pytest.mark.parametrize("rank", [2, 3])
    def test_proper_coloring_on_hypergraph_line_graphs(self, rank):
        hg = random_uniform_hypergraph(20, 24, rank=rank, seed=rank)
        network, _ = line_graph_of_hypergraph(hg)
        theta = neighborhood_independence(network)
        assert theta <= rank
        result = theta_delta_plus_one_coloring(network, theta)
        assert check_proper_coloring(network, result.colors) == []
        assert result.color_count() <= network.raw_max_degree() + 1

    def test_ring(self):
        network = ring_graph(17)
        result = theta_delta_plus_one_coloring(network, theta=2)
        assert check_proper_coloring(network, result.colors) == []
        assert max(result.colors.values()) <= 2

    def test_rounds_charged(self):
        network = ring_graph(12)
        ledger = CostLedger()
        theta_delta_plus_one_coloring(network, theta=2, ledger=ledger)
        assert ledger.rounds > 0
