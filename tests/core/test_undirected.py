"""Tests for the undirected list defective coloring front end."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ListDefectiveInstance,
    check_list_defective,
    minimal_slack_oldc_instance,
    uniform_lists,
)
from repro.core import (
    as_bidirected_oldc,
    list_defective_auto,
    list_defective_two_sweep,
)
from repro.graphs import (
    gnp_graph,
    orient_all_out,
    random_ids,
    random_regular_graph,
    sequential_ids,
)
from repro.sim import CostLedger, InfeasibleInstanceError


def make_instance(network, colors, defect):
    lists, defects = uniform_lists(network.nodes, colors, defect)
    return ListDefectiveInstance(network, lists, defects)


class TestBidirectedView:
    def test_beta_equals_degree(self):
        network = gnp_graph(20, 0.25, seed=51)
        instance = make_instance(network, (0, 1, 2), 2)
        oldc = as_bidirected_oldc(instance)
        for node in network:
            assert oldc.beta(node) == max(1, network.degree(node))


class TestTwoSweepFrontEnd:
    def test_three_coloring_above_threshold(self):
        delta = 9
        network = random_regular_graph(30, delta, seed=52)
        defect = 6  # > (2*9-3)/3 = 5
        instance = make_instance(network, (0, 1, 2), defect)
        result = list_defective_two_sweep(
            instance, sequential_ids(network), 30, p=2
        )
        assert check_list_defective(instance, result.colors) == []

    def test_below_threshold_rejected(self):
        delta = 9
        network = random_regular_graph(30, delta, seed=53)
        instance = make_instance(network, (0, 1, 2), 4)
        with pytest.raises(InfeasibleInstanceError):
            list_defective_two_sweep(
                instance, sequential_ids(network), 30, p=2
            )

    def test_fast_variant_with_large_q(self):
        network = gnp_graph(40, 0.2, seed=54)
        delta = network.raw_max_degree()
        # Generous instance: p^2 colors with defect ~ delta.
        instance = make_instance(network, tuple(range(9)), delta)
        ids = random_ids(network, seed=54, bits=30)
        ledger = CostLedger()
        result = list_defective_two_sweep(
            instance, ids, 2 ** 30, p=3, epsilon=0.5, ledger=ledger
        )
        assert check_list_defective(instance, result.colors) == []
        assert ledger.rounds < 10_000


class TestAutoFrontEnd:
    def test_auto_solves_and_records_plan(self):
        network = gnp_graph(30, 0.2, seed=55)
        delta = network.raw_max_degree()
        instance = make_instance(network, tuple(range(9)), delta)
        result = list_defective_auto(
            instance, sequential_ids(network), 30
        )
        assert check_list_defective(instance, result.colors) == []
        assert "p" in result.stats


class TestMinimalSlackInstances:
    def test_boundary_instances_still_solvable(self):
        """The tightest Eq. (2) instances are exactly solvable -- the
        theorem's constant is sharp in this implementation."""
        network = random_regular_graph(24, 6, seed=56)
        graph = orient_all_out(network)
        instance = minimal_slack_oldc_instance(graph, p=3)
        from repro.core import two_sweep
        from repro.coloring import check_oldc

        result = two_sweep(
            instance, sequential_ids(network), 24, 3
        )
        assert check_oldc(instance, result.colors) == []

    def test_eps_variant(self):
        network = random_regular_graph(20, 5, seed=57)
        from repro.graphs import orient_by_id

        graph = orient_by_id(network)
        instance = minimal_slack_oldc_instance(graph, p=2, epsilon=0.5)
        assert all(
            instance.satisfies_eq7(2, 0.5, node) for node in graph.nodes
        )
