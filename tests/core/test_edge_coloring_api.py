"""Tests for the public edge coloring API."""

from __future__ import annotations

import pytest

from repro.core import edge_coloring, hyperedge_coloring
from repro.graphs import (
    complete_graph,
    empty_graph,
    gnp_graph,
    is_proper_edge_coloring,
    random_uniform_hypergraph,
    ring_graph,
    star_graph,
)
from repro.sim import CostLedger


class TestEdgeColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        network = gnp_graph(16, 0.25, seed=seed)
        colors, result = edge_coloring(network)
        assert is_proper_edge_coloring(network, colors)
        assert result.color_count() <= max(
            1, 2 * network.raw_max_degree() - 1
        )

    def test_star_needs_exactly_delta_colors(self):
        network = star_graph(5)
        colors, result = edge_coloring(network)
        # All 5 edges share the center: 5 distinct colors.
        assert len(set(colors.values())) == 5

    def test_ring_uses_at_most_three(self):
        network = ring_graph(9)
        colors, _ = edge_coloring(network)
        assert len(set(colors.values())) <= 3

    def test_clique(self):
        network = complete_graph(5)
        colors, _ = edge_coloring(network)
        assert is_proper_edge_coloring(network, colors)

    def test_empty_graph(self):
        colors, result = edge_coloring(empty_graph(4))
        assert colors == {}

    def test_rounds_charged(self):
        network = ring_graph(8)
        ledger = CostLedger()
        edge_coloring(network, ledger=ledger)
        assert ledger.rounds > 0


class TestHyperedgeColoring:
    @pytest.mark.parametrize("rank", [2, 3, 4])
    def test_intersecting_hyperedges_distinct(self, rank):
        hypergraph = random_uniform_hypergraph(
            16, 16, rank=rank, seed=rank
        )
        colors, result = hyperedge_coloring(hypergraph)
        edges = list(colors)
        for i, a in enumerate(edges):
            for b in edges[i + 1:]:
                if a & b:
                    assert colors[a] != colors[b]

    def test_all_hyperedges_colored(self):
        hypergraph = random_uniform_hypergraph(12, 10, rank=3, seed=9)
        colors, _ = hyperedge_coloring(hypergraph)
        assert set(colors) == set(hypergraph.edges)
