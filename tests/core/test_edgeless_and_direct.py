"""Direct tests for helpers usually exercised only through wrappers."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    check_arbdefective,
    random_arbdefective_instance,
    uniform_lists,
)
from repro.core import (
    check_fast_two_sweep_preconditions,
    check_two_sweep_preconditions,
    solve_arbdefective_via_congest,
    solve_edgeless,
)
from repro.graphs import empty_graph, gnp_graph, orient_by_id, sequential_ids
from repro.sim import (
    CostLedger,
    InfeasibleInstanceError,
    InstanceError,
)


class TestSolveEdgeless:
    def test_picks_max_defect_color(self):
        network = empty_graph(3)
        lists = {node: (4, 7, 9) for node in network}
        defects = {node: {4: 0, 7: 5, 9: 2} for node in network}
        instance = ArbdefectiveInstance(network, lists, defects)
        ledger = CostLedger()
        result = solve_edgeless(instance, ledger)
        assert all(color == 7 for color in result.colors.values())
        assert ledger.rounds == 1

    def test_tie_break_prefers_smaller_color(self):
        network = empty_graph(1)
        lists = {0: (9, 4)}
        defects = {0: {9: 1, 4: 1}}
        instance = ArbdefectiveInstance(network, lists, defects)
        result = solve_edgeless(instance, CostLedger())
        assert result.colors[0] == 4

    def test_empty_list_rejected(self):
        network = empty_graph(1)
        instance = ArbdefectiveInstance(network, {0: ()}, {})
        with pytest.raises(InfeasibleInstanceError):
            solve_edgeless(instance, CostLedger())

    def test_no_nodes_no_round(self):
        network = empty_graph(0)
        instance = ArbdefectiveInstance(network, {}, {})
        ledger = CostLedger()
        solve_edgeless(instance, ledger)
        assert ledger.rounds == 0


class TestPreconditionCheckers:
    def test_two_sweep_checker_passes_on_feasible(self):
        from repro.coloring import random_oldc_instance

        network = gnp_graph(15, 0.3, seed=1)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=1)
        check_two_sweep_preconditions(
            instance, sequential_ids(network), len(network), 2
        )

    def test_two_sweep_checker_rejects_bad_q(self):
        from repro.coloring import random_oldc_instance

        network = gnp_graph(15, 0.3, seed=2)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=2)
        with pytest.raises(InstanceError):
            check_two_sweep_preconditions(
                instance, sequential_ids(network), 3, 2
            )

    def test_fast_checker_rejects_bad_p(self):
        from repro.coloring import random_oldc_instance

        network = gnp_graph(15, 0.3, seed=3)
        graph = orient_by_id(network)
        instance = random_oldc_instance(graph, p=2, seed=3)
        with pytest.raises(InstanceError):
            check_fast_two_sweep_preconditions(instance, 0, 0.5)


class TestSolveViaCongest:
    def test_direct_invocation(self):
        """The Theorem 1.3 inner solver, driven directly on a high-slack
        instance (orientation chosen from the initial coloring)."""
        from repro.core import required_slack_factor

        network = gnp_graph(25, 0.15, seed=4)
        color_space = 16
        mu = required_slack_factor(color_space)
        instance = random_arbdefective_instance(
            network, slack=mu + 1, seed=4, color_space_size=color_space
        )
        ids = sequential_ids(network)
        ledger = CostLedger()
        result = solve_arbdefective_via_congest(
            instance, ids, len(network), ledger
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []
