"""Tests for Lemma 4.4 and Lemma A.1 (slack reduction)."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    check_arbdefective,
    random_arbdefective_instance,
    uniform_lists,
)
from repro.graphs import gnp_graph, ring_graph, sequential_ids
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import (
    slack_reduction,
    slack_reduction_full,
    solve_arbdefective_base,
)


def base_inner(sub, sub_initial, sub_q, ledger):
    """Inner solver used by the tests: the universal base solver."""
    return solve_arbdefective_base(sub, sub_initial, sub_q, ledger=ledger)


def recording_inner(log):
    def inner(sub, sub_initial, sub_q, ledger):
        log.append(sub)
        return base_inner(sub, sub_initial, sub_q, ledger)

    return inner


class TestLemma44:
    @pytest.mark.parametrize("seed", range(4))
    def test_validity(self, seed):
        network = gnp_graph(30, 0.15, seed=seed)
        instance = random_arbdefective_instance(
            network, slack=2.5, seed=seed, color_space_size=12
        )
        result = slack_reduction(
            instance, sequential_ids(network), len(network),
            mu=4.0, inner_solver=base_inner,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_inner_instances_have_boosted_slack(self):
        """Classes with edges must carry slack > mu.  (On small graphs
        most classes are edgeless and take the local fast path; the
        slack guard inside slack_reduction additionally raises
        AlgorithmFailure at runtime if the arithmetic ever broke.)"""
        network = gnp_graph(35, 0.2, seed=5)
        instance = random_arbdefective_instance(
            network, slack=2.5, seed=5, color_space_size=12
        )
        seen = []
        result = slack_reduction(
            instance, sequential_ids(network), len(network),
            mu=5.0, inner_solver=recording_inner(seen),
        )
        for sub in seen:
            assert sub.has_slack(5.0)
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_inner_degrees_shrink(self):
        network = gnp_graph(40, 0.3, seed=6)
        instance = random_arbdefective_instance(
            network, slack=2.5, seed=6, color_space_size=12
        )
        mu = 5.0
        seen = []
        slack_reduction(
            instance, sequential_ids(network), len(network),
            mu=mu, inner_solver=recording_inner(seen),
        )
        for sub in seen:
            for node in sub.network:
                assert sub.network.degree(node) <= (
                    network.degree(node) / mu
                )

    def test_slack_two_required(self):
        network = ring_graph(4)
        lists, defects = uniform_lists(network.nodes, (0, 1), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            slack_reduction(
                instance, sequential_ids(network), 4,
                mu=3.0, inner_solver=base_inner,
            )


class TestLemmaA1:
    @pytest.mark.parametrize("seed", range(4))
    def test_validity_low_slack(self, seed):
        network = gnp_graph(30, 0.15, seed=40 + seed)
        instance = random_arbdefective_instance(
            network, slack=1.2, seed=seed, color_space_size=12
        )
        result = slack_reduction_full(
            instance, sequential_ids(network), len(network),
            mu=3.0, inner_solver=base_inner,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_deg_plus_one_lists(self):
        """The flagship client: zero defects, lists of size deg + 1."""
        import random as rnd

        network = gnp_graph(30, 0.2, seed=44)
        rng = rnd.Random(1)
        space = network.raw_max_degree() + 4
        lists = {
            node: tuple(
                sorted(rng.sample(range(space), network.degree(node) + 1))
            )
            for node in network
        }
        defects = {
            node: {color: 0 for color in lists[node]} for node in network
        }
        instance = ArbdefectiveInstance(network, lists, defects, space)
        result = slack_reduction_full(
            instance, sequential_ids(network), len(network),
            mu=2.0, inner_solver=base_inner,
        )
        # Zero defects: the output must be proper.
        for u, v in network.edges():
            assert result.colors[u] != result.colors[v]

    def test_inner_instances_have_boosted_slack(self):
        network = gnp_graph(35, 0.2, seed=45)
        instance = random_arbdefective_instance(
            network, slack=1.1, seed=7, color_space_size=12
        )
        seen = []
        result = slack_reduction_full(
            instance, sequential_ids(network), len(network),
            mu=2.5, inner_solver=recording_inner(seen),
        )
        for sub in seen:
            assert sub.has_slack(2.5)
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_slack_above_one_required(self):
        network = ring_graph(4)
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            slack_reduction_full(
                instance, sequential_ids(network), 4,
                mu=2.0, inner_solver=base_inner,
            )

    def test_rounds_charged_to_shared_ledger(self):
        network = gnp_graph(25, 0.2, seed=46)
        instance = random_arbdefective_instance(
            network, slack=1.3, seed=8, color_space_size=10
        )
        ledger = CostLedger()
        slack_reduction_full(
            instance, sequential_ids(network), len(network),
            mu=2.0, inner_solver=base_inner, ledger=ledger,
        )
        assert ledger.rounds > 0
        assert ledger.phase_rounds("slack-reduction-A.1") == ledger.rounds


class TestPartitionerHook:
    def test_a1_with_distributed_local_search_partitioner(self):
        """Lemma A.1 driven by the distributed [Lov66] partition source
        instead of the built-in Lemma 3.4 coloring."""
        import math

        from repro.substrates import distributed_lovasz_partition

        network = gnp_graph(36, 0.3, seed=61)
        instance = random_arbdefective_instance(
            network, slack=1.3, seed=61, color_space_size=14
        )
        mu = 2.0
        classes = max(2, int(math.ceil(2 * mu)))

        def partitioner(subnetwork):
            return distributed_lovasz_partition(
                subnetwork, classes, seed=61
            )

        result = slack_reduction_full(
            instance, sequential_ids(network), len(network),
            mu=mu, inner_solver=base_inner, partitioner=partitioner,
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []
