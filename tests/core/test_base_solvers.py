"""Tests for the base-case solvers (peel + Linial + greedy sweep)."""

from __future__ import annotations

import pytest

from repro.coloring import (
    ArbdefectiveInstance,
    check_arbdefective,
    random_arbdefective_instance,
    uniform_lists,
)
from repro.graphs import (
    empty_graph,
    gnp_graph,
    ring_graph,
    sequential_ids,
    star_graph,
)
from repro.sim import CostLedger, InfeasibleInstanceError
from repro.core import peel_free_color_nodes, solve_arbdefective_base


class TestPeel:
    def test_free_color_nodes_peeled(self):
        network = ring_graph(5)
        # defect = 2 = deg: every node has a free color -> all peeled.
        lists, defects = uniform_lists(network.nodes, (0,), 2)
        instance = ArbdefectiveInstance(network, lists, defects)
        ledger = CostLedger()
        colors, orientation, residual = peel_free_color_nodes(
            instance, ledger
        )
        assert len(colors) == 5
        assert len(residual.network) == 0
        assert check_arbdefective(instance, colors, orientation) == []

    def test_peel_cascades(self):
        # Star: center has defect = deg (free); leaves have defect 0 but
        # once the center is gone they become isolated and free too.
        network = star_graph(3)
        lists = {0: (0,), 1: (1,), 2: (1,), 3: (1,)}
        defects = {0: {0: 3}, 1: {1: 0}, 2: {1: 0}, 3: {1: 0}}
        instance = ArbdefectiveInstance(network, lists, defects)
        ledger = CostLedger()
        colors, orientation, residual = peel_free_color_nodes(
            instance, ledger
        )
        assert len(colors) == 4
        assert ledger.rounds == 2  # two waves
        assert check_arbdefective(instance, colors, orientation) == []

    def test_nothing_to_peel(self):
        network = ring_graph(6)
        lists, defects = uniform_lists(network.nodes, (0, 1, 2), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        ledger = CostLedger()
        colors, _, residual = peel_free_color_nodes(instance, ledger)
        assert colors == {}
        assert len(residual.network) == 6
        assert ledger.rounds == 0

    def test_peel_reduces_neighbor_defects(self):
        network = star_graph(2)
        # Center free (defect 2 >= deg 2); leaves have color 0 with
        # defect 1 -- after the center takes 0, leaves still fine.
        lists = {0: (0,), 1: (0,), 2: (0,)}
        defects = {0: {0: 2}, 1: {0: 1}, 2: {0: 1}}
        instance = ArbdefectiveInstance(network, lists, defects)
        ledger = CostLedger()
        colors, orientation, residual = peel_free_color_nodes(
            instance, ledger
        )
        # Everyone ends up peeled: after the center, leaves are isolated.
        assert len(colors) == 3
        assert check_arbdefective(instance, colors, orientation) == []


class TestBaseSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances(self, seed):
        network = gnp_graph(30, 0.15, seed=seed)
        instance = random_arbdefective_instance(
            network, slack=1.3, seed=seed, color_space_size=10
        )
        result = solve_arbdefective_base(
            instance, sequential_ids(network), len(network)
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_zero_defect_proper_coloring(self):
        network = ring_graph(7)
        lists, defects = uniform_lists(network.nodes, (0, 1, 2), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        result = solve_arbdefective_base(
            instance, sequential_ids(network), 7
        )
        for u, v in network.edges():
            assert result.colors[u] != result.colors[v]

    def test_isolated_nodes(self):
        network = empty_graph(4)
        lists, defects = uniform_lists(network.nodes, (3,), 0)
        instance = ArbdefectiveInstance(network, lists, defects)
        result = solve_arbdefective_base(
            instance, sequential_ids(network), 4
        )
        assert all(color == 3 for color in result.colors.values())

    def test_slack_one_rejected(self):
        network = ring_graph(4)
        lists, defects = uniform_lists(network.nodes, (0,), 1)
        instance = ArbdefectiveInstance(network, lists, defects)
        with pytest.raises(InfeasibleInstanceError):
            solve_arbdefective_base(
                instance, sequential_ids(network), 4
            )

    def test_without_peel(self):
        network = gnp_graph(25, 0.2, seed=31)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=1, color_space_size=8
        )
        result = solve_arbdefective_base(
            instance, sequential_ids(network), len(network), peel=False
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []

    def test_linial_relabel_bounds_rounds(self):
        """With a huge ID space the sweep must run on the Linial palette,
        not on the raw IDs."""
        from repro.graphs import random_ids

        network = gnp_graph(30, 0.12, seed=32)
        instance = random_arbdefective_instance(
            network, slack=1.5, seed=2, color_space_size=8
        )
        ids = random_ids(network, seed=3, bits=40)
        ledger = CostLedger()
        result = solve_arbdefective_base(
            instance, ids, 2 ** 40, ledger=ledger
        )
        assert check_arbdefective(
            instance, result.colors, result.orientation
        ) == []
        # Far below 2^40: Linial palette is O(Delta^2).
        delta = network.raw_max_degree()
        assert ledger.rounds <= (4 * delta + 2) ** 2 + 20
