"""Tests for Lemma 3.5 (color space reduction)."""

from __future__ import annotations

import math
import random

import pytest

from repro.coloring import OLDCInstance, check_oldc
from repro.graphs import gnp_graph, orient_by_id, sequential_ids
from repro.sim import CostLedger, InfeasibleInstanceError, InstanceError
from repro.core import (
    color_space_reduced_oldc,
    check_reduction_precondition,
    reduction_depth,
    two_sweep,
)


def make_high_slack_instance(graph, color_space, kappa, lam, seed):
    """Uniform instance with weight > beta * kappa**depth at every node."""
    depth = reduction_depth(color_space, lam)
    need = kappa ** depth
    rng = random.Random(seed)
    size = max(4, color_space // 2)
    lists, defects = {}, {}
    for node in graph.nodes:
        beta = graph.beta(node)
        d = int(need * beta / size) + 1
        colors = tuple(sorted(rng.sample(range(color_space), size)))
        lists[node] = colors
        defects[node] = {color: d for color in colors}
    return OLDCInstance(graph, lists, defects, color_space)


def greedy_style_base_solver(p=2, epsilon=0.0):
    """A base solver built on the plain Two-Sweep (leaf lists are tiny)."""
    def solver(instance, initial, q, ledger):
        result = two_sweep(
            instance, {n: initial[n] for n in instance.graph.nodes},
            q, p, ledger=ledger, check=False,
        )
        return result.colors

    return solver


class TestReductionDepth:
    def test_values(self):
        assert reduction_depth(4, 4) == 1
        assert reduction_depth(5, 4) == 2
        assert reduction_depth(16, 4) == 2
        assert reduction_depth(17, 4) == 3
        assert reduction_depth(64, 4) == 3

    def test_lambda_validation(self):
        with pytest.raises(InstanceError):
            reduction_depth(16, 1)


class TestPrecondition:
    def test_rejects_low_slack(self):
        network = gnp_graph(20, 0.2, seed=1)
        graph = orient_by_id(network)
        instance = make_high_slack_instance(graph, 64, kappa=1.1, lam=4,
                                            seed=1)
        with pytest.raises(InfeasibleInstanceError):
            check_reduction_precondition(instance, kappa=100.0, lam=4)

    def test_accepts_high_slack(self):
        network = gnp_graph(20, 0.2, seed=2)
        graph = orient_by_id(network)
        instance = make_high_slack_instance(graph, 64, kappa=2.5, lam=4,
                                            seed=2)
        check_reduction_precondition(instance, kappa=2.5, lam=4)


class TestEndToEnd:
    @pytest.mark.parametrize("color_space", [8, 16, 64])
    def test_validity(self, color_space):
        network = gnp_graph(30, 0.15, seed=3)
        graph = orient_by_id(network)
        kappa, lam = 2.5, 4
        instance = make_high_slack_instance(
            graph, color_space, kappa, lam, seed=color_space
        )
        ids = sequential_ids(network)
        colors = color_space_reduced_oldc(
            instance, ids, len(network), greedy_style_base_solver(),
            kappa, lam,
        )
        assert check_oldc(instance, colors) == []

    def test_base_solver_sees_only_small_lists(self):
        network = gnp_graph(25, 0.2, seed=4)
        graph = orient_by_id(network)
        kappa, lam = 2.5, 4
        instance = make_high_slack_instance(graph, 64, kappa, lam, seed=9)
        observed = []

        def recording_solver(sub, initial, q, ledger):
            observed.append(sub.max_list_size())
            return greedy_style_base_solver()(sub, initial, q, ledger)

        color_space_reduced_oldc(
            instance, sequential_ids(network), len(network),
            recording_solver, kappa, lam,
        )
        assert observed
        assert all(size <= lam for size in observed)

    def test_number_of_solver_calls_is_depth(self):
        network = gnp_graph(25, 0.2, seed=5)
        graph = orient_by_id(network)
        kappa, lam = 2.5, 4
        color_space = 64
        instance = make_high_slack_instance(
            graph, color_space, kappa, lam, seed=10
        )
        calls = []

        def counting_solver(sub, initial, q, ledger):
            calls.append(sub.color_space_size)
            return greedy_style_base_solver()(sub, initial, q, ledger)

        color_space_reduced_oldc(
            instance, sequential_ids(network), len(network),
            counting_solver, kappa, lam,
        )
        assert len(calls) == reduction_depth(color_space, lam)

    def test_block_defects_sum_exceeds_kappa_beta(self):
        """The floor allocation must still produce a kappa-slack choice
        instance (the deviation documented in the module docstring)."""
        network = gnp_graph(25, 0.2, seed=6)
        graph = orient_by_id(network)
        kappa, lam = 2.5, 4
        instance = make_high_slack_instance(graph, 64, kappa, lam, seed=11)
        seen = {}

        def inspecting_solver(sub, initial, q, ledger):
            if not seen:  # first call = the top-level block choice
                for node in sub.graph.nodes:
                    seen[node] = sub.weight(node)
            return greedy_style_base_solver()(sub, initial, q, ledger)

        color_space_reduced_oldc(
            instance, sequential_ids(network), len(network),
            inspecting_solver, kappa, lam,
        )
        for node, weight in seen.items():
            if graph.outdegree(node) == 0:
                continue
            assert weight > kappa * graph.beta(node)
