"""Tests for Theorem 1.2 (CONGEST oriented list defective coloring)."""

from __future__ import annotations

import math
import random

import pytest

from repro.coloring import OLDCInstance, check_oldc
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    random_bounded_degree_graph,
    random_ids,
    sequential_ids,
)
from repro.sim import CongestModel, CostLedger, InfeasibleInstanceError
from repro.substrates import log_star
from repro.core import (
    congest_epsilon,
    congest_kappa,
    congest_oldc,
    required_slack_factor,
)


def make_theorem_12_instance(graph, color_space, seed, margin=1.0):
    """Uniform instance with weight > required_slack_factor * beta."""
    need = required_slack_factor(color_space) * margin
    rng = random.Random(seed)
    size = max(4, color_space // 2)
    lists, defects = {}, {}
    for node in graph.nodes:
        beta = graph.beta(node)
        d = int(need * beta / size) + 1
        colors = tuple(sorted(rng.sample(range(color_space), size)))
        lists[node] = colors
        defects[node] = {color: d for color in colors}
    return OLDCInstance(graph, lists, defects, color_space)


class TestParameters:
    def test_epsilon_formula(self):
        assert congest_epsilon(4) == pytest.approx(1 / 3)
        assert congest_epsilon(256) == pytest.approx(1 / 12)

    def test_kappa_below_three(self):
        for color_space in (4, 64, 1024):
            assert 2.0 < congest_kappa(color_space) < 3.0

    def test_required_factor_below_3_sqrt_c(self):
        """The paper's clean bound 3 sqrt(C) dominates the exact factor."""
        for color_space in (4, 16, 64, 256, 4096):
            assert required_slack_factor(color_space) <= (
                3.0 * math.sqrt(color_space)
            )


class TestValidity:
    @pytest.mark.parametrize("color_space", [8, 32, 128])
    def test_random_instances(self, color_space):
        network = random_bounded_degree_graph(40, 5, seed=color_space)
        graph = orient_by_id(network)
        instance = make_theorem_12_instance(graph, color_space, seed=1)
        result = congest_oldc(
            instance, sequential_ids(network), len(network),
        )
        assert check_oldc(instance, result.colors) == []

    def test_large_id_space(self):
        network = random_bounded_degree_graph(40, 4, seed=9)
        graph = orient_by_id(network)
        instance = make_theorem_12_instance(graph, 64, seed=2)
        ids = random_ids(network, seed=3, bits=32)
        result = congest_oldc(instance, ids, 2 ** 32)
        assert check_oldc(instance, result.colors) == []


class TestCongestBudget:
    def test_messages_fit_logq_plus_logc(self):
        """Theorem 1.2's message bound, enforced by the simulator."""
        network = random_bounded_degree_graph(40, 4, seed=10)
        graph = orient_by_id(network)
        color_space = 64
        instance = make_theorem_12_instance(graph, color_space, seed=4)
        ids = random_ids(network, seed=5, bits=24)
        bits_c = max(1, math.ceil(math.log2(color_space)))
        bandwidth = CongestModel(n=2 ** 24, factor=4, extra_bits=bits_c)
        result = congest_oldc(
            instance, ids, 2 ** 24, bandwidth=bandwidth,
        )
        assert check_oldc(instance, result.colors) == []

    def test_max_message_bits_small(self):
        network = random_bounded_degree_graph(30, 4, seed=11)
        graph = orient_by_id(network)
        instance = make_theorem_12_instance(graph, 256, seed=6)
        ledger = CostLedger()
        congest_oldc(
            instance, sequential_ids(network), len(network), ledger=ledger
        )
        # p = 2 colors of log C bits plus small headers; far below the
        # instance's total list size (128 colors x 8 bits).
        assert ledger.max_message_bits <= 4 * (
            math.ceil(math.log2(256)) + math.ceil(math.log2(30)) + 8
        )


class TestPrecondition:
    def test_low_slack_rejected(self):
        network = gnp_graph(20, 0.2, seed=12)
        graph = orient_by_id(network)
        # One zero-defect color per node: weight 1 <= kappa^depth * beta.
        lists = {node: (0,) for node in graph.nodes}
        defects = {node: {0: 0} for node in graph.nodes}
        instance = OLDCInstance(graph, lists, defects, 64)
        with pytest.raises(InfeasibleInstanceError):
            congest_oldc(instance, sequential_ids(network), len(network))


class TestRounds:
    def test_round_shape(self):
        """Rounds grow polylog in C (times the O(q)-ish leaf sweeps on
        these small test graphs), never like C itself."""
        network = random_bounded_degree_graph(30, 4, seed=13)
        graph = orient_by_id(network)
        rounds = {}
        for color_space in (16, 256):
            instance = make_theorem_12_instance(
                graph, color_space, seed=color_space
            )
            ledger = CostLedger()
            congest_oldc(
                instance, sequential_ids(network), len(network),
                ledger=ledger,
            )
            rounds[color_space] = ledger.rounds
        # 16x more colors must cost far less than 16x more rounds.
        assert rounds[256] <= 6 * rounds[16]
