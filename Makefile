# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test bench report examples fuzz all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report: bench
	$(PYTHON) -m repro report

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/sweep_anatomy.py
	$(PYTHON) examples/defective_3coloring.py
	$(PYTHON) examples/edge_coloring.py
	$(PYTHON) examples/congest_delta_plus_one.py
	$(PYTHON) examples/route_comparison.py

all: test bench report

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/.benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
