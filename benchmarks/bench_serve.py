"""Serving benchmark: warm daemon throughput vs cold per-request CLI.

The daemon's reason to exist is amortization: worker spawn, imports,
substrate caches, and topology builds are paid once per *process*
instead of once per *request*.  This benchmark quantifies that on a
mixed workload (two topology families x greedy reduction + the sweep
algorithms, interleaved from concurrent keep-alive clients):

* **warm** -- one process-mode :class:`~repro.serve.ColoringServer`
  hosted in-process; the full request multiset is driven through HTTP
  by concurrent clients.  Reports end-to-end wall, sustained req/s, and
  the server's own rolling p50/p99 latency, plus batching stats.
* **cold** -- the same request specs executed by fresh
  ``python -c 'execute_request(...)'`` subprocesses, one per request:
  exactly the work a per-request CLI invocation pays (interpreter boot,
  imports, topology build, solve).  Each distinct request body is
  measured ``COLD_PROBES`` times and the full-multiset cold wall is
  extrapolated (measuring all of it would take minutes and add no
  information); the report records both the measured sample and the
  extrapolation.
* **bit-identity** -- every warm response is compared against a serial
  in-process :func:`~repro.serve.executor.execute_request` of the same
  spec: coloring checksum, cost ledger, and canonical logical trace
  must all match byte for byte.  The daemon must be a *faster* way to
  run the same computation, not a different computation.

The headline is ``cold_wall / warm_wall`` for the same request
multiset -- the acceptance floor is 5x.

Results go to ``BENCH_serve.json`` at the repository root (with a
run-manifest sidecar) and ``benchmarks/results/BENCH_serve.txt``::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.obs.tracer import canonical_lines
from repro.serve import (
    ColoringServer,
    ServeClient,
    ServerHandle,
    execute_request,
    parse_request,
)

from _util import emit, write_manifest_sidecar

REPO_ROOT = pathlib.Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"

#: The mixed workload: two topology families x two algorithm classes.
#: Sizes are chosen so a warm request is milliseconds while the cold
#: baseline is dominated by genuine per-invocation overhead, matching
#: the interactive-request regime the daemon targets.
def _workload(smoke: bool) -> List[Dict]:
    ring_n = 2_000 if smoke else 2_500
    gnp_n = 500 if smoke else 800
    sweep_n = 24 if smoke else 48
    fast_ring = 64 if smoke else 96
    return [
        {"label": "ring-greedy",
         "body": {"topology": {"kind": "ring-stream", "n": ring_n},
                  "algorithm": {"name": "greedy-reduction"}}},
        {"label": "gnp-greedy",
         "body": {"topology": {"kind": "gnp-stream", "n": gnp_n,
                               "p": 4.0 / gnp_n, "seed": 7},
                  "algorithm": {"name": "greedy-reduction"}}},
        {"label": "gnp-two-sweep",
         "body": {"topology": {"kind": "gnp", "n": sweep_n,
                               "density": 0.12, "seed": 5},
                  "algorithm": {"name": "two-sweep", "p": 2,
                                "seed": 3}}},
        {"label": "ring-fast-sweep",
         "body": {"topology": {"kind": "ring-stream", "n": fast_ring},
                  "algorithm": {"name": "fast-two-sweep", "p": 2,
                                "seed": 3, "epsilon": 0.25}}},
    ]


#: Warm repetitions of the workload mix and concurrent client count.
#: Enough repeats that first-touch topology builds (one per worker per
#: family) amortize the way they do in a long-lived daemon.
REPEATS = 12
SMOKE_REPEATS = 2
CLIENTS = 4

#: Cold invocations measured per distinct request body.
COLD_PROBES = 2
SMOKE_COLD_PROBES = 1

_COLD_SNIPPET = (
    "import json, sys\n"
    "from repro.serve.executor import execute_request\n"
    "from repro.serve.schema import parse_request\n"
    "payload = execute_request(parse_request(json.load(sys.stdin)))\n"
    "json.dump({'status': payload['status'],\n"
    "           'checksum': payload['result'].get('colors_blake2b')\n"
    "           if payload['status'] == 'ok' else None}, sys.stdout)\n"
)


def _run_cold(body: Dict) -> Dict:
    """One cold request: fresh interpreter, fresh caches, same spec."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _COLD_SNIPPET],
        input=json.dumps(body), capture_output=True, text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        timeout=600,
    )
    wall_s = time.perf_counter() - start
    assert proc.returncode == 0, proc.stderr
    result = json.loads(proc.stdout)
    assert result["status"] == "ok", result
    return {"wall_s": wall_s, "checksum": result["checksum"]}


def _bench_cold(workload: List[Dict], probes: int) -> Dict:
    per_label = {}
    for case in workload:
        walls = [_run_cold(case["body"])["wall_s"] for _ in range(probes)]
        per_label[case["label"]] = {
            "mean_s": round(sum(walls) / len(walls), 4),
            "invocations": probes,
        }
    mix_wall = sum(row["mean_s"] for row in per_label.values())
    return {
        "per_request": per_label,
        "mix_wall_s": round(mix_wall, 4),
        "invocations_measured": probes * len(workload),
    }


def _bench_warm(workload: List[Dict], repeats: int) -> Dict:
    boot_start = time.perf_counter()
    server = ColoringServer(mode="process", workers=CLIENTS,
                            max_batch=8)
    with ServerHandle(server) as handle:
        boot_s = time.perf_counter() - boot_start
        references = {
            case["label"]: execute_request(parse_request(case["body"]))
            for case in workload
        }
        results: Dict = {}
        errors: List[str] = []

        def drive(worker: int) -> None:
            with ServeClient(handle.host, handle.port) as conn:
                for step in range(len(workload) * repeats // CLIENTS):
                    case = workload[(worker + step) % len(workload)]
                    status, payload = conn.color(case["body"])
                    if status != 200:
                        errors.append(f"{case['label']}: HTTP {status}")
                        continue
                    results[(worker, step)] = (case["label"], payload)

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start
        assert not errors, errors

        identical = 0
        for label, payload in results.values():
            reference = references[label]
            assert payload["result"]["colors_blake2b"] == \
                reference["result"]["colors_blake2b"], label
            assert payload["ledger"] == reference["ledger"], label
            assert canonical_lines(payload["trace"]) == \
                canonical_lines(reference["trace"]), label
            identical += 1

        with ServeClient(handle.host, handle.port) as conn:
            stats = conn.stats()
    requests = len(results)
    return {
        "mode": stats["pool"]["mode"],
        "workers": stats["pool"]["workers"],
        "engine": stats["pool"]["engine"],
        "boot_s": round(boot_s, 4),
        "requests": requests,
        "clients": CLIENTS,
        "wall_s": round(wall_s, 4),
        "req_per_s": round(requests / wall_s, 2) if wall_s > 0 else None,
        "p50_ms": stats["latency_ms"]["p50"],
        "p99_ms": stats["latency_ms"]["p99"],
        "batches": stats["queue"]["batches"],
        "mean_batch": round(stats["queue"]["mean_batch"], 3),
        "largest_batch": stats["queue"]["largest_batch"],
        "pool_restarts": stats["pool"]["restarts"],
        "bit_identity": {"checked": identical, "identical": True},
    }


def run_benchmark(smoke: bool = False) -> Dict:
    workload = _workload(smoke)
    repeats = SMOKE_REPEATS if smoke else REPEATS
    probes = SMOKE_COLD_PROBES if smoke else COLD_PROBES
    warm = _bench_warm(workload, repeats)
    cold = _bench_cold(workload, probes)
    # The warm side served `requests` requests; the cold side measured
    # one mix and is extrapolated to the same multiset.
    mixes_served = warm["requests"] / len(workload)
    cold_total = cold["mix_wall_s"] * mixes_served
    speedup = cold_total / warm["wall_s"] if warm["wall_s"] > 0 else None
    return {
        "benchmark": "bench_serve",
        "smoke": smoke,
        "workload": [
            {"label": case["label"],
             "topology": case["body"]["topology"]["kind"],
             "algorithm": case["body"]["algorithm"]["name"]}
            for case in workload
        ],
        "warm": warm,
        "cold": {**cold,
                 "extrapolated_total_s": round(cold_total, 4),
                 "extrapolated_for_requests": warm["requests"]},
        "headline": {
            "speedup": round(speedup, 2) if speedup else None,
            "warm_req_per_s": warm["req_per_s"],
            "p50_ms": warm["p50_ms"],
            "p99_ms": warm["p99_ms"],
        },
    }


def _render(report: Dict) -> str:
    warm = report["warm"]
    cold = report["cold"]
    head = report["headline"]
    lines = [
        f"BENCH_serve (smoke={report['smoke']})",
        f"workload: {', '.join(w['label'] for w in report['workload'])}"
        f" x{warm['requests'] // len(report['workload'])}"
        f" from {warm['clients']} keep-alive clients",
        f"warm daemon ({warm['mode']}, {warm['workers']} workers, "
        f"engine={warm['engine']}, boot {warm['boot_s']:.2f}s): "
        f"{warm['requests']} requests in {warm['wall_s']:.3f}s = "
        f"{warm['req_per_s']:,} req/s",
        f"  latency p50 {warm['p50_ms']:.1f} ms, p99 "
        f"{warm['p99_ms']:.1f} ms; {warm['batches']} batches, mean "
        f"{warm['mean_batch']:.2f}, largest {warm['largest_batch']}",
        f"  bit-identity vs serial reference: "
        f"{warm['bit_identity']['checked']} responses, all identical",
        f"cold per-request invocations "
        f"({cold['invocations_measured']} measured): mix of "
        f"{len(report['workload'])} requests = {cold['mix_wall_s']:.3f}s"
        f" -> {cold['extrapolated_total_s']:.2f}s for "
        f"{cold['extrapolated_for_requests']} requests",
    ]
    for label, row in cold["per_request"].items():
        lines.append(f"  cold {label:<16} {row['mean_s']:.3f}s/request")
    lines.append(
        f"headline: warm pool is {head['speedup']:.1f}x the cold "
        f"per-request path end to end"
    )
    return "\n".join(lines)


def write_report(report: Dict, json_path: pathlib.Path = JSON_PATH) -> None:
    json_path.write_text(json.dumps(report, indent=2) + "\n")
    emit("BENCH_serve", _render(report))
    print(f"wrote {json_path}")
    write_manifest_sidecar(json_path, extra={
        "benchmark": report["benchmark"],
        "smoke": report["smoke"],
        "headline": report["headline"],
    })


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def test_serve_benchmark():
    """Pytest entry: smoke-scale run with sanity assertions."""
    report = run_benchmark(smoke=True)
    assert report["warm"]["bit_identity"]["identical"] is True
    assert report["headline"]["speedup"] > 1.0
    assert report["warm"]["req_per_s"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI sanity runs")
    parser.add_argument("--out", default=str(JSON_PATH),
                        help="path for the JSON report")
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    write_report(report, pathlib.Path(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
