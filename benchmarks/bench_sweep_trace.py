"""E12 -- Figure 1 mechanics: the two-phase sweep schedule, traced.

The paper's only figure illustrates when a node acts relative to its
earlier (N_<) and later (N_>) out-neighbors.  This benchmark verifies the
schedule invariants on a traced run -- every Phase I decision happens
strictly after all earlier out-neighbors' Phase I decisions, and every
Phase II decision strictly after all later out-neighbors' Phase II
decisions -- and prints the aggregate timeline.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.coloring import check_oldc, random_oldc_instance
from repro.core import two_sweep
from repro.graphs import gnp_graph, orient_by_id, sequential_ids
from repro.sim import CostLedger

from _util import emit


def run_traced(n: int, seed: int):
    network = gnp_graph(n, 0.2, seed=seed)
    graph = orient_by_id(network)
    ids = sequential_ids(network)
    instance = random_oldc_instance(graph, p=2, seed=seed)
    trace = []
    ledger = CostLedger()
    result = two_sweep(instance, ids, n, 2, ledger=ledger, trace=trace)
    assert check_oldc(instance, result.colors) == []
    return network, graph, ids, trace, ledger


def test_e12_sweep_trace(benchmark):
    network, graph, ids, trace, ledger = run_traced(30, seed=25)
    phase1_round = {
        event["node"]: event["round"]
        for event in trace if event["phase"] == 1
    }
    phase2_round = {
        event["node"]: event["round"]
        for event in trace if event["phase"] == 2
    }
    # Schedule invariants (the content of Figure 1):
    for node in graph.nodes:
        for neighbor in graph.out_neighbors(node):
            if ids[neighbor] < ids[node]:  # N_<(v): blue in the figure
                assert phase1_round[neighbor] < phase1_round[node]
                assert phase2_round[neighbor] > phase2_round[node]
            else:  # N_>(v): green in the figure
                assert phase1_round[neighbor] > phase1_round[node]
                assert phase2_round[neighbor] < phase2_round[node]
    q = len(network)
    rows = [
        ["Phase I span (rounds)", min(phase1_round.values()),
         max(phase1_round.values())],
        ["Phase II span (rounds)", min(phase2_round.values()),
         max(phase2_round.values())],
        ["total rounds", ledger.rounds, 2 * q + 1],
    ]
    emit("E12_sweep_trace", render_table(
        ["quantity", "from/measured", "to/bound"],
        rows,
        title="E12: sweep schedule (Figure 1) -- Phase I ascends colors "
              "1..q, Phase II descends q..1",
    ))
    benchmark(run_traced, 30, 26)
