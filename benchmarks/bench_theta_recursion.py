"""E8 -- Theorem 1.5: bounded-theta coloring and the theta crossover.

Two tables:

1. (2 Delta - 1)-edge coloring via line graphs across Delta -- rounds
   against the Theorem 1.5 model and against the Theorem 1.3 route on
   the same line graph (the paper: the theta route wins when theta is
   small, here theta <= 2).
2. The recursion's dispatch statistics under forced full recursion,
   showing all Section 4 branches engage.
"""

from __future__ import annotations

from repro.analysis import grid, render_records, sweep, theorem_15_rounds
from repro.coloring import (
    check_proper_coloring,
    random_arbdefective_instance,
)
from repro.core import (
    delta_plus_one_coloring,
    lemma_46_slack,
    theta_delta_plus_one_coloring,
    theta_recursive_arbdefective,
)
from repro.graphs import (
    gnp_graph,
    line_graph_of_network,
    neighborhood_independence,
)
from repro.sim import CostLedger

from _util import emit


def measure_edge_coloring(base_n: int, base_p: float, seed: int) -> dict:
    from repro.graphs import random_ids

    base = gnp_graph(base_n, base_p, seed=seed)
    line, _ = line_graph_of_network(base)
    if len(line) == 0:
        return {"skip": True}
    theta = max(1, neighborhood_independence(line, exact=len(line) < 60))
    ids = random_ids(line, seed=seed, bits=24)
    ledger = CostLedger()
    result = theta_delta_plus_one_coloring(
        line, theta=2, ids=ids, ledger=ledger
    )
    ok = check_proper_coloring(line, result.colors) == []
    thm13_ledger = CostLedger()
    delta_plus_one_coloring(line, ids=ids, ledger=thm13_ledger)
    delta = line.raw_max_degree()
    return {
        "line_n": len(line),
        "delta": delta,
        "theta": theta,
        "rounds_thm15": ledger.rounds,
        "rounds_thm13": thm13_ledger.rounds,
        "paper_model_15": round(theorem_15_rounds(delta, theta, len(line))),
        "colors": result.color_count(),
        "palette": delta + 1,
        "valid": ok,
    }


def measure_forced(seed: int) -> dict:
    base = gnp_graph(12, 0.3, seed=seed)
    network, _ = line_graph_of_network(base)
    theta = max(1, neighborhood_independence(network))
    big = lemma_46_slack(theta, network.raw_max_degree())
    instance = random_arbdefective_instance(
        network, slack=big + 1, seed=seed, color_space_size=64
    )
    ledger = CostLedger()
    result = theta_recursive_arbdefective(
        instance, theta, ledger=ledger, force_recursion=True,
        base_degree=0, base_color_space=2,
    )
    stats = result.stats
    return {
        "rounds": ledger.rounds,
        "lemma44": stats["lemma44"],
        "lemmaA1": stats["lemmaA1"],
        "lemma46": stats["lemma46"],
        "base": stats["base"],
    }


def test_e8_theta_recursion(benchmark):
    records = sweep(
        measure_edge_coloring,
        grid(base_n=[10, 14, 18, 24], base_p=[0.25], seed=[14]),
    )
    records = [record for record in records if "skip" not in record]
    assert all(record["valid"] for record in records)
    emit("E8a_edge_coloring_scaling", render_records(
        records,
        ["base_n", "line_n", "delta", "theta", "rounds_thm15",
         "rounds_thm13", "paper_model_15", "colors", "palette", "valid"],
        title="E8a: Theorem 1.5 route vs Theorem 1.3 route on line "
              "graphs (theta <= 2)",
    ))
    forced = sweep(measure_forced, grid(seed=[15, 16]))
    emit("E8b_recursion_dispatch", render_records(
        forced,
        ["seed", "rounds", "lemma44", "lemmaA1", "lemma46", "base"],
        title="E8b: forced full recursion -- all Section 4 branches "
              "engage",
    ))
    assert all(
        record["lemma44"] + record["lemma46"] + record["lemmaA1"] > 0
        for record in forced
    )
    benchmark(measure_edge_coloring, base_n=12, base_p=0.25, seed=17)
