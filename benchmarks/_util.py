"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table (visible with ``pytest -s``)
and also writes it to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can reference stable artifacts.  Benchmarks that write a
``BENCH_*.json`` report also drop a ``BENCH_*.manifest.json`` sidecar
(:func:`write_manifest_sidecar`) recording the environment the numbers
were measured in -- engine, ``REPRO_SIM_*`` env, kernel counters,
package and git versions -- so a regression seen in CI can be traced to
a config change rather than re-derived from the workflow logs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print(f"\n{text}")


def write_manifest_sidecar(json_path: pathlib.Path,
                           extra: Optional[dict] = None) -> pathlib.Path:
    """Write ``<report>.manifest.json`` next to a ``BENCH_*.json`` report.

    The sidecar is a :func:`repro.obs.collect_manifest` snapshot taken
    *after* the benchmark ran, so the kernel hit/fallback counters cover
    the measured runs.  Returns the sidecar path.
    """
    from repro.obs import collect_manifest

    json_path = pathlib.Path(json_path)
    sidecar = json_path.parent / (json_path.stem + ".manifest.json")
    manifest = collect_manifest(extra=extra)
    sidecar.write_text(json.dumps(manifest, indent=2, sort_keys=True,
                                  default=repr) + "\n")
    print(f"wrote {sidecar}")
    return sidecar
