"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table (visible with ``pytest -s``)
and also writes it to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print(f"\n{text}")
