"""E11 -- Lemmas 4.4 and A.1: slack reduction overheads.

Two partition sources:

* the built-in Lemma 3.4 coloring -- at laptop scale it is effectively
  *proper*, so every class is an independent set and the reduction
  degenerates to per-class local picks (inner_calls = 0);
* a deliberately coarse [Lov66] local-search partition into few classes
  (each node still has at most deg/ mu same-class neighbors), which
  leaves edges inside classes and forces real inner ``P_A(mu, C)``
  invocations -- the regime the lemmas are about.
"""

from __future__ import annotations

import math

from repro.analysis import (
    grid,
    lemma_44_factor,
    render_records,
    sweep,
)
from repro.coloring import check_arbdefective, random_arbdefective_instance
from repro.core import slack_reduction, solve_arbdefective_base
from repro.graphs import gnp_graph, sequential_ids
from repro.sim import CostLedger
from repro.substrates import lovasz_defective_partition

from _util import emit


def measure(source: str, mu: float, seed: int) -> dict:
    network = gnp_graph(48, 0.35, seed=seed)
    instance = random_arbdefective_instance(
        network, slack=2.5, seed=seed, color_space_size=16
    )
    calls = []

    def inner(sub, sub_initial, sub_q, ledger):
        calls.append(sub.network.edge_count())
        return solve_arbdefective_base(
            sub, sub_initial, sub_q, ledger=ledger
        )

    partition = None
    ledger = CostLedger()
    if source == "lovasz":
        classes = max(2, int(math.ceil(2 * mu)))
        partition = lovasz_defective_partition(network, classes, seed=seed)
    elif source == "distributed-ls":
        from repro.substrates import distributed_lovasz_partition

        classes = max(2, int(math.ceil(2 * mu)))
        partition = distributed_lovasz_partition(
            network, classes, seed=seed, ledger=ledger
        )
    result = slack_reduction(
        instance, sequential_ids(network), len(network),
        mu=mu, inner_solver=inner, ledger=ledger, partition=partition,
    )
    ok = check_arbdefective(
        instance, result.colors, result.orientation
    ) == []
    return {
        "classes": len(set(partition.values())) if partition else None,
        "inner_calls": len(calls),
        "inner_edges": sum(calls),
        "class_budget_model": round(lemma_44_factor(mu)),
        "rounds": ledger.rounds,
        "valid": ok,
    }


def test_e11_slack_reduction(benchmark):
    records = sweep(
        measure,
        grid(source=["lemma3.4", "lovasz", "distributed-ls"],
             mu=[2.0, 3.0], seed=[23]),
    )
    assert all(record["valid"] for record in records)
    emit("E11_slack_reduction", render_records(
        records,
        ["source", "mu", "classes", "inner_calls", "inner_edges",
         "class_budget_model", "rounds", "valid"],
        title="E11: Lemma 4.4 slack reduction -- built-in Lemma 3.4 "
              "partition (proper at this scale) vs a coarse [Lov66] "
              "partition that forces inner P_A(mu, C) work",
    ))
    # The Lovasz source must actually exercise the inner solver.
    assert any(
        record["inner_edges"] > 0
        for record in records if record["source"] == "lovasz"
    )
    benchmark(measure, source="lovasz", mu=2.0, seed=24)
