"""E9 -- Lemma 3.4 [Kuh09, KS18]: colors O(1/alpha^2), defect alpha*beta,
rounds O(log* q).

Sweeps alpha and the ID-space size and reports the measured palette,
worst relative defect, and rounds.
"""

from __future__ import annotations

from repro.analysis import grid, render_records, sweep
from repro.graphs import gnp_graph, orient_by_id, random_ids
from repro.sim import CostLedger
from repro.substrates import (
    defective_palette_bound,
    kuhn_defective_coloring,
    log_star,
)

from _util import emit


def measure(alpha: float, q_bits: int, seed: int) -> dict:
    network = gnp_graph(70, 0.12, seed=seed)
    graph = orient_by_id(network)
    ids = random_ids(network, seed=seed, bits=q_bits)
    q = 2 ** q_bits
    ledger = CostLedger()
    colors, palette = kuhn_defective_coloring(
        graph, ids, q, alpha, ledger=ledger
    )
    worst = 0.0
    for node in graph.nodes:
        conflicts = sum(
            1 for u in graph.out_neighbors(node)
            if colors[u] == colors[node]
        )
        worst = max(worst, conflicts / graph.beta(node))
    return {
        "palette": palette,
        "palette_bound": defective_palette_bound(alpha),
        "worst_rel_defect": round(worst, 3),
        "rounds": ledger.rounds,
        "log_star_q": log_star(q),
        "valid": worst <= alpha,
    }


def test_e9_kuhn_defective(benchmark):
    records = sweep(
        measure,
        grid(alpha=[0.5, 0.25, 0.1], q_bits=[20, 40], seed=[18]),
    )
    assert all(record["valid"] for record in records)
    emit("E9_kuhn_defective", render_records(
        records,
        ["alpha", "q_bits", "palette", "palette_bound",
         "worst_rel_defect", "rounds", "log_star_q", "valid"],
        title="E9: Lemma 3.4 defective coloring -- palette O(1/alpha^2), "
              "defect <= alpha * beta_v, O(log* q) rounds",
    ))
    for record in records:
        assert record["palette"] <= record["palette_bound"]
        assert record["rounds"] <= 4 * record["log_star_q"] + 4
    benchmark(measure, alpha=0.25, q_bits=32, seed=19)
