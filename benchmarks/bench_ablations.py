"""E14/E15 -- ablations of the design choices DESIGN.md calls out.

E14 (floor vs ceiling): Algorithm 2's pseudocode reduces defects by
``ceil(beta_v * eps / p)``; this implementation uses the floor
(README "faithfulness notes").  The ablation constructs minimally
feasible Eq. (7) instances and counts, per variant, the nodes whose
*reduced* instance loses Eq. (2) -- the inequality the inner Two-Sweep
run depends on.  The ceiling variant must exhibit violations; the floor
variant must exhibit none (that is the content of the fix).

E15 (free-color peel): the base solver peels nodes owning a free color
before falling back to Linial + greedy sweep.  The ablation measures
rounds with and without the peel on instances with many free colors.
"""

from __future__ import annotations

import math

from repro.analysis import grid, render_records, sweep
from repro.coloring import (
    check_arbdefective,
    random_arbdefective_instance,
)
from repro.core import solve_arbdefective_base
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    random_regular_graph,
    sequential_ids,
)
from repro.sim import CostLedger

from _util import emit


# ----------------------------------------------------------------------
# E14: floor vs ceiling in Algorithm 2's defect reduction
# ----------------------------------------------------------------------
def measure_rounding(delta: int, p: int, epsilon: float,
                     seed: int) -> dict:
    from repro.coloring import minimal_slack_oldc_instance

    n = 6 * delta
    if n * delta % 2:
        n += 1
    network = random_regular_graph(n, delta, seed=seed)
    graph = orient_by_id(network)
    instance = minimal_slack_oldc_instance(graph, p, epsilon)
    violations = {"floor": 0, "ceil": 0}
    for node in graph.nodes:
        beta = graph.beta(node)
        size = instance.list_size(node)
        weight = instance.weight(node)
        threshold = max(p, size / p) * beta
        for variant, reduce_by in (
            ("floor", math.floor(beta * epsilon / p)),
            ("ceil", math.ceil(beta * epsilon / p)),
        ):
            reduced_weight = weight - size * int(reduce_by)
            if reduced_weight <= threshold:
                violations[variant] += 1
    return {
        "n": n,
        "floor_violations": violations["floor"],
        "ceil_violations": violations["ceil"],
    }


# ----------------------------------------------------------------------
# E15: free-color peel in the base solver
# ----------------------------------------------------------------------
def measure_peel(free_fraction: float, seed: int) -> dict:
    network = gnp_graph(60, 0.12, seed=seed)
    instance = random_arbdefective_instance(
        network, slack=1.5, seed=seed, color_space_size=16
    )
    # Boost a fraction of the nodes to free-color status.
    import random as rnd

    rng = rnd.Random(seed)
    lists = dict(instance.lists)
    defects = {node: dict(instance.defects[node]) for node in network}
    boosted = 0
    for node in network.nodes:
        if rng.random() < free_fraction:
            first = lists[node][0]
            defects[node][first] = max(
                defects[node][first], network.degree(node)
            )
            boosted += 1
    from repro.coloring import ArbdefectiveInstance

    boosted_instance = ArbdefectiveInstance(
        network, lists, defects, instance.color_space_size
    )
    rounds = {}
    for peel in (True, False):
        ledger = CostLedger()
        result = solve_arbdefective_base(
            boosted_instance, sequential_ids(network), len(network),
            ledger=ledger, peel=peel,
        )
        assert check_arbdefective(
            boosted_instance, result.colors, result.orientation
        ) == []
        rounds[peel] = ledger.rounds
    return {
        "free_nodes": boosted,
        "rounds_with_peel": rounds[True],
        "rounds_without_peel": rounds[False],
    }


def test_e14_rounding_ablation(benchmark):
    records = sweep(
        measure_rounding,
        grid(delta=[5, 7, 10], p=[2, 3], epsilon=[0.3, 0.5], seed=[31]),
    )
    emit("E14_rounding_ablation", render_records(
        records,
        ["delta", "p", "epsilon", "n", "floor_violations",
         "ceil_violations"],
        title="E14 (ablation): Algorithm 2 defect reduction -- the "
              "paper's ceiling loses Eq. (2) on minimally-slack "
              "instances; the implemented floor never does",
    ))
    assert all(record["floor_violations"] == 0 for record in records)
    assert sum(record["ceil_violations"] for record in records) > 0
    benchmark(measure_rounding, delta=7, p=2, epsilon=0.3, seed=32)


def test_e15_peel_ablation(benchmark):
    records = sweep(
        measure_peel, grid(free_fraction=[0.0, 0.5, 1.0], seed=[33])
    )
    emit("E15_peel_ablation", render_records(
        records,
        ["free_fraction", "free_nodes", "rounds_with_peel",
         "rounds_without_peel"],
        title="E15 (ablation): free-color peel in the base solver",
    ))
    all_free = next(r for r in records if r["free_fraction"] == 1.0)
    assert all_free["rounds_with_peel"] < all_free["rounds_without_peel"]
    benchmark(measure_peel, free_fraction=0.5, seed=34)
