"""E6 -- list d-defective 3-coloring around the (2 Delta - 3)/3 threshold.

Section 1.1's generalization of [BHL+19]: Two-Sweep (p = 2, bidirected
view so defects bound all neighbors) solves list d-defective 3-coloring
exactly when d > (2 Delta - 3)/3.  The sweep scans d through the
threshold for several Delta values and records solve/reject outcomes and
the worst observed defect.
"""

from __future__ import annotations

from repro.analysis import (
    defective_3coloring_threshold,
    grid,
    render_records,
    sweep,
)
from repro.coloring import OLDCInstance, check_oldc, uniform_lists
from repro.core import two_sweep
from repro.graphs import (
    orient_all_out,
    random_regular_graph,
    sequential_ids,
)
from repro.sim import InfeasibleInstanceError

from _util import emit


def measure(delta: int, offset: int, seed: int) -> dict:
    n = 6 * delta
    if n * delta % 2:
        n += 1
    network = random_regular_graph(n, delta, seed=seed)
    threshold = defective_3coloring_threshold(delta)
    defect = int(threshold) + offset
    graph = orient_all_out(network)
    lists, defects = uniform_lists(network.nodes, (0, 1, 2), defect)
    instance = OLDCInstance(graph, lists, defects, 3)
    try:
        result = two_sweep(
            instance, sequential_ids(network), n, p=2
        )
    except InfeasibleInstanceError:
        return {
            "defect": defect,
            "threshold": round(threshold, 2),
            "above": defect > threshold,
            "outcome": "rejected",
            "worst_defect": None,
        }
    valid = not check_oldc(instance, result.colors)
    worst = max(
        sum(
            1 for u in network.neighbors(v)
            if result.colors[u] == result.colors[v]
        )
        for v in network
    )
    return {
        "defect": defect,
        "threshold": round(threshold, 2),
        "above": defect > threshold,
        "outcome": "solved" if valid else "INVALID",
        "worst_defect": worst,
    }


def test_e6_defective_3coloring(benchmark):
    records = sweep(
        measure,
        grid(delta=[6, 9, 12], offset=[-2, -1, 0, 1, 2], seed=[9]),
    )
    emit("E6_defective_3coloring", render_records(
        records,
        ["delta", "defect", "threshold", "above", "outcome",
         "worst_defect"],
        title="E6: list d-defective 3-coloring -- the (2 Delta - 3)/3 "
              "threshold",
    ))
    for record in records:
        if record["above"]:
            assert record["outcome"] == "solved"
            assert record["worst_defect"] <= record["defect"]
        else:
            assert record["outcome"] == "rejected"
    benchmark(measure, delta=9, offset=1, seed=10)
