"""Scale frontier benchmark: million-node coloring end to end.

Three sections, all built on the streaming CSR topology path
(:mod:`repro.graphs.streaming`) so no per-node ``Network`` dicts are
ever materialized:

* **workloads** -- greedy color reduction on a streamed ring, per
  engine, on an n ladder sized to each engine's envelope (the reference
  engine walks dicts per round, the fast engine per-node programs, the
  vectorized engine CSR columns).  Each record carries wall-clock,
  nodes/sec, rounds, and the process peak RSS after the run.  The
  headline is the largest vectorized run -- n = 1,000,000 at full
  scale.
* **sharded** -- the headline workload rerun under the sharded engine
  at 1/2/4 shards, asserting the coloring stays bit-identical to the
  serial vectorized run; each row records the execution mode (worker
  lanes vs in-process shards), total halo traffic, and per-shard
  halo/barrier breakdowns.  The best multi-shard row becomes the
  ``headline_multicore`` section.
* **build** -- topology construction throughput for the streaming
  builders (ring, G(n,p) via geometric edge skipping, random regular
  via the pairing model): edges/sec straight into CSR buffers.
* **sweep** -- a ``parallel_sweep`` over a streamed ring with the
  topology published to :mod:`repro.sim.shm` (workers map one shared
  CSR segment) vs each worker rebuilding its own copy, at 1 and 2
  workers.  Per-worker peak RSS comes from ``SweepReport.workers``;
  the shared-memory segment size is reported alongside.  The tracked
  property is that shared-mode per-worker RSS stays flat as workers
  are added (the segment is mapped, not copied).

Chunked execution: the largest vectorized workload is also run once
with ``REPRO_SIM_CHUNK`` set, recording the chunked wall-clock and
verifying the coloring is identical -- the memory knob must never be a
semantics knob.

Results go to ``BENCH_scale.json`` at the repository root (uploaded as
a CI artifact, with a run-manifest sidecar) and to
``benchmarks/results/BENCH_scale.txt``.

Run directly for the full sizes, or with ``--smoke`` for a seconds-long
sanity pass::

    PYTHONPATH=src python benchmarks/bench_scale_frontier.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.graphs.streaming import (
    gnp_edges,
    inflated_seed_coloring,
    regular_edges,
    ring_edges,
    stream_ring,
)
from repro.sim import (
    CostLedger,
    parallel_sweep,
    reset_shard_stats,
    shard_stats,
    shm,
    use_engine,
    use_shards,
)
from repro.sim.compiled import CompiledNetwork
from repro.obs.manifest import peak_rss_kb
from repro.substrates.greedy import greedy_color_reduction

from _util import emit, write_manifest_sidecar

REPO_ROOT = pathlib.Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scale.json"

#: Palette handed to :func:`inflated_seed_coloring`; on a ring (Delta=2,
#: target=3) this yields q in {12, 13, 14} and therefore ~10 reduction
#: rounds -- enough rounds to amortize setup, few enough that the
#: largest n stays minutes, not hours.
PALETTE = 14

#: Per-engine n ladders.  Each engine gets sizes inside its envelope;
#: the vectorized ladder tops out at the million-node headline.
LADDERS = {
    "reference": [2_000, 20_000],
    "fast": [20_000, 200_000],
    "vectorized": [100_000, 1_000_000],
}
SMOKE_LADDERS = {
    "reference": [500],
    "fast": [1_000],
    "vectorized": [2_000],
}

#: Shard counts for the sharded-engine ladder over the headline n.
#: 1 exercises the fallback path (must price at serial vectorized);
#: 2 and 4 run the worker lanes with halo exchange.
SHARD_COUNTS = [1, 2, 4]

#: Sweep section sizing: ring size shared across workers, trials per
#: sweep, and the worker counts compared.
SWEEP_N = 200_000
SWEEP_SMOKE_N = 5_000
SWEEP_TRIALS = 4
SWEEP_WORKERS = [1, 2]


def _solve_ring(compiled: CompiledNetwork, engine: str):
    """One greedy color reduction on a streamed ring; returns
    ``(colors, q, rounds, wall_s)``."""
    colors, q = inflated_seed_coloring(compiled, PALETTE)
    target = compiled.raw_max_degree() + 1
    ledger = CostLedger()
    start = time.perf_counter()
    with use_engine(engine):
        result = greedy_color_reduction(compiled, colors, q, target,
                                        ledger=ledger)
    wall_s = time.perf_counter() - start
    return result, q, ledger.rounds, wall_s


def _spot_check(compiled: CompiledNetwork, result: Dict) -> None:
    """Cheap validity probe: every ring edge must be bichromatic."""
    indptr, indices = compiled.indptr, compiled.indices
    step = max(1, compiled.n // 1024)
    for i in range(0, compiled.n, step):
        for j in indices[indptr[i]:indptr[i + 1]]:
            if result[i] == result[j]:
                raise AssertionError(
                    f"monochromatic edge ({i}, {j}) at n={compiled.n}"
                )


def _bench_workloads(ladders: Dict[str, List[int]]) -> List[Dict]:
    rows: List[Dict] = []
    for engine, sizes in ladders.items():
        for n in sizes:
            compiled = stream_ring(n)
            result, q, rounds, wall_s = _solve_ring(compiled, engine)
            _spot_check(compiled, result)
            rows.append({
                "engine": engine,
                "n": n,
                "m": compiled.m,
                "q": q,
                "rounds": rounds,
                "wall_s": round(wall_s, 4),
                "nodes_per_s": round(n / wall_s) if wall_s > 0 else None,
                "peak_rss_kb": peak_rss_kb(),
            })
    return rows


def _bench_chunked(headline_n: int) -> Dict:
    """Re-run the headline workload chunked; colors must be identical."""
    compiled = stream_ring(headline_n)
    baseline, _, _, plain_s = _solve_ring(compiled, "vectorized")
    chunk = max(1, headline_n // 8)
    os.environ["REPRO_SIM_CHUNK"] = str(chunk)
    try:
        chunked, _, _, chunked_s = _solve_ring(compiled, "vectorized")
    finally:
        del os.environ["REPRO_SIM_CHUNK"]
    if chunked != baseline:
        raise AssertionError(
            f"chunked coloring diverged at n={headline_n} chunk={chunk}"
        )
    return {
        "n": headline_n,
        "chunk": chunk,
        "plain_s": round(plain_s, 4),
        "chunked_s": round(chunked_s, 4),
        "identical": True,
    }


def _bench_sharded(headline_n: int) -> Dict:
    """Sharded-engine ladder over the headline workload.

    Every shard count must reproduce the serial vectorized coloring
    bit-for-bit -- the ladder measures layout, never semantics.  Rows
    carry the execution mode actually taken (``process`` worker lanes
    vs in-process ``serial`` shards vs fallback), total halo traffic,
    and the per-shard halo/barrier breakdown from the engine's stats.
    """
    compiled = stream_ring(headline_n)
    baseline, _, _, baseline_s = _solve_ring(compiled, "vectorized")
    rows: List[Dict] = []
    for shards in SHARD_COUNTS:
        reset_shard_stats()
        with use_shards(shards):
            result, q, rounds, wall_s = _solve_ring(compiled, "sharded")
        if result != baseline:
            raise AssertionError(
                f"sharded coloring diverged at n={headline_n} "
                f"shards={shards}"
            )
        last = shard_stats().get("last_run") or {}
        nodes_per_s = round(headline_n / wall_s) if wall_s > 0 else None
        rows.append({
            "shards": shards,
            "n": headline_n,
            "q": q,
            "rounds": rounds,
            "wall_s": round(wall_s, 4),
            "nodes_per_s": nodes_per_s,
            "peak_rss_kb": peak_rss_kb(),
            "mode": last.get("mode", "fallback"),
            "backend": last.get("backend"),
            "halo_bytes": last.get("halo_bytes"),
            "barrier_wait_s": last.get("barrier_wait_s"),
            "per_shard": last.get("per_shard"),
            "identical": True,
        })
    return {
        "n": headline_n,
        "serial_wall_s": round(baseline_s, 4),
        "serial_nodes_per_s": (round(headline_n / baseline_s)
                               if baseline_s > 0 else None),
        "rows": rows,
    }


def _bench_build(smoke: bool) -> List[Dict]:
    from repro.graphs.streaming import csr_from_edges

    scale = 50 if smoke else 1
    ring_n = 1_000_000 // scale
    gnp_n = 200_000 // scale
    reg_n = 100_000 // scale
    cases = [
        ("ring", ring_n, lambda: ring_edges(ring_n)),
        ("gnp", gnp_n, lambda: gnp_edges(gnp_n, 2e-5 * scale, 7)),
        ("regular", reg_n, lambda: regular_edges(reg_n, 4, 7)),
    ]
    rows: List[Dict] = []
    for name, n, edges in cases:
        # The generator is created inside the timed region so edge
        # generation and CSR fill are both on the clock; the stream
        # flows straight into the fill, never into a Python list.
        start = time.perf_counter()
        indptr, indices = csr_from_edges(n, edges())
        wall_s = time.perf_counter() - start
        m = len(indices) // 2
        rows.append({
            "builder": name,
            "n": n,
            "m": m,
            "wall_s": round(wall_s, 4),
            "edges_per_s": round(m / wall_s) if wall_s > 0 else None,
        })
    return rows


# ----------------------------------------------------------------------
# Sweep section: the measure function must be importable by pool
# workers, so it lives at module scope.  It resolves the topology via
# shm.lookup -- a mapped shared segment when the parent published one,
# a worker-local rebuild otherwise.
# ----------------------------------------------------------------------
def _sweep_measure(seed: int, n: int) -> Dict:
    compiled = shm.lookup(("ring-stream", n)) or stream_ring(n)
    colors, q = inflated_seed_coloring(compiled, PALETTE)
    target = compiled.raw_max_degree() + 1
    result = greedy_color_reduction(compiled, colors, q, target)
    return {"distinct": len(set(result.values())), "q": q}


def _bench_sweep(n: int) -> Dict:
    compiled = stream_ring(n)
    key = ("ring-stream", n)
    params = [{"seed": seed, "n": n} for seed in range(SWEEP_TRIALS)]
    modes: Dict[str, List[Dict]] = {}
    for mode in ("shared", "rebuild"):
        topologies = {key: compiled} if mode == "shared" else None
        for workers in SWEEP_WORKERS:
            start = time.perf_counter()
            report = parallel_sweep(
                _sweep_measure, params, max_workers=workers,
                engine="vectorized", report=True, topologies=topologies,
            )
            wall_s = time.perf_counter() - start
            worker_rss = [w.get("rss_kb") for w in report.workers
                          if w.get("rss_kb") is not None]
            modes.setdefault(mode, []).append({
                "workers": workers,
                "pool_workers": len(report.workers),
                "wall_s": round(wall_s, 4),
                "worker_peak_rss_kb": worker_rss,
                "max_worker_rss_kb": max(worker_rss, default=None),
            })
    segment = shm.segment_bytes(key)
    return {
        "n": n,
        "trials": SWEEP_TRIALS,
        "segment_bytes": segment,
        "shared": modes["shared"],
        "rebuild": modes["rebuild"],
    }


def run_benchmark(smoke: bool) -> Dict:
    ladders = SMOKE_LADDERS if smoke else LADDERS
    workloads = _bench_workloads(ladders)
    headline_n = max(ladders["vectorized"])
    headline = next(
        row for row in workloads
        if row["engine"] == "vectorized" and row["n"] == headline_n
    )
    chunked = _bench_chunked(headline_n)
    sharded = _bench_sharded(headline_n)
    build = _bench_build(smoke)
    sweep = _bench_sweep(SWEEP_SMOKE_N if smoke else SWEEP_N)
    from repro.sim import arrays

    # The multi-core headline: the best multi-shard row, priced against
    # the serial vectorized baseline measured on the same instance.
    multi_rows = [row for row in sharded["rows"] if row["shards"] > 1]
    best = max(multi_rows, key=lambda row: row["nodes_per_s"] or 0)
    serial_rate = sharded["serial_nodes_per_s"]
    headline_multicore = {
        "engine": "sharded",
        "shards": best["shards"],
        "mode": best["mode"],
        "n": best["n"],
        "nodes_per_s": best["nodes_per_s"],
        "wall_s": best["wall_s"],
        "peak_rss_kb": best["peak_rss_kb"],
        "vs_serial": (round(best["nodes_per_s"] / serial_rate, 3)
                      if best["nodes_per_s"] and serial_rate else None),
    }

    return {
        "benchmark": "bench_scale_frontier",
        "description": ("streamed-CSR million-node coloring: per-engine "
                        "scale ladders, builder throughput, shared-"
                        "memory sweeps"),
        "smoke": smoke,
        "python": platform.python_version(),
        "arrays_backend": {
            "backend": arrays.backend_name(),
            "numpy": arrays.numpy_version(),
        },
        "headline": {
            "engine": "vectorized",
            "n": headline["n"],
            "nodes_per_s": headline["nodes_per_s"],
            "wall_s": headline["wall_s"],
            "peak_rss_kb": headline["peak_rss_kb"],
        },
        "headline_multicore": headline_multicore,
        "workloads": workloads,
        "chunked": chunked,
        "sharded": sharded,
        "build": build,
        "sweep": sweep,
    }


def _render(report: Dict) -> str:
    lines = [
        "BENCH_scale: streamed-CSR scale frontier "
        f"(smoke={report['smoke']}, "
        f"backend={report['arrays_backend']['backend']})",
        f"{'engine':<12} {'n':>9} {'m':>9} {'rounds':>7} {'wall_s':>9} "
        f"{'nodes/s':>11} {'rss MiB':>8}",
    ]
    for row in report["workloads"]:
        rss = row["peak_rss_kb"]
        lines.append(
            f"{row['engine']:<12} {row['n']:>9} {row['m']:>9} "
            f"{row['rounds']:>7} {row['wall_s']:>9.3f} "
            f"{row['nodes_per_s']:>11,} "
            f"{'n/a' if rss is None else f'{rss / 1024:.0f}':>8}"
        )
    chunked = report["chunked"]
    lines.append(
        f"chunked n={chunked['n']} chunk={chunked['chunk']}: "
        f"{chunked['plain_s']:.3f}s plain vs {chunked['chunked_s']:.3f}s "
        f"chunked, colors identical"
    )
    sharded = report["sharded"]
    lines.append(
        f"sharded n={sharded['n']:,} (serial vectorized "
        f"{sharded['serial_nodes_per_s']:,} nodes/s):"
    )
    for row in sharded["rows"]:
        halo = row["halo_bytes"]
        lines.append(
            f"  shards={row['shards']} mode={row['mode']:<8} "
            f"wall {row['wall_s']:>8.3f}s {row['nodes_per_s']:>11,} "
            f"nodes/s  halo "
            f"{'n/a' if halo is None else f'{halo:,} B'}"
        )
    for row in report["build"]:
        lines.append(
            f"build {row['builder']:<8} n={row['n']:>9} m={row['m']:>9} "
            f"{row['wall_s']:>8.3f}s {row['edges_per_s']:>11,} edges/s"
        )
    sweep = report["sweep"]
    seg = sweep["segment_bytes"]
    lines.append(
        f"sweep n={sweep['n']} ({sweep['trials']} trials, segment "
        f"{'n/a' if seg is None else f'{seg / 2**20:.1f} MiB'}):"
    )
    for mode in ("shared", "rebuild"):
        for row in sweep[mode]:
            rss = row["max_worker_rss_kb"]
            lines.append(
                f"  {mode:<8} workers={row['workers']} "
                f"wall {row['wall_s']:>7.3f}s  max worker rss "
                f"{'n/a' if rss is None else f'{rss / 1024:.0f} MiB'}"
            )
    head = report["headline"]
    lines.append(
        f"headline: vectorized n={head['n']:,} at "
        f"{head['nodes_per_s']:,} nodes/s ({head['wall_s']:.2f}s)"
    )
    multi = report["headline_multicore"]
    vs = multi["vs_serial"]
    lines.append(
        f"headline multicore: sharded x{multi['shards']} "
        f"({multi['mode']}) n={multi['n']:,} at "
        f"{multi['nodes_per_s']:,} nodes/s"
        f"{'' if vs is None else f' ({vs:.2f}x serial)'}"
    )
    return "\n".join(lines)


def write_report(report: Dict, json_path: pathlib.Path = JSON_PATH) -> None:
    json_path.write_text(json.dumps(report, indent=2) + "\n")
    emit("BENCH_scale", _render(report))
    print(f"wrote {json_path}")
    write_manifest_sidecar(json_path, extra={
        "benchmark": report["benchmark"],
        "smoke": report["smoke"],
        "headline": report["headline"],
        "headline_multicore": report["headline_multicore"],
        # Per-shard halo/barrier accounting for the multi-core rows --
        # the provenance trail for the parallel numbers above.
        "sharded": [
            {
                "shards": row["shards"],
                "mode": row["mode"],
                "halo_bytes": row["halo_bytes"],
                "barrier_wait_s": row["barrier_wait_s"],
                "per_shard": row["per_shard"],
            }
            for row in report["sharded"]["rows"]
        ],
    })


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def test_scale_benchmark(benchmark):
    """Pytest entry: smoke-scale run with sanity assertions."""
    report = run_benchmark(smoke=True)
    assert report["headline"]["nodes_per_s"] > 0
    assert report["chunked"]["identical"] is True
    for row in report["workloads"]:
        assert row["rounds"] > 0
    assert report["headline_multicore"]["nodes_per_s"] > 0
    for row in report["sharded"]["rows"]:
        assert row["identical"] is True
    benchmark(_solve_ring, stream_ring(2_000), "vectorized")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI sanity runs")
    parser.add_argument("--out", default=str(JSON_PATH),
                        help="path for the JSON report")
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    write_report(report, pathlib.Path(args.out))
    print(_render(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
