"""E16 -- ablation: the splitting parameter lambda in Theorem 1.2.

The proof fixes ``lambda = 4``.  Smaller lambda means more reduction
levels but smaller per-level instances; larger lambda means fewer levels
but bigger sub-lists (and messages).  The ablation sweeps lambda,
adjusting the instance slack to each lambda's own requirement, and
reports rounds, message size, and the required slack factor -- showing
why 4 is the sweet spot the paper picked.
"""

from __future__ import annotations

import random

from repro.analysis import grid, render_records, sweep
from repro.coloring import OLDCInstance, check_oldc
from repro.core import congest_oldc, reduction_depth
from repro.core.congest_oldc import congest_kappa
from repro.graphs import (
    orient_by_id,
    random_bounded_degree_graph,
    sequential_ids,
)
from repro.sim import CostLedger

from _util import emit


def make_instance(graph, color_space, lam, seed):
    kappa = congest_kappa(color_space, lam)
    need = kappa ** reduction_depth(color_space, lam)
    rng = random.Random(seed)
    size = max(4, color_space // 2)
    lists, defects = {}, {}
    for node in graph.nodes:
        beta = graph.beta(node)
        d = int(need * beta / size) + 1
        colors = tuple(sorted(rng.sample(range(color_space), size)))
        lists[node] = colors
        defects[node] = {color: d for color in colors}
    return OLDCInstance(graph, lists, defects, color_space), need


def measure(lam: int, seed: int) -> dict:
    color_space = 256
    network = random_bounded_degree_graph(36, 5, seed=seed)
    graph = orient_by_id(network)
    instance, need = make_instance(graph, color_space, lam, seed)
    ledger = CostLedger()
    result = congest_oldc(
        instance, sequential_ids(network), len(network),
        ledger=ledger, lam=lam,
    )
    violations = check_oldc(instance, result.colors)
    return {
        "levels": reduction_depth(color_space, lam),
        "required_slack": round(need, 1),
        "rounds": ledger.rounds,
        "max_msg_bits": ledger.max_message_bits,
        "valid": not violations,
    }


def test_e16_lambda_ablation(benchmark):
    records = sweep(measure, grid(lam=[2, 4, 8, 16, 64], seed=[35]))
    assert all(record["valid"] for record in records)
    emit("E16_lambda_ablation", render_records(
        records,
        ["lam", "levels", "required_slack", "rounds", "max_msg_bits",
         "valid"],
        title="E16 (ablation): Theorem 1.2 splitting parameter lambda "
              "at C = 256 -- levels vs slack vs message size",
    ))
    # Message size grows with lambda (sub-lists of ceil(sqrt(lam))
    # colors); the paper's lambda = 4 keeps both slack and messages low.
    small = next(r for r in records if r["lam"] == 4)
    big = next(r for r in records if r["lam"] == 64)
    assert big["max_msg_bits"] >= small["max_msg_bits"]
    benchmark(measure, lam=4, seed=36)
