"""Engine microbenchmark: the fast scheduler path vs the reference path.

Fixed scheduler-stress workloads on the three topology families the
experiment suite leans on (G(n,p), trees, cliques), each run through both
execution engines of :class:`repro.sim.Scheduler`:

* ``gnp_stragglers`` -- 2,000-node G(n,p) where most nodes halt within a
  few rounds and a handful run for hundreds: the regime that punishes the
  reference engine's per-round full-node scans and dict rebuilds, and the
  headline number for the fast path's active-set scheduling;
* ``gnp_greedy_sweep`` -- the repository's real greedy arbdefective
  sweep (one color class decides per round), the paper's canonical
  protocol shape;
* ``tree_flood`` -- repeated flooding on a binary tree: every node stays
  active and chatty, measuring per-message overhead (bit accounting,
  bandwidth hooks);
* ``clique_exchange`` -- all-to-all broadcast on a clique: the densest
  message pattern per round;
* ``linial_algebraic`` -- the repository's real Linial coloring on a
  G(n,p), exercising the algebraic recoloring substrate (and its
  process-level caches) end to end;
* ``star_fanout`` -- flooding on a star: one node broadcasts to n-1
  neighbors every round, the worst case for per-copy delivery overhead
  and the best case for shared broadcast envelopes.

Per (workload, engine) the harness reports the *best* of ``REPEATS``
interleaved runs (the usual low-noise estimator) together with the
population stddev of the repeats, so a noisy box is visible in the data
instead of silently inflating a speedup.

Every run's (rounds, messages, bits) fingerprint is compared across
engines, so the benchmark doubles as an end-to-end equivalence check.
Results go to ``BENCH_engine.json`` at the repository root (uploaded as a
CI artifact) and to ``benchmarks/results/BENCH_engine.txt``.

Run directly for the full sizes, or with ``--smoke`` for a seconds-long
sanity pass::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.coloring import random_arbdefective_instance
from repro.graphs import (
    binary_tree,
    complete_graph,
    gnp_graph,
    sequential_ids,
    star_graph,
)
from repro.sim import CostLedger, Network, NodeProgram, Scheduler, use_engine
from repro.substrates import greedy_arbdefective_sweep, linial_coloring

from _util import emit

REPO_ROOT = pathlib.Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_engine.json"

#: Wall-clock repetitions per (workload, engine); the median is reported.
REPEATS = 3

#: The workload whose speedup is the tracked headline number.
HEADLINE = "gnp_stragglers"


# ----------------------------------------------------------------------
# Synthetic scheduler-stress programs
# ----------------------------------------------------------------------
class _Straggler(NodeProgram):
    """Chat for two rounds, then halt after ``lifetime`` rounds total."""

    def __init__(self, node, lifetime: int):
        self.node = node
        self.lifetime = lifetime
        self.seen = 0

    def on_round(self, ctx):
        self.seen += 1
        if ctx.round_number <= 2:
            ctx.broadcast("warm", self.node, bits=16)
        if self.seen >= self.lifetime:
            ctx.halt()

    def output(self):
        return self.seen


class _Flooder(NodeProgram):
    """Broadcast a counter every round for ``rounds`` rounds."""

    def __init__(self, node, rounds: int):
        self.node = node
        self.rounds = rounds
        self.heard = 0

    def on_round(self, ctx):
        self.heard += len(ctx.inbox)
        if ctx.round_number > self.rounds:
            ctx.halt()
            return
        ctx.broadcast("flood", ctx.round_number, bits=24)

    def output(self):
        return self.heard


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
Runner = Callable[[Optional[str]], Tuple[Network, CostLedger, Dict]]


def _run_scheduler(network: Network, programs, engine: Optional[str]):
    scheduler = Scheduler(network, programs)
    scheduler.run(engine=engine)
    return scheduler.outputs(), scheduler.ledger


def workload_gnp_stragglers(n: int, engine: Optional[str]):
    network = gnp_graph(n, 8.0 / n, seed=11)
    long_life = max(50, n // 2)
    stride = max(1, n // 16)
    programs = {}
    for i, node in enumerate(network):
        lifetime = long_life if i % stride == 0 else 2 + (i % 8)
        programs[node] = _Straggler(node, lifetime)
    return _run_scheduler(network, programs, engine) + (network,)


def workload_gnp_greedy_sweep(n: int, engine: Optional[str]):
    network = gnp_graph(n, 6.0 / n, seed=13)
    instance = random_arbdefective_instance(
        network, slack=1.5, seed=13,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ledger = CostLedger()
    with use_engine(engine or "fast"):
        result = greedy_arbdefective_sweep(
            instance, sequential_ids(network), len(network), ledger=ledger
        )
    return result.colors, ledger, network


def workload_tree_flood(n: int, engine: Optional[str]):
    depth = max(2, n.bit_length() - 1)
    network = binary_tree(depth)
    rounds = max(20, min(200, n // 8))
    programs = {node: _Flooder(node, rounds) for node in network}
    return _run_scheduler(network, programs, engine) + (network,)


def workload_clique_exchange(n: int, engine: Optional[str]):
    size = max(8, int(n ** 0.5) * 4)
    network = complete_graph(size)
    rounds = max(10, n // 40)
    programs = {node: _Flooder(node, rounds) for node in network}
    return _run_scheduler(network, programs, engine) + (network,)


def workload_linial_algebraic(n: int, engine: Optional[str]):
    # Linial needs q >> Delta^2 to make progress, so run it where it
    # belongs: a bounded-degree graph colored by unique ids.  One pass is
    # only O(log* q) rounds, so repeat it -- which is also exactly the
    # shape the substrate caches (schedules, polynomial families) serve.
    network = binary_tree(max(3, n.bit_length() - 1))
    ids = sequential_ids(network)
    reps = max(3, n // 100)
    ledger = CostLedger()
    with use_engine(engine or "fast"):
        for _ in range(reps):
            colors, _ = linial_coloring(
                network, ids, len(network), ledger=ledger
            )
    return colors, ledger, network


def workload_star_fanout(n: int, engine: Optional[str]):
    network = star_graph(max(7, n - 1))
    rounds = max(20, min(400, n // 4))
    programs = {node: _Flooder(node, rounds) for node in network}
    return _run_scheduler(network, programs, engine) + (network,)


WORKLOADS = [
    ("gnp_stragglers", workload_gnp_stragglers),
    ("gnp_greedy_sweep", workload_gnp_greedy_sweep),
    ("tree_flood", workload_tree_flood),
    ("clique_exchange", workload_clique_exchange),
    ("linial_algebraic", workload_linial_algebraic),
    ("star_fanout", workload_star_fanout),
]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _time_once(factory, n: int, engine: str):
    start = time.perf_counter()
    out, ledger, network = factory(n, engine)
    elapsed = time.perf_counter() - start
    fingerprint = (ledger.rounds, ledger.messages, ledger.bits,
                   ledger.max_message_bits)
    return elapsed, fingerprint, out, network


def run_benchmark(n: int, smoke: bool) -> Dict:
    rows: List[Dict] = []
    for name, factory in WORKLOADS:
        # Interleave the engines so clock drift hits both equally;
        # best-of-REPEATS per engine, stddev reported alongside.
        ref_times: List[float] = []
        fast_times: List[float] = []
        for _ in range(REPEATS):
            elapsed, ref_fp, ref_out, network = _time_once(
                factory, n, "reference"
            )
            ref_times.append(elapsed)
            elapsed, fast_fp, fast_out, _ = _time_once(factory, n, "fast")
            fast_times.append(elapsed)
        if ref_fp != fast_fp or ref_out != fast_out:
            raise AssertionError(
                f"engine mismatch on {name}: reference {ref_fp} "
                f"vs fast {fast_fp}"
            )
        ref_s = min(ref_times)
        fast_s = min(fast_times)
        rows.append({
            "workload": name,
            "n": len(network),
            "m": network.edge_count(),
            "rounds": ref_fp[0],
            "messages": ref_fp[1],
            "bits": ref_fp[2],
            "reference_s": round(ref_s, 6),
            "reference_stddev_s": round(statistics.pstdev(ref_times), 6),
            "fast_s": round(fast_s, 6),
            "fast_stddev_s": round(statistics.pstdev(fast_times), 6),
            "speedup": round(ref_s / fast_s, 3) if fast_s > 0 else None,
        })
    headline = next(row for row in rows if row["workload"] == HEADLINE)
    return {
        "benchmark": "bench_engine",
        "description": "reference vs fast scheduler engine, fixed workloads",
        "smoke": smoke,
        "workload_scale_n": n,
        "python": platform.python_version(),
        "repeats": REPEATS,
        "headline": {
            "workload": HEADLINE,
            "speedup": headline["speedup"],
        },
        "workloads": rows,
    }


def _render(report: Dict) -> str:
    lines = [
        "BENCH_engine: fast scheduler engine vs reference "
        f"(scale n={report['workload_scale_n']}, smoke={report['smoke']}, "
        f"best of {report['repeats']} with stddev)",
        f"{'workload':<18} {'n':>6} {'m':>8} {'rounds':>7} "
        f"{'messages':>10} {'ref_s':>9} {'±sd':>7} "
        f"{'fast_s':>9} {'±sd':>7} {'speedup':>8}",
    ]
    for row in report["workloads"]:
        lines.append(
            f"{row['workload']:<18} {row['n']:>6} {row['m']:>8} "
            f"{row['rounds']:>7} {row['messages']:>10} "
            f"{row['reference_s']:>9.4f} {row['reference_stddev_s']:>7.4f} "
            f"{row['fast_s']:>9.4f} {row['fast_stddev_s']:>7.4f} "
            f"{row['speedup']:>7.2f}x"
        )
    lines.append(
        f"headline ({report['headline']['workload']}): "
        f"{report['headline']['speedup']:.2f}x"
    )
    return "\n".join(lines)


def write_report(report: Dict, json_path: pathlib.Path = JSON_PATH) -> None:
    json_path.write_text(json.dumps(report, indent=2) + "\n")
    emit("BENCH_engine", _render(report))
    print(f"wrote {json_path}")


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def test_engine_benchmark(benchmark):
    """Pytest entry: smoke-scale run + fingerprint equivalence."""
    report = run_benchmark(n=400, smoke=True)
    for row in report["workloads"]:
        # The fast path must never lose badly; full-scale wins are
        # tracked in BENCH_engine.json, not asserted here (CI noise).
        assert row["speedup"] > 0.5
    benchmark(workload_gnp_stragglers, 400, None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI sanity runs")
    parser.add_argument("--n", type=int, default=None,
                        help="override the workload scale")
    parser.add_argument("--out", default=str(JSON_PATH),
                        help="path for the JSON report")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (300 if args.smoke else 2000)
    report = run_benchmark(n=n, smoke=args.smoke)
    write_report(report, pathlib.Path(args.out))
    print(_render(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
