"""Engine microbenchmark: fast and vectorized scheduler paths vs reference.

Fixed scheduler-stress workloads on the three topology families the
experiment suite leans on (G(n,p), trees, cliques), each run through the
three execution engines of :class:`repro.sim.Scheduler`:

* ``gnp_stragglers`` -- 2,000-node G(n,p) where most nodes halt within a
  few rounds and a handful run for hundreds: the regime that punishes the
  reference engine's per-round full-node scans and dict rebuilds, and the
  headline number for the fast path's active-set scheduling;
* ``gnp_greedy_sweep`` -- the repository's real greedy arbdefective
  sweep (one color class decides per round), the paper's canonical
  protocol shape;
* ``tree_flood`` -- repeated flooding on a binary tree: every node stays
  active and chatty, measuring per-message overhead (bit accounting,
  bandwidth hooks);
* ``clique_exchange`` -- all-to-all broadcast on a clique: the densest
  message pattern per round;
* ``linial_algebraic`` -- the repository's real Linial coloring on a
  G(n,p), exercising the algebraic recoloring substrate (and its
  process-level caches) end to end;
* ``star_fanout`` -- flooding on a star: one node broadcasts to n-1
  neighbors every round, the worst case for per-copy delivery overhead
  and the best case for shared broadcast envelopes;
* ``two_sweep`` -- the paper's Algorithm 1 (Theorem 1.1, eps = 0) at
  E1's density with q = n color classes: one class acts per round, the
  regime where per-node dispatch dominates and the Two-Sweep kernel
  touches only the acting class;
* ``fast_two_sweep`` -- Algorithm 2 end to end (Lemma 3.4 defective
  coloring + inner sweep) with 40-bit identifiers, the E2 regime.

The synthetic stress programs come with *bench-local*
:class:`~repro.sim.kernels.RoundKernel` registrations (the registry is
open to any homogeneous program, not just the library substrates), so
every workload here exercises the vectorized engine for real; the
substrate workloads (``gnp_greedy_sweep``, ``linial_algebraic``) hit the
library kernels shipped next to their programs.

Per (workload, engine) the harness reports the *best* of ``REPEATS``
interleaved runs (the usual low-noise estimator) together with the
population stddev of the repeats, so a noisy box is visible in the data
instead of silently inflating a speedup.

Every run's (rounds, messages, bits) fingerprint is compared across
engines, so the benchmark doubles as an end-to-end equivalence check.
Results go to ``BENCH_engine.json`` at the repository root (uploaded as a
CI artifact) and to ``benchmarks/results/BENCH_engine.txt``.  With
``REPRO_SIM_CACHE_DIR`` set, the substrate caches are loaded from and
spilled back to a versioned file there, so repeated invocations start
warm.

Run directly for the full sizes, or with ``--smoke`` for a seconds-long
sanity pass::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.coloring import random_arbdefective_instance, random_oldc_instance
from repro.core import fast_two_sweep, two_sweep
from repro.graphs import (
    binary_tree,
    complete_graph,
    gnp_graph,
    orient_by_id,
    random_ids,
    sequential_ids,
    star_graph,
)
from repro.sim import (
    CostLedger,
    KernelRound,
    Network,
    NodeProgram,
    RoundKernel,
    Scheduler,
    register_kernel,
    use_engine,
)
from repro.sim.kernels import fanout_totals
from repro.substrates import greedy_arbdefective_sweep, linial_coloring
from repro.substrates.cache import load_from_disk, save_to_disk

from _util import emit, write_manifest_sidecar

REPO_ROOT = pathlib.Path(__file__).parent.parent
JSON_PATH = REPO_ROOT / "BENCH_engine.json"

#: Wall-clock repetitions per (workload, engine); the median is reported.
REPEATS = 3

#: The workload whose (reference / fast) speedup is the tracked headline.
HEADLINE = "gnp_stragglers"

#: The homogeneous workload whose (fast / vectorized) ratio is tracked as
#: the vectorized engine's headline.
VECTOR_HEADLINE = "tree_flood"


def _arrays_backend() -> Dict:
    """Which kernel column backend the vectorized runs used."""
    from repro.sim import arrays

    return {
        "backend": arrays.backend_name(),
        "numpy": arrays.numpy_version(),
    }


# ----------------------------------------------------------------------
# Synthetic scheduler-stress programs
# ----------------------------------------------------------------------
class _Straggler(NodeProgram):
    """Chat for two rounds, then halt after ``lifetime`` rounds total."""

    def __init__(self, node, lifetime: int):
        self.node = node
        self.lifetime = lifetime
        self.seen = 0

    def on_round(self, ctx):
        self.seen += 1
        if ctx.round_number <= 2:
            ctx.broadcast("warm", self.node, bits=16)
        if self.seen >= self.lifetime:
            ctx.halt()

    def output(self):
        return self.seen


class _Flooder(NodeProgram):
    """Broadcast a counter every round for ``rounds`` rounds."""

    def __init__(self, node, rounds: int):
        self.node = node
        self.rounds = rounds
        self.heard = 0

    def on_round(self, ctx):
        self.heard += len(ctx.inbox)
        if ctx.round_number > self.rounds:
            ctx.halt()
            return
        ctx.broadcast("flood", ctx.round_number, bits=24)

    def output(self):
        return self.heard


# ----------------------------------------------------------------------
# Bench-local vectorized kernels
#
# Both stress programs are pure broadcast clocks: their entire round
# behavior is a function of the round number and the topology, so the
# kernels reduce each round to a handful of precomputed totals.  They
# decline CONGEST runs (the bench only measures LOCAL; the scheduler
# falls back to the fast engine, which is exact under any model) --
# registering them here also demonstrates that the kernel registry is
# open to program classes outside the library substrates.
# ----------------------------------------------------------------------
class _StragglerKernel(RoundKernel):
    """Stragglers broadcast in rounds 1-2 and halt on a fixed schedule."""

    def prepare(self, compiled, programs, bandwidth):
        from repro.sim import LocalModel

        if type(bandwidth) is not LocalModel:
            return None
        if any(program.seen for program in programs):
            return None
        degrees = compiled.degrees
        total_copies, envelopes = fanout_totals(compiled)
        copies_r2 = 0
        envelopes_r2 = 0
        halts: Dict[int, int] = {}
        for i, program in enumerate(programs):
            halt_round = max(1, program.lifetime)
            halts[halt_round] = halts.get(halt_round, 0) + 1
            if halt_round >= 2 and degrees[i]:
                copies_r2 += degrees[i]
                envelopes_r2 += 1
        return {
            "halts": halts,
            "remaining": len(programs),
            "round1": (total_copies, envelopes),
            "round2": (copies_r2, envelopes_r2),
        }

    def step(self, round_number, columns, inboxes) -> KernelRound:
        remaining = columns["remaining"] - columns["halts"].get(
            round_number, 0
        )
        columns["remaining"] = remaining
        if round_number <= 2:
            copies, envelopes = columns["round1" if round_number == 1
                                        else "round2"]
            return KernelRound(
                active=remaining,
                messages=copies,
                bits=copies * 16,
                max_message_bits=16 if copies else 0,
                broadcasts=envelopes,
            )
        return KernelRound(active=remaining)

    def finalize(self, columns, programs) -> None:
        for program in programs:
            program.seen = max(1, program.lifetime)


class _FlooderKernel(RoundKernel):
    """Flooders broadcast every round until a shared cutoff, then halt."""

    def prepare(self, compiled, programs, bandwidth):
        from repro.sim import LocalModel

        if type(bandwidth) is not LocalModel:
            return None
        rounds = programs[0].rounds
        for program in programs:
            if program.rounds != rounds or program.heard:
                return None
        total_copies, envelopes = fanout_totals(compiled)
        return {
            "rounds": rounds,
            "n": len(programs),
            "degrees": compiled.degrees,
            "total_copies": total_copies,
            "envelopes": envelopes,
        }

    def step(self, round_number, columns, inboxes) -> KernelRound:
        if round_number > columns["rounds"]:
            return KernelRound(active=0)
        copies = columns["total_copies"]
        return KernelRound(
            active=columns["n"],
            messages=copies,
            bits=copies * 24,
            max_message_bits=24 if copies else 0,
            broadcasts=columns["envelopes"],
        )

    def finalize(self, columns, programs) -> None:
        # Every neighbor broadcast in rounds 1..R; node v ingested one
        # copy per neighbor per round in rounds 2..R+1.
        rounds = columns["rounds"]
        for program, degree in zip(programs, columns["degrees"]):
            program.heard = rounds * degree


register_kernel(_Straggler, _StragglerKernel)
register_kernel(_Flooder, _FlooderKernel)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
Runner = Callable[[Optional[str]], Tuple[Network, CostLedger, Dict]]


def _run_scheduler(network: Network, programs, engine: Optional[str]):
    scheduler = Scheduler(network, programs)
    scheduler.run(engine=engine)
    return scheduler.outputs(), scheduler.ledger


def workload_gnp_stragglers(n: int, engine: Optional[str]):
    network = gnp_graph(n, 8.0 / n, seed=11)
    long_life = max(50, n // 2)
    stride = max(1, n // 16)
    programs = {}
    for i, node in enumerate(network):
        lifetime = long_life if i % stride == 0 else 2 + (i % 8)
        programs[node] = _Straggler(node, lifetime)
    return _run_scheduler(network, programs, engine) + (network,)


def workload_gnp_greedy_sweep(n: int, engine: Optional[str]):
    network = gnp_graph(n, 6.0 / n, seed=13)
    instance = random_arbdefective_instance(
        network, slack=1.5, seed=13,
        color_space_size=max(8, network.raw_max_degree() + 2),
    )
    ledger = CostLedger()
    with use_engine(engine or "fast"):
        result = greedy_arbdefective_sweep(
            instance, sequential_ids(network), len(network), ledger=ledger
        )
    return result.colors, ledger, network


def workload_tree_flood(n: int, engine: Optional[str]):
    depth = max(2, n.bit_length() - 1)
    network = binary_tree(depth)
    rounds = max(20, min(200, n // 8))
    programs = {node: _Flooder(node, rounds) for node in network}
    return _run_scheduler(network, programs, engine) + (network,)


def workload_clique_exchange(n: int, engine: Optional[str]):
    size = max(8, int(n ** 0.5) * 4)
    network = complete_graph(size)
    rounds = max(10, n // 40)
    programs = {node: _Flooder(node, rounds) for node in network}
    return _run_scheduler(network, programs, engine) + (network,)


def workload_linial_algebraic(n: int, engine: Optional[str]):
    # Linial needs q >> Delta^2 to make progress, so run it where it
    # belongs: a bounded-degree graph colored by unique ids.  One pass is
    # only O(log* q) rounds, so repeat it -- which is also exactly the
    # shape the substrate caches (schedules, polynomial families) serve.
    network = binary_tree(max(3, n.bit_length() - 1))
    ids = sequential_ids(network)
    reps = max(3, n // 100)
    ledger = CostLedger()
    with use_engine(engine or "fast"):
        for _ in range(reps):
            colors, _ = linial_coloring(
                network, ids, len(network), ledger=ledger
            )
    return colors, ledger, network


def workload_star_fanout(n: int, engine: Optional[str]):
    network = star_graph(max(7, n - 1))
    rounds = max(20, min(400, n // 4))
    programs = {node: _Flooder(node, rounds) for node in network}
    return _run_scheduler(network, programs, engine) + (network,)


def workload_two_sweep(n: int, engine: Optional[str]):
    # The paper's Algorithm 1 at E1's density, scaled up: q = n color
    # classes, 2q + 1 rounds, at most one class acting per round -- the
    # exact shape where per-node dispatch costs O(n) no-ops per round
    # and the Two-Sweep kernel touches only the acting class.
    network = gnp_graph(n, min(0.9, 6.0 / n), seed=17)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=3, seed=17)
    ids = sequential_ids(network)
    ledger = CostLedger()
    with use_engine(engine or "fast"):
        result = two_sweep(
            instance, ids, len(network), 3, ledger=ledger, check=False
        )
    return result.colors, ledger, network


def workload_fast_two_sweep(n: int, engine: Optional[str]):
    # Algorithm 2 end to end (Lemma 3.4 defective coloring + inner
    # sweep) with 40-bit identifiers, the E2 regime: rounds are O((p /
    # eps)^2 + log* q), so the per-round cost is all that scales with n.
    network = gnp_graph(n, 6.0 / n, seed=19)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=19, epsilon=0.5)
    ids = random_ids(network, seed=19, bits=40)
    ledger = CostLedger()
    with use_engine(engine or "fast"):
        result = fast_two_sweep(
            instance, ids, 2 ** 40, 2, 0.5, ledger=ledger, check=False
        )
    return result.colors, ledger, network


WORKLOADS = [
    ("gnp_stragglers", workload_gnp_stragglers),
    ("gnp_greedy_sweep", workload_gnp_greedy_sweep),
    ("tree_flood", workload_tree_flood),
    ("clique_exchange", workload_clique_exchange),
    ("linial_algebraic", workload_linial_algebraic),
    ("star_fanout", workload_star_fanout),
    ("two_sweep", workload_two_sweep),
    ("fast_two_sweep", workload_fast_two_sweep),
]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _time_once(factory, n: int, engine: str):
    start = time.perf_counter()
    out, ledger, network = factory(n, engine)
    elapsed = time.perf_counter() - start
    fingerprint = (ledger.rounds, ledger.messages, ledger.bits,
                   ledger.max_message_bits)
    return elapsed, fingerprint, out, network


def run_benchmark(n: int, smoke: bool) -> Dict:
    rows: List[Dict] = []
    for name, factory in WORKLOADS:
        # Interleave the engines so clock drift hits all three equally;
        # best-of-REPEATS per engine, stddev reported alongside.
        times: Dict[str, List[float]] = {
            "reference": [], "fast": [], "vectorized": [],
        }
        fingerprints: Dict[str, Tuple] = {}
        outputs: Dict[str, Dict] = {}
        for _ in range(REPEATS):
            for engine in ("reference", "fast", "vectorized"):
                elapsed, fingerprint, out, network = _time_once(
                    factory, n, engine
                )
                times[engine].append(elapsed)
                fingerprints[engine] = fingerprint
                outputs[engine] = out
        for engine in ("fast", "vectorized"):
            if (fingerprints[engine] != fingerprints["reference"]
                    or outputs[engine] != outputs["reference"]):
                raise AssertionError(
                    f"engine mismatch on {name}: reference "
                    f"{fingerprints['reference']} vs {engine} "
                    f"{fingerprints[engine]}"
                )
        ref_s = min(times["reference"])
        fast_s = min(times["fast"])
        vec_s = min(times["vectorized"])
        rows.append({
            "workload": name,
            "n": len(network),
            "m": network.edge_count(),
            "rounds": fingerprints["reference"][0],
            "messages": fingerprints["reference"][1],
            "bits": fingerprints["reference"][2],
            "reference_s": round(ref_s, 6),
            "reference_stddev_s": round(
                statistics.pstdev(times["reference"]), 6
            ),
            "fast_s": round(fast_s, 6),
            "fast_stddev_s": round(statistics.pstdev(times["fast"]), 6),
            "vectorized_s": round(vec_s, 6),
            "vectorized_stddev_s": round(
                statistics.pstdev(times["vectorized"]), 6
            ),
            "speedup": round(ref_s / fast_s, 3) if fast_s > 0 else None,
            "vectorized_speedup": (
                round(ref_s / vec_s, 3) if vec_s > 0 else None
            ),
            "vectorized_vs_fast": (
                round(fast_s / vec_s, 3) if vec_s > 0 else None
            ),
        })
    headline = next(row for row in rows if row["workload"] == HEADLINE)
    vec_headline = next(
        row for row in rows if row["workload"] == VECTOR_HEADLINE
    )
    return {
        "benchmark": "bench_engine",
        "description": ("reference vs fast vs vectorized scheduler "
                        "engine, fixed workloads"),
        "smoke": smoke,
        "workload_scale_n": n,
        "python": platform.python_version(),
        "arrays_backend": _arrays_backend(),
        "repeats": REPEATS,
        "headline": {
            "workload": HEADLINE,
            "speedup": headline["speedup"],
        },
        "vectorized_headline": {
            "workload": VECTOR_HEADLINE,
            "vs_fast": vec_headline["vectorized_vs_fast"],
            "speedup": vec_headline["vectorized_speedup"],
        },
        "workloads": rows,
    }


def _render(report: Dict) -> str:
    lines = [
        "BENCH_engine: fast + vectorized scheduler engines vs reference "
        f"(scale n={report['workload_scale_n']}, smoke={report['smoke']}, "
        f"best of {report['repeats']} with stddev)",
        f"{'workload':<18} {'n':>6} {'m':>8} {'rounds':>7} "
        f"{'messages':>10} {'ref_s':>9} {'fast_s':>9} {'vec_s':>9} "
        f"{'fast':>6} {'vec':>6} {'v/f':>6}",
    ]
    for row in report["workloads"]:
        lines.append(
            f"{row['workload']:<18} {row['n']:>6} {row['m']:>8} "
            f"{row['rounds']:>7} {row['messages']:>10} "
            f"{row['reference_s']:>9.4f} {row['fast_s']:>9.4f} "
            f"{row['vectorized_s']:>9.4f} "
            f"{row['speedup']:>5.2f}x {row['vectorized_speedup']:>5.2f}x "
            f"{row['vectorized_vs_fast']:>5.2f}x"
        )
    lines.append(
        f"headline ({report['headline']['workload']}): "
        f"{report['headline']['speedup']:.2f}x fast vs reference; "
        f"vectorized ({report['vectorized_headline']['workload']}): "
        f"{report['vectorized_headline']['vs_fast']:.2f}x vs fast"
    )
    return "\n".join(lines)


def write_report(report: Dict, json_path: pathlib.Path = JSON_PATH) -> None:
    json_path.write_text(json.dumps(report, indent=2) + "\n")
    emit("BENCH_engine", _render(report))
    print(f"wrote {json_path}")
    write_manifest_sidecar(json_path, extra={
        "benchmark": report["benchmark"],
        "smoke": report["smoke"],
        "workload_scale_n": report["workload_scale_n"],
        "headline": report["headline"],
        "vectorized_headline": report["vectorized_headline"],
    })


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def test_engine_benchmark(benchmark):
    """Pytest entry: smoke-scale run + fingerprint equivalence."""
    report = run_benchmark(n=400, smoke=True)
    for row in report["workloads"]:
        # Neither optimized path may lose badly; full-scale wins are
        # tracked in BENCH_engine.json, not asserted here (CI noise).
        assert row["speedup"] > 0.5
        assert row["vectorized_vs_fast"] > 0.5
    benchmark(workload_gnp_stragglers, 400, None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI sanity runs")
    parser.add_argument("--n", type=int, default=None,
                        help="override the workload scale")
    parser.add_argument("--out", default=str(JSON_PATH),
                        help="path for the JSON report")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a structured JSONL trace of every "
                             "benchmarked run (inspect with 'python -m "
                             "repro trace PATH')")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (300 if args.smoke else 2000)
    # Warm the substrate caches from a previous invocation's spill (a
    # no-op unless REPRO_SIM_CACHE_DIR is set) and spill back at the end.
    load_from_disk()
    if args.trace is not None:
        from repro.obs import Tracer, collect_manifest, use_tracer, write_jsonl

        tracer = Tracer()
        with use_tracer(tracer):
            report = run_benchmark(n=n, smoke=args.smoke)
        write_jsonl(args.trace, tracer.events, collect_manifest(
            argv=sys.argv[1:],
            extra={"benchmark": report["benchmark"], "smoke": args.smoke},
        ))
        print(f"trace written to {args.trace} "
              f"({len(tracer.events)} records)")
    else:
        report = run_benchmark(n=n, smoke=args.smoke)
    save_to_disk()
    write_report(report, pathlib.Path(args.out))
    print(_render(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
