"""E18 -- the theta crossover between Theorems 1.5 and 1.3.

The paper claims Theorem 1.5 beats the sqrt(Delta)-type bound of
Theorem 1.3 whenever theta = O~(Delta^{1/8}).  Simulation cannot reach
the degrees where the asymptotics separate, so this experiment evaluates
both round *models* (constants set to 1, as everywhere in
analysis/rounds.py) across ten orders of magnitude of Delta and reports
the largest winning theta and its exponent log_Delta(theta*) -- which
must settle near 1/8 up to the polylog slop the O~ hides.
"""

from __future__ import annotations

from repro.analysis import (
    crossover_exponent,
    crossover_theta,
    render_records,
    theorem_13_rounds,
    theorem_15_rounds,
)
from repro.analysis import grid
from repro.sim.parallel import parallel_sweep

from _util import emit


def measure(log2_delta: int) -> dict:
    delta = 2 ** log2_delta
    theta_star = crossover_theta(delta)
    exponent = crossover_exponent(delta)
    return {
        "delta": f"2^{log2_delta}",
        "theta_star": theta_star,
        "exponent": None if exponent is None else round(exponent, 3),
        "model_13": round(theorem_13_rounds(delta, 4 * delta)),
        "model_15_at_star": round(
            theorem_15_rounds(delta, max(1, theta_star), 4 * delta)
        ) if theta_star else None,
    }


def test_e18_crossover(benchmark):
    # The Delta points are independent; fan them across processes.
    records = parallel_sweep(
        measure, grid(log2_delta=[8, 12, 16, 20, 24, 28, 32])
    )
    emit("E18_crossover", render_records(
        records,
        ["delta", "theta_star", "exponent", "model_13",
         "model_15_at_star"],
        title="E18: largest theta where the Theorem 1.5 model beats the "
              "Theorem 1.3 model (paper: exponent -> 1/8 up to polylog)",
    ))
    # The exponent must be positive and land below ~1/4 for large Delta
    # (the paper's 1/8 with polylog slop, evaluated at unit constants).
    large = [record for record in records
             if int(record["delta"][2:]) >= 16]
    assert all(record["theta_star"] >= 1 for record in large)
    assert all(0.0 < record["exponent"] <= 0.25 for record in large)
    benchmark(crossover_theta, 2 ** 20)
