"""E17 -- the defective coloring trade-off landscape.

The paper's discussion (Sec. 1, "Defective Coloring"): the existential
optimum is ceil((Delta+1)/(d+1)) colors [Lov66]; the best greedy-type
distributed result is the two-sweep's O((Delta/d)^2); Lemma 3.4 achieves
O(1/alpha^2) colors at defect alpha*beta in O(log* q) rounds.  This
experiment measures the (colors, defect, rounds) triples all four
implemented methods actually achieve on one graph, making the open
problem the paper highlights -- closing the gap between quadratic and
linear color counts at f(Delta) * log* n rounds -- concrete.
"""

from __future__ import annotations

import math

from repro.analysis import grid, render_records, sweep
from repro.graphs import (
    orient_all_out,
    random_regular_graph,
    random_ids,
    sequential_ids,
)
from repro.sim import CostLedger
from repro.substrates import (
    kuhn_defective_coloring,
    lovasz_defective_partition,
    sequential_greedy_defective,
    two_sweep_defective_baseline,
)

from _util import emit


def worst_defect(network, colors):
    return max(
        sum(
            1 for u in network.neighbors(v) if colors[u] == colors[v]
        )
        for v in network
    )


def measure(method: str, defect: int, seed: int) -> dict:
    delta = 12
    network = random_regular_graph(48, delta, seed=seed)
    ledger = CostLedger()
    if method == "lovasz":
        k = max(1, math.ceil((delta + 1) / (defect + 1)))
        colors = lovasz_defective_partition(network, k, seed=seed)
        rounds = None  # centralized existence argument
    elif method == "greedy":
        k = max(1, math.ceil((delta + 1) / (defect + 1)))
        colors = sequential_greedy_defective(network, k)
        rounds = None  # sequential
    elif method == "two-sweep":
        graph = orient_all_out(network)
        result = two_sweep_defective_baseline(
            graph, sequential_ids(network), len(network), defect,
            ledger=ledger,
        )
        colors = result.colors
        rounds = ledger.rounds
    else:  # kuhn (Lemma 3.4)
        graph = orient_all_out(network)
        ids = random_ids(network, seed=seed, bits=24)
        alpha = max(0.05, defect / delta)
        colors, _ = kuhn_defective_coloring(
            graph, ids, 2 ** 24, alpha, ledger=ledger
        )
        rounds = ledger.rounds
    observed = worst_defect(network, colors)
    return {
        "colors": len(set(colors.values())),
        "target_defect": defect,
        "observed_defect": observed,
        "rounds": rounds,
        "within_target": observed <= defect,
        "lovasz_optimum": math.ceil((delta + 1) / (defect + 1)),
    }


def test_e17_defective_tradeoffs(benchmark):
    records = sweep(
        measure,
        grid(method=["lovasz", "greedy", "two-sweep", "kuhn"],
             defect=[2, 4, 6], seed=[37]),
    )
    emit("E17_defective_tradeoffs", render_records(
        records,
        ["method", "target_defect", "colors", "observed_defect",
         "within_target", "rounds", "lovasz_optimum"],
        title="E17: defective coloring trade-offs at Delta = 12 -- "
              "existential [Lov66] vs greedy vs distributed two-sweep "
              "vs Lemma 3.4 (rounds '-' = not a distributed algorithm)",
    ))
    # The guarantees that must hold unconditionally:
    for record in records:
        if record["method"] in ("lovasz", "two-sweep"):
            assert record["within_target"]
        if record["method"] == "lovasz":
            # Local search achieves the existential color count exactly.
            assert record["colors"] <= record["lovasz_optimum"]
    benchmark(measure, method="two-sweep", defect=4, seed=38)
