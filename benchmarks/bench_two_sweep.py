"""E1 -- Theorem 1.1 (eps = 0): Two-Sweep validity and O(q) rounds.

For a sweep over (n, p), runs Algorithm 1 on random oriented graphs with
random feasible instances and reports measured rounds against the 2q + 1
sweep schedule and the paper's O(q) bound, plus the maximum message size
(p colors).  The pytest-benchmark target times one representative run.
"""

from __future__ import annotations

import os

from repro.analysis import grid, render_records
from repro.coloring import check_oldc, random_oldc_instance
from repro.core import two_sweep
from repro.graphs import gnp_graph, orient_by_id, sequential_ids
from repro.sim import CostLedger, parallel_sweep

from _util import emit

#: The engine the sweep runs under: the env override when set (CI diffs
#: reference vs vectorized tables), else the kernelized fast path.  The
#: emitted table is engine-invariant by construction -- it reports only
#: ledger/validity columns, never timing.
_ENGINE = os.environ.get("REPRO_SIM_ENGINE") or "vectorized"


def measure(n: int, p: int, seed: int) -> dict:
    network = gnp_graph(n, min(0.9, 6.0 / n), seed=seed)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=p, seed=seed)
    ids = sequential_ids(network)
    ledger = CostLedger()
    result = two_sweep(instance, ids, n, p, ledger=ledger)
    violations = check_oldc(instance, result.colors)
    return {
        "beta": graph.max_outdegree(),
        "list_size": p * p,
        "rounds": ledger.rounds,
        "bound_2q_plus_1": 2 * n + 1,
        "max_msg_bits": ledger.max_message_bits,
        "valid": not violations,
    }


def test_e1_two_sweep(benchmark):
    records = parallel_sweep(
        measure,
        grid(n=[20, 40, 80, 160], p=[2, 3, 4], seed=[1]),
        engine=_ENGINE,
        report=True,
    )
    print(records.describe())
    assert all(record["valid"] for record in records)
    assert all(
        record["rounds"] <= record["bound_2q_plus_1"] + 1
        for record in records
    )
    emit("E1_two_sweep", render_records(
        records,
        ["n", "p", "beta", "list_size", "rounds", "bound_2q_plus_1",
         "max_msg_bits", "valid"],
        title="E1: Two-Sweep (Algorithm 1) -- rounds vs the O(q) bound",
    ))
    benchmark(measure, n=40, p=3, seed=2)
