"""E7 -- Theorem 1.4: list defective via arbdefective on bounded theta.

Runs the Section 4.1 algorithm on line graphs of bounded-rank hypergraphs
and reports: validity (Lemma 4.3's bound respected), the number of P_A
invocations against the ceil(log Delta) + 1 schedule, and the measured
defect amplification against the 7 * theta * d' analysis.
"""

from __future__ import annotations

from repro.analysis import (
    grid,
    render_records,
    sweep,
    theorem_14_round_factor,
)
from repro.coloring import check_list_defective
from repro.core import (
    defective_from_arbdefective,
    solve_arbdefective_base,
    theorem_14_slack,
)
from repro.graphs import (
    line_graph_of_hypergraph,
    neighborhood_independence,
    random_uniform_hypergraph,
    sequential_ids,
)
from repro.sim import CostLedger

from _util import emit


def capped_defect_instance(network, slack, theta):
    """Eq. (9)-slack instance with defects below deg(v) staggered across
    rescaled-defect scales: no node has a free color, and nodes enter the
    Theorem 1.4 iteration ladder at different levels ``i`` (each node's
    colors sit at one value of d' = ceil((d+1)/(7 theta)) - 1)."""
    import math

    from repro.coloring import ListDefectiveInstance

    lists = {}
    defects = {}
    max_size = 0
    for index, node in enumerate(network.nodes):
        degree = max(1, network.degree(node))
        # d' scales available below the deg(v) - 1 cap.
        scales = max(
            1, int(math.log2(max(1.0, degree / (7.0 * theta)))) + 1
        )
        scale = index % scales
        value = max(0, min(degree - 1, 7 * theta * 2 ** scale - 1))
        need = slack * network.degree(node)
        size = int(need / (value + 1)) + 2
        lists[node] = tuple(range(size))
        defects[node] = {color: value for color in range(size)}
        max_size = max(max_size, size)
    return ListDefectiveInstance(network, lists, defects, max_size)


def measure(workload: str, rank: int, seed: int) -> dict:
    if workload == "clique":
        # theta = 1 and Delta >> 7*theta: the iteration ladder of
        # Theorem 1.4 spreads nodes across several defect scales.
        from repro.graphs import complete_graph

        network = complete_graph(40 + 4 * rank)
        theta = 1
    else:
        hypergraph = random_uniform_hypergraph(
            n_vertices=24, n_edges=30, rank=rank, seed=seed
        )
        network, _ = line_graph_of_hypergraph(hypergraph)
        theta = max(1, neighborhood_independence(network))
    need = theorem_14_slack(theta, network.max_degree(), 1.0)
    instance = capped_defect_instance(network, need, theta)
    calls = []

    def arb_solver(sub, sub_initial, sub_q, ledger):
        calls.append(len(sub.network))
        return solve_arbdefective_base(
            sub, sub_initial, sub_q, ledger=ledger
        )

    ledger = CostLedger()
    result = defective_from_arbdefective(
        instance, theta, s=1.0, arb_solver=arb_solver,
        initial_colors=sequential_ids(network), q=len(network),
        ledger=ledger,
    )
    violations = check_list_defective(instance, result.colors)
    worst_ratio = 0.0
    for node in network:
        color = result.colors[node]
        conflicts = sum(
            1 for u in network.neighbors(node)
            if result.colors[u] == color
        )
        allowed = instance.defect(node, color)
        if allowed > 0:
            worst_ratio = max(worst_ratio, conflicts / allowed)
    return {
        "theta": theta,
        "delta": network.raw_max_degree(),
        "pa_calls": len(calls),
        "schedule_bound": theorem_14_round_factor(network.max_degree()),
        "rounds": ledger.rounds,
        "worst_conflict_ratio": round(worst_ratio, 3),
        "valid": not violations,
    }


def test_e7_defective_from_arb(benchmark):
    records = sweep(
        measure,
        grid(workload=["line", "clique"], rank=[2, 3, 4], seed=[11]),
    )
    assert all(record["valid"] for record in records)
    emit("E7_defective_from_arb", render_records(
        records,
        ["workload", "rank", "theta", "delta", "pa_calls",
         "schedule_bound", "rounds", "worst_conflict_ratio", "valid"],
        title="E7: Theorem 1.4 -- P_D via ceil(log Delta)+1 rounds of "
              "P_A (conflict ratio <= 1 certifies Lemma 4.3)",
    ))
    for record in records:
        assert record["pa_calls"] <= record["schedule_bound"]
        assert record["worst_conflict_ratio"] <= 1.0
    # The clique workload must exercise a multi-iteration ladder.
    assert any(
        record["pa_calls"] >= 2
        for record in records if record["workload"] == "clique"
    )
    benchmark(measure, workload="line", rank=3, seed=13)
