"""E2 -- Theorem 1.1 (eps > 0): Fast-Two-Sweep round scaling.

The headline of Algorithm 2: the dependence on the initial color count
``q`` collapses from O(q) to O((p/eps)^2 + log* q).  The sweep scales
``q`` over 6 orders of magnitude at fixed (p, eps) and reports measured
rounds against both the plain-sweep cost and the theorem's bound.
"""

from __future__ import annotations

import os

from repro.analysis import grid, render_records, theorem_11_rounds
from repro.coloring import check_oldc, random_oldc_instance
from repro.core import fast_two_sweep
from repro.graphs import gnp_graph, orient_by_id, random_ids
from repro.sim import CostLedger, parallel_sweep
from repro.substrates import log_star

from _util import emit

#: Env override wins (CI diffs reference vs vectorized tables); the
#: emitted table reports only ledger/validity columns, so it is
#: engine-invariant.  Every cell reuses the same interned 60-node graph,
#: so each pool worker compiles the topology exactly once.
_ENGINE = os.environ.get("REPRO_SIM_ENGINE") or "vectorized"


def measure(q_bits: int, p: int, epsilon: float, seed: int) -> dict:
    network = gnp_graph(60, 0.1, seed=seed)
    graph = orient_by_id(network)
    instance = random_oldc_instance(
        graph, p=p, seed=seed, epsilon=epsilon
    )
    ids = random_ids(network, seed=seed, bits=q_bits)
    q = 2 ** q_bits
    ledger = CostLedger()
    result = fast_two_sweep(instance, ids, q, p, epsilon, ledger=ledger)
    violations = check_oldc(instance, result.colors)
    return {
        "q": q,
        "rounds": ledger.rounds,
        "plain_sweep_cost": 2 * q + 1,
        "theorem_bound": round(theorem_11_rounds(q, p, epsilon)),
        "log_star_q": log_star(q),
        "valid": not violations,
    }


def test_e2_fast_two_sweep(benchmark):
    records = parallel_sweep(
        measure,
        grid(q_bits=[8, 16, 24, 32, 40], p=[2], epsilon=[0.5], seed=[3]),
        engine=_ENGINE,
        report=True,
    )
    print(records.describe())
    assert all(record["valid"] for record in records)
    emit("E2_fast_two_sweep", render_records(
        records,
        ["q_bits", "q", "rounds", "plain_sweep_cost", "theorem_bound",
         "log_star_q", "valid"],
        title="E2: Fast-Two-Sweep -- rounds stay O((p/eps)^2 + log* q) "
              "while q grows 2^8 -> 2^40",
    ))
    # Shape assertions: on the defective-coloring path (q_bits >= 16 here)
    # rounds are flat in q up to a few log* rounds, and vanishingly small
    # against the plain sweep's O(q).
    medium = next(r for r in records if r["q_bits"] == 16)
    large = next(r for r in records if r["q_bits"] == 40)
    assert large["rounds"] <= medium["rounds"] + 10 * (
        large["log_star_q"] - medium["log_star_q"] + 1
    )
    assert large["rounds"] * 1000 < large["plain_sweep_cost"]
    benchmark(measure, q_bits=32, p=2, epsilon=0.5, seed=4)
