"""E10 -- substrate sanity: Linial [Lin87] O(Delta^2) colors, log* rounds.

Sweeps the ID-space size on rings (Linial's lower-bound topology) and on
random graphs; reports palette vs the (4 Delta + 2)^2 bound and rounds vs
log* q.  Also covers the oriented O(beta^2) variant.
"""

from __future__ import annotations

from repro.analysis import grid, render_records, sweep
from repro.coloring import check_proper_coloring
from repro.graphs import (
    gnp_graph,
    orient_low_outdegree,
    random_ids,
    ring_graph,
)
from repro.sim import CostLedger
from repro.substrates import (
    linial_coloring,
    linial_oriented_coloring,
    linial_palette_bound,
    log_star,
)

from _util import emit


def measure(topology: str, q_bits: int, seed: int) -> dict:
    if topology == "ring":
        network = ring_graph(64)
    else:
        network = gnp_graph(64, 0.12, seed=seed)
    ids = random_ids(network, seed=seed, bits=q_bits)
    q = 2 ** q_bits
    ledger = CostLedger()
    colors, palette = linial_coloring(network, ids, q, ledger=ledger)
    ok = check_proper_coloring(network, colors) == []
    delta = network.raw_max_degree()
    return {
        "delta": delta,
        "palette": palette,
        "palette_bound": linial_palette_bound(delta),
        "rounds": ledger.rounds,
        "log_star_q": log_star(q),
        "valid": ok,
    }


def measure_oriented(q_bits: int, seed: int) -> dict:
    network = gnp_graph(64, 0.3, seed=seed)
    graph = orient_low_outdegree(network)
    ids = random_ids(network, seed=seed, bits=q_bits)
    ledger = CostLedger()
    colors, palette = linial_oriented_coloring(
        graph, ids, 2 ** q_bits, ledger=ledger
    )
    ok = check_proper_coloring(network, colors) == []
    return {
        "delta": network.raw_max_degree(),
        "beta": graph.max_outdegree(),
        "palette": palette,
        "beta_bound": linial_palette_bound(graph.max_outdegree()),
        "rounds": ledger.rounds,
        "valid": ok,
    }


def test_e10_linial(benchmark):
    records = sweep(
        measure,
        grid(topology=["ring", "gnp"], q_bits=[16, 32, 48], seed=[20]),
    )
    assert all(record["valid"] for record in records)
    emit("E10a_linial", render_records(
        records,
        ["topology", "q_bits", "delta", "palette", "palette_bound",
         "rounds", "log_star_q", "valid"],
        title="E10a: Linial -- O(Delta^2) colors in ~log* q rounds",
    ))
    for record in records:
        assert record["palette"] <= record["palette_bound"]
        assert record["rounds"] <= 3 * record["log_star_q"] + 3
    oriented = sweep(measure_oriented, grid(q_bits=[32], seed=[21]))
    assert all(record["valid"] for record in oriented)
    emit("E10b_linial_oriented", render_records(
        oriented,
        ["q_bits", "delta", "beta", "palette", "beta_bound", "rounds",
         "valid"],
        title="E10b: oriented Linial -- palette O(beta^2), beta << Delta",
    ))
    for record in oriented:
        assert record["palette"] <= record["beta_bound"]
    benchmark(measure, topology="gnp", q_bits=32, seed=22)
