"""E13 -- deterministic vs randomized (Delta+1)-coloring.

The paper's introduction motivates deterministic coloring against the
randomized state of the art; this experiment runs all four routes in the
repository side by side across Delta: the Theorem 1.3 pipeline, the
Theorem 1.5 bounded-theta recursion, the classic Linial + color
reduction baseline, and the O(log n) randomized trial coloring.
"""

from __future__ import annotations

import math

from repro.analysis import grid, render_records, sweep
from repro.coloring import check_proper_coloring
from repro.core import (
    delta_plus_one_coloring,
    linial_reduction_baseline,
    theta_delta_plus_one_coloring,
)
from repro.graphs import (
    neighborhood_independence,
    random_bounded_degree_graph,
    random_ids,
)
from repro.sim import CostLedger
from repro.substrates import randomized_delta_plus_one

from _util import emit


def measure(max_degree: int, seed: int) -> dict:
    n = 10 * max_degree
    network = random_bounded_degree_graph(n, max_degree, seed=seed)
    ids = random_ids(network, seed=seed, bits=20)
    theta = neighborhood_independence(network, exact=len(network) <= 80)

    rounds = {}
    for route, runner in (
        ("thm13", lambda led: delta_plus_one_coloring(
            network, ids=ids, ledger=led)),
        ("thm15", lambda led: theta_delta_plus_one_coloring(
            network, theta, ids=ids, ledger=led)),
        ("baseline", lambda led: linial_reduction_baseline(
            network, ids=ids, ledger=led)),
        ("random", lambda led: randomized_delta_plus_one(
            network, seed=seed, ledger=led)),
    ):
        ledger = CostLedger()
        result = runner(ledger)
        assert check_proper_coloring(network, result.colors) == []
        rounds[route] = ledger.rounds
    return {
        "n": n,
        "delta": network.raw_max_degree(),
        "theta": theta,
        "thm13": rounds["thm13"],
        "thm15": rounds["thm15"],
        "baseline": rounds["baseline"],
        "random": rounds["random"],
        "log_n_model": round(math.log2(n)),
    }


def test_e13_randomized_comparison(benchmark):
    records = sweep(measure, grid(max_degree=[3, 4, 6, 8], seed=[27]))
    emit("E13_randomized_comparison", render_records(
        records,
        ["max_degree", "n", "delta", "theta", "thm13", "thm15",
         "baseline", "random", "log_n_model"],
        title="E13: (Delta+1)-coloring rounds -- deterministic routes vs "
              "the randomized O(log n) trial coloring",
    ))
    # The randomized baseline's rounds must stay logarithmic-ish in n and
    # in particular beat the Delta^2-ish deterministic baseline at the
    # largest Delta.
    largest = max(records, key=lambda record: record["delta"])
    assert largest["random"] <= largest["baseline"]
    benchmark(measure, max_degree=4, seed=28)
