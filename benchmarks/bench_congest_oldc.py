"""E4 -- Theorem 1.2: CONGEST OLDC rounds and message size.

Sweeps the color space size C and reports measured rounds (shape: polylog
in C, paper bound O(log^3 C + log* q)), the maximum message size in bits
(paper bound O(log q + log C)), and the enforced slack factor (always
below 3 sqrt(C)).
"""

from __future__ import annotations

import math
import random

from repro.analysis import grid, render_records, sweep, theorem_12_rounds
from repro.coloring import OLDCInstance, check_oldc
from repro.core import congest_oldc, required_slack_factor
from repro.graphs import (
    orient_by_id,
    random_bounded_degree_graph,
    sequential_ids,
)
from repro.sim import CostLedger

from _util import emit


def make_instance(graph, color_space, seed):
    need = required_slack_factor(color_space)
    rng = random.Random(seed)
    size = max(4, color_space // 2)
    lists, defects = {}, {}
    for node in graph.nodes:
        beta = graph.beta(node)
        d = int(need * beta / size) + 1
        colors = tuple(sorted(rng.sample(range(color_space), size)))
        lists[node] = colors
        defects[node] = {color: d for color in colors}
    return OLDCInstance(graph, lists, defects, color_space)


def measure(color_space: int, seed: int) -> dict:
    network = random_bounded_degree_graph(40, 5, seed=seed)
    graph = orient_by_id(network)
    instance = make_instance(graph, color_space, seed)
    ledger = CostLedger()
    result = congest_oldc(
        instance, sequential_ids(network), len(network), ledger=ledger
    )
    violations = check_oldc(instance, result.colors)
    return {
        "slack_factor": round(required_slack_factor(color_space), 1),
        "three_sqrt_c": round(3 * math.sqrt(color_space), 1),
        "rounds": ledger.rounds,
        "log3C_model": round(theorem_12_rounds(color_space, len(network))),
        "max_msg_bits": ledger.max_message_bits,
        "logq_logC_bits": math.ceil(math.log2(len(network)))
        + math.ceil(math.log2(color_space)),
        "valid": not violations,
    }


def test_e4_congest_oldc(benchmark):
    records = sweep(
        measure, grid(color_space=[8, 16, 64, 256, 1024], seed=[5])
    )
    assert all(record["valid"] for record in records)
    emit("E4_congest_oldc", render_records(
        records,
        ["color_space", "slack_factor", "three_sqrt_c", "rounds",
         "log3C_model", "max_msg_bits", "logq_logC_bits", "valid"],
        title="E4: Theorem 1.2 -- CONGEST OLDC: rounds polylog in C, "
              "messages O(log q + log C) bits",
    ))
    # Message shape: max bits must track log q + log C, not the list size
    # (which is C/2 colors).
    for record in records:
        assert record["max_msg_bits"] <= 6 * record["logq_logC_bits"] + 24
    # Round shape: 128x more colors costs far less than 128x rounds.
    small = next(r for r in records if r["color_space"] == 8)
    large = next(r for r in records if r["color_space"] == 1024)
    assert large["rounds"] <= 12 * max(1, small["rounds"])
    benchmark(measure, color_space=64, seed=6)
