"""E19 -- scaling sweeps: the round bounds across an order of magnitude.

Larger inputs than the per-theorem experiments use, one series per core
algorithm, so the growth *curves* (not just two endpoints) are on
record: Two-Sweep vs n, Fast-Two-Sweep vs q, Lemma 3.4 and Linial vs n,
and the randomized baseline vs n.

Set ``REPRO_BIG=1`` to quadruple the sizes (a few minutes instead of
seconds).  The parameter points are independent trials, so they are
fanned across worker processes (``repro.sim.parallel``); set
``REPRO_PARALLEL=0`` to force the serial path.
"""

from __future__ import annotations

import os

from repro.analysis import grid, render_records
from repro.sim.parallel import parallel_sweep
from repro.coloring import check_oldc, check_proper_coloring, random_oldc_instance
from repro.core import two_sweep
from repro.graphs import (
    gnp_graph,
    orient_by_id,
    random_bounded_degree_graph,
    random_ids,
    sequential_ids,
)
from repro.sim import CostLedger
from repro.substrates import (
    kuhn_defective_coloring,
    linial_coloring,
    log_star,
    randomized_delta_plus_one,
)

from _util import emit

SCALE = 4 if os.environ.get("REPRO_BIG") else 1


def measure_two_sweep(n: int) -> dict:
    network = gnp_graph(n, min(0.5, 8.0 / n), seed=n)
    graph = orient_by_id(network)
    instance = random_oldc_instance(graph, p=2, seed=n)
    ledger = CostLedger()
    result = two_sweep(
        instance, sequential_ids(network), n, 2, ledger=ledger
    )
    assert check_oldc(instance, result.colors) == []
    return {"rounds": ledger.rounds, "per_q": ledger.rounds / n}


def measure_substrates(n: int) -> dict:
    network = random_bounded_degree_graph(n, 8, seed=n)
    ids = random_ids(network, seed=n, bits=40)
    linial_ledger = CostLedger()
    colors, palette = linial_coloring(
        network, ids, 2 ** 40, ledger=linial_ledger
    )
    assert check_proper_coloring(network, colors) == []
    graph = orient_by_id(network)
    kuhn_ledger = CostLedger()
    kuhn_defective_coloring(graph, ids, 2 ** 40, 0.25, ledger=kuhn_ledger)
    random_ledger = CostLedger()
    randomized_delta_plus_one(network, seed=n, ledger=random_ledger)
    return {
        "linial_rounds": linial_ledger.rounds,
        "linial_palette": palette,
        "kuhn_rounds": kuhn_ledger.rounds,
        "random_rounds": random_ledger.rounds,
        "log_star_q": log_star(2 ** 40),
    }


def test_e19_scaling(benchmark):
    sizes = [100 * SCALE, 200 * SCALE, 400 * SCALE, 800 * SCALE]
    sweep_records = parallel_sweep(measure_two_sweep, grid(n=sizes))
    emit("E19a_two_sweep_scaling", render_records(
        sweep_records,
        ["n", "rounds", "per_q"],
        title="E19a: Two-Sweep rounds vs n -- the O(q) line "
              "(rounds / q constant at ~2)",
    ))
    for record in sweep_records:
        assert abs(record["per_q"] - 2.0) < 0.2

    substrate_records = parallel_sweep(measure_substrates, grid(n=sizes))
    emit("E19b_substrate_scaling", render_records(
        substrate_records,
        ["n", "linial_rounds", "linial_palette", "kuhn_rounds",
         "random_rounds", "log_star_q"],
        title="E19b: substrate rounds vs n at q = 2^40 -- Linial and "
              "Lemma 3.4 stay at ~log* q; the randomized baseline at "
              "~2 log n",
    ))
    for record in substrate_records:
        assert record["linial_rounds"] <= 3 * record["log_star_q"] + 3
        assert record["kuhn_rounds"] <= 4 * record["log_star_q"] + 4
    benchmark(measure_two_sweep, n=100)
