"""E3 -- list size and local computation vs [FK23a] / [MT20].

The paper's comparison (Section 1.1): at uniform defect ``d``, our
Two-Sweep needs lists of size ``p^2 = O((beta/d)^2)`` where [FK23a] needs
``Omega((beta/d)^2 * (log beta + loglog C))`` and [MT20] (proper lists)
``Theta(beta^2 log beta)``; and our per-node computation is near-linear
in ``Delta * Lambda`` where theirs is (more than) exponential in the
maximum list size.  The table reports the resource envelopes plus a live
Two-Sweep run at our list size to confirm it actually suffices.
"""

from __future__ import annotations

import random

from repro.analysis import grid, render_records, sweep
from repro.coloring import OLDCInstance, check_oldc
from repro.core import two_sweep
from repro.graphs import orient_by_id, random_regular_graph, sequential_ids
from repro.substrates import (
    fk23_local_work,
    fk23_required_list_size,
    mt20_required_list_size,
    two_sweep_local_work,
    two_sweep_required_list_size,
)

from _util import emit


def live_run(beta_target: int, defect: int, list_size: int,
             seed: int):
    """Confirm a uniform-defect instance with our list size is solved,
    returning (valid, measured max per-node local work)."""
    degree = min(beta_target, 10)
    n = max(degree + 2, 24)
    if n * degree % 2:
        n += 1
    network = random_regular_graph(n, degree, seed=seed)
    graph = orient_by_id(network)
    beta = graph.max_outdegree()
    p = max(1, -(-(beta + 1) // (defect + 1)))  # ceil
    size = p * p
    space = 2 * size
    rng = random.Random(seed)
    lists = {
        node: tuple(sorted(rng.sample(range(space), size)))
        for node in graph.nodes
    }
    defects = {
        node: {color: defect for color in lists[node]}
        for node in graph.nodes
    }
    instance = OLDCInstance(graph, lists, defects, space)
    result = two_sweep(instance, sequential_ids(network), n, p)
    return (
        not check_oldc(instance, result.colors),
        result.stats["max_local_work"],
    )


def measure(beta: int, defect: int) -> dict:
    color_space = 4 * beta * beta
    ours = two_sweep_required_list_size(beta, defect)
    theirs = fk23_required_list_size(beta, defect, color_space, beta * beta)
    live = (
        live_run(beta, defect, ours, seed=beta + defect)
        if beta <= 10 else (None, None)
    )
    return {
        "ours_p2": ours,
        "fk23": theirs,
        "mt20_proper": mt20_required_list_size(beta, color_space)
        if defect == 0 else None,
        "list_ratio": theirs / ours,
        "work_model": two_sweep_local_work(beta, ours),
        "work_measured": live[1],
        "fk23_work": fk23_local_work(ours),
        "live_solved": live[0],
    }


def test_e3_list_size_comparison(benchmark):
    records = sweep(
        measure,
        grid(beta=[4, 8, 16, 64, 256], defect=[0, 1, 3]),
    )
    emit("E3_list_size_comparison", render_records(
        records,
        ["beta", "defect", "ours_p2", "fk23", "mt20_proper", "list_ratio",
         "work_model", "work_measured", "fk23_work", "live_solved"],
        title="E3: required list size and local work -- Two-Sweep vs "
              "[FK23a]/[MT20] envelopes (work_measured = instrumented "
              "per-node operations from a live run)",
    ))
    # Shape: our list size always smaller, work gap astronomical, and
    # the measured local work stays within a small factor of the
    # near-linear model.
    for record in records:
        assert record["ours_p2"] <= record["fk23"]
        assert record["fk23_work"] >= record["work_model"]
        if record["work_measured"] is not None:
            assert record["work_measured"] <= 8 * record["work_model"] + 64
    for record in records:
        if record["live_solved"] is not None:
            assert record["live_solved"]
    benchmark(measure, beta=8, defect=1)
