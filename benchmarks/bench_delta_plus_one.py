"""E5 -- Theorem 1.3: (deg+1)-list coloring in CONGEST.

Sweeps Delta and compares three routes: the Theorem 1.3 pipeline (with
the DESIGN.md substitution-2 framework), the classic Linial + color
reduction baseline (O(Delta^2 + log* n)), and the paper's claimed model
O(sqrt(Delta) log^4 Delta + log* n) next to our substituted model
O(Delta log^4 Delta + log* n).
"""

from __future__ import annotations

import random

from repro.analysis import (
    grid,
    render_records,
    substituted_13_rounds,
    sweep,
    theorem_13_rounds,
)
from repro.coloring import check_proper_coloring
from repro.core import deg_plus_one_list_coloring, linial_reduction_baseline
from repro.graphs import random_bounded_degree_graph
from repro.sim import CostLedger

from _util import emit


def measure(max_degree: int, seed: int) -> dict:
    from repro.graphs import random_ids

    n = 8 * max_degree
    network = random_bounded_degree_graph(n, max_degree, seed=seed)
    delta = network.raw_max_degree()
    rng = random.Random(seed)
    space = delta + 3
    lists = {
        node: tuple(
            sorted(rng.sample(range(space), network.degree(node) + 1))
        )
        for node in network
    }
    # Sparse 24-bit identifiers: the Linial bootstrap genuinely runs.
    ids = random_ids(network, seed=seed, bits=24)
    ledger = CostLedger()
    result = deg_plus_one_list_coloring(
        network, lists, ids=ids, ledger=ledger, color_space_size=space
    )
    ok = check_proper_coloring(network, result.colors) == []
    base_ledger = CostLedger()
    linial_reduction_baseline(network, ids=ids, ledger=base_ledger)
    return {
        "n": n,
        "delta": delta,
        "rounds_thm13": ledger.rounds,
        "rounds_baseline": base_ledger.rounds,
        "paper_model": round(theorem_13_rounds(delta, n)),
        "substituted_model": round(substituted_13_rounds(delta, n)),
        "max_msg_bits": ledger.max_message_bits,
        "valid": ok,
    }


def test_e5_delta_plus_one(benchmark):
    records = sweep(measure, grid(max_degree=[3, 4, 6, 8], seed=[7]))
    assert all(record["valid"] for record in records)
    emit("E5_delta_plus_one", render_records(
        records,
        ["max_degree", "n", "delta", "rounds_thm13", "rounds_baseline",
         "paper_model", "substituted_model", "max_msg_bits", "valid"],
        title="E5: Theorem 1.3 pipeline vs Linial+reduction baseline "
              "(substituted framework carries an extra ~sqrt(Delta); "
              "see DESIGN.md)",
    ))
    benchmark(measure, max_degree=4, seed=8)
