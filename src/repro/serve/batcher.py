"""Admission control and micro-batching for the coloring daemon.

Requests enter a bounded :class:`asyncio.Queue` (a full queue is an
immediate 503 -- the daemon sheds load instead of buffering unboundedly)
and leave in *micro-batches*: consecutive waiting requests that share a
batch key (same topology identity + same algorithm class, see
:func:`repro.serve.schema.batch_key`) are coalesced into one pool
dispatch, so the mapped topology and its derived caches are paid for
once per batch rather than once per request.

Batching is opportunistic, not windowed: a batch is whatever compatible
work is *already waiting* when the dispatcher looks -- an idle daemon
adds zero latency, a loaded one amortizes naturally.  Non-matching
requests stay in a holdover deque in arrival order, so heterogeneous
traffic cannot starve.

Dispatches run concurrently (each batch is its own task awaiting its
pool future), which keeps all pool workers busy under mixed traffic.  A
batch whose worker dies is retried once on a freshly restarted pool;
requests in a batch that fails terminally get the exception, and the
daemon keeps serving.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..obs import metrics as obs_metrics
from .pool import PoolSupervisor
from .schema import batch_key


class ServerBusy(Exception):
    """The admission queue is full (HTTP 503)."""


class _Pending:
    __slots__ = ("spec", "key", "future", "enqueued")

    def __init__(self, spec: Dict[str, Any], future: "asyncio.Future"):
        self.spec = spec
        self.key = batch_key(spec)
        self.future = future
        self.enqueued = time.perf_counter()


class Batcher:
    """Queue -> micro-batch -> pool bridge; one per server."""

    def __init__(self, supervisor: PoolSupervisor,
                 max_batch: int = 8, max_queue: int = 256):
        self.supervisor = supervisor
        self.max_batch = max(1, max_batch)
        self.max_queue = max_queue
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(max_queue)
        self._holdover: Deque[_Pending] = deque()
        self._task: Optional["asyncio.Task"] = None
        self._dispatches: set = set()
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Admit one request; resolves to its executor payload."""
        if self._queue.full():
            raise ServerBusy(
                f"admission queue full ({self.max_queue} waiting)"
            )
        item = _Pending(spec, asyncio.get_running_loop().create_future())
        self._queue.put_nowait(item)
        return await item.future

    def depth(self) -> int:
        """Requests admitted but not yet dispatched."""
        return self._queue.qsize() + len(self._holdover)

    def stats(self) -> Dict[str, Any]:
        batches = self.batches
        return {
            "depth": self.depth(),
            "capacity": self.max_queue,
            "max_batch": self.max_batch,
            "batches": batches,
            "batched_requests": self.batched_requests,
            "mean_batch": (self.batched_requests / batches
                           if batches else 0.0),
            "largest_batch": self.largest_batch,
        }

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-batcher"
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        # Let in-flight dispatches deliver their responses.
        if self._dispatches:
            await asyncio.gather(*tuple(self._dispatches),
                                 return_exceptions=True)

    async def _run(self) -> None:
        while True:
            batch = await self._next_batch()
            task = asyncio.get_running_loop().create_task(
                self._dispatch(batch)
            )
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _next_batch(self) -> List[_Pending]:
        """Form the next micro-batch from waiting compatible requests."""
        if not self._holdover:
            self._holdover.append(await self._queue.get())
        # Sweep everything already admitted into the holdover so the
        # batch sees the full waiting set, not just the queue head.
        while not self._queue.empty():
            self._holdover.append(self._queue.get_nowait())
        first = self._holdover.popleft()
        batch = [first]
        rest: Deque[_Pending] = deque()
        while self._holdover and len(batch) < self.max_batch:
            item = self._holdover.popleft()
            if item.key == first.key:
                batch.append(item)
            else:
                rest.append(item)
        rest.extend(self._holdover)
        self._holdover = rest
        return batch

    async def _dispatch(self, batch: List[_Pending]) -> None:
        specs = [item.spec for item in batch]
        dispatched = time.perf_counter()
        loop = asyncio.get_running_loop()
        payloads: Optional[List[Dict[str, Any]]] = None
        error: Optional[BaseException] = None
        for attempt in (0, 1):
            try:
                future = await loop.run_in_executor(
                    None, self.supervisor.submit_batch, specs
                )
                result = await asyncio.wrap_future(future)
                payloads = self._unwrap(result)
                error = None
                break
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 - fault barrier
                # Typically BrokenProcessPool from a worker killed
                # mid-batch; rebuild the pool and retry this batch once.
                error = exc
                if attempt == 0:
                    await loop.run_in_executor(
                        None, self.supervisor.restart
                    )
        self.batches += 1
        self.batched_requests += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        # One batch-size observation per batch and one queue-wait
        # observation per dispatched request, so the histogram
        # invariants hold by construction: batch-size count == batches,
        # batch-size sum == batched_requests, queue-wait count ==
        # batched_requests.
        obs_metrics.histogram(
            "repro_batch_size", "Requests coalesced per pool dispatch",
            buckets=obs_metrics.SIZE_BUCKETS,
        ).observe(len(batch))
        wait_hist = obs_metrics.histogram(
            "repro_queue_wait_seconds",
            "Admission-to-dispatch wait per request",
            buckets=obs_metrics.LATENCY_BUCKETS,
        )
        for item in batch:
            wait_hist.observe(dispatched - item.enqueued)
        for index, item in enumerate(batch):
            if item.future.done():  # client went away
                continue
            if error is not None or payloads is None:
                item.future.set_exception(
                    RuntimeError(f"batch execution failed: {error}")
                )
                continue
            payload = payloads[index]
            timing = payload.setdefault("timing", {})
            timing["queue_wait_s"] = dispatched - item.enqueued
            payload["batch"] = {"size": len(batch), "index": index}
            item.future.set_result(payload)

    @staticmethod
    def _unwrap(result: Any) -> List[Dict[str, Any]]:
        """Extract payloads from a pool result, folding in worker metrics.

        The supervisor dispatches
        :func:`~repro.serve.executor.execute_batch_metrics`, which wraps
        the payload list with the worker's registry delta and pid; a
        plain list (tests driving :func:`execute_batch` directly) passes
        through untouched.  Same-pid deltas -- thread-mode pools share
        this process, whose registry already saw the updates -- are
        dropped to avoid double-counting.
        """
        if not isinstance(result, dict):
            return result
        delta = result.get("metrics")
        if delta and result.get("pid") != os.getpid():
            try:
                obs_metrics.merge(delta)
            except obs_metrics.MetricError:
                pass  # foreign layout must not fail the batch
        return result["payloads"]
