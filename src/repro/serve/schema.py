"""Request/response protocol for the coloring daemon.

One schema, three speakers: the :mod:`repro.serve` daemon's HTTP bodies,
the ``repro scale --json`` / ``repro trace --json`` CLI output, and the
benchmark suite's machine-readable records all share the
:func:`envelope` result format, so a script that parses one parses all
of them (``schema`` stamps the format version, ``kind`` the payload
flavor).

Requests are plain JSON dicts with two parts:

* ``topology`` -- *what graph*: a named streamed family
  (``ring-stream``, ``grid-stream``, ``tree-stream``, ``gnp-stream``,
  ``regular-stream`` -- the same specs ``repro scale`` takes), a
  materialized seeded family (``gnp``), an inline ``edges`` list, or a
  previously-uploaded ``graph`` handle;
* ``algorithm`` -- *what to run*: ``greedy-reduction`` (the scale
  workload: inflated seed palette reduced to ``Delta + 1``),
  ``two-sweep`` (Algorithm 1 on a seeded random OLDC instance), or
  ``fast-two-sweep`` (Algorithm 2, ``epsilon > 0``).

:func:`parse_request` normalizes and validates a request into the spec
dict the executor consumes; :func:`topology_key` and :func:`batch_key`
derive the hashable identities the daemon batches and caches by.
Validation errors raise :class:`RequestError` (HTTP 400), never leak a
traceback to a worker.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: Version stamp carried by every response body this repo emits.
#: v2 (over v1): ``scale-run`` and daemon results carry ``peak_rss_kb``
#: (renamed from ``rss_kb``), a top-level ``nodes_per_s``, and a
#: ``colors_blake2b`` checksum of the final color column; the
#: ``greedy-reduction`` algorithm spec accepts a ``shards`` count.
SCHEMA_VERSION = "repro-result/v2"

#: Node-count ceiling for a single request (the scale frontier's regime;
#: anything bigger should go through the offline ``repro scale`` path).
MAX_REQUEST_NODES = 2_000_000

#: Edge ceiling for inline / uploaded edge lists (JSON-transport bound).
MAX_REQUEST_EDGES = 5_000_000

TOPOLOGY_KINDS = (
    "ring-stream", "grid-stream", "tree-stream", "gnp-stream",
    "regular-stream", "gnp", "edges", "graph",
)

ALGORITHMS = ("greedy-reduction", "two-sweep", "fast-two-sweep")


class RequestError(ValueError):
    """A malformed or out-of-bounds request (HTTP 400, never a crash)."""


def envelope(kind: str, **sections: Any) -> Dict[str, Any]:
    """The shared result format: ``{"schema", "kind", **sections}``."""
    body: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": kind}
    body.update(sections)
    return body


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _require_int(mapping: Dict[str, Any], field: str, minimum: int,
                 maximum: int, default: Optional[int] = None) -> int:
    value = mapping.get(field, default)
    if value is None:
        raise RequestError(f"missing required field {field!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{field!r} must be an integer")
    if not minimum <= value <= maximum:
        raise RequestError(
            f"{field!r} must lie in [{minimum}, {maximum}], got {value}"
        )
    return value


def _require_float(mapping: Dict[str, Any], field: str, minimum: float,
                   maximum: float, default: Optional[float] = None) -> float:
    value = mapping.get(field, default)
    if value is None:
        raise RequestError(f"missing required field {field!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"{field!r} must be a number")
    if not minimum <= float(value) <= maximum:
        raise RequestError(
            f"{field!r} must lie in [{minimum}, {maximum}], got {value}"
        )
    return float(value)


def edges_digest(n: int, edges: List[Tuple[int, int]]) -> str:
    """A stable identity for an edge *stream* (order included).

    Adjacency order is part of the simulation's identity -- the CSR fill
    appends endpoints in stream order -- so two permutations of the same
    edge set are deliberately *different* graphs here.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(n).encode("ascii"))
    for u, v in edges:
        hasher.update(f":{u},{v}".encode("ascii"))
    return hasher.hexdigest()


def parse_topology(spec: Any) -> Dict[str, Any]:
    """Normalize and validate a topology spec; returns a fresh dict."""
    if not isinstance(spec, dict):
        raise RequestError("'topology' must be an object")
    kind = spec.get("kind")
    if kind not in TOPOLOGY_KINDS:
        raise RequestError(
            f"unknown topology kind {kind!r}; expected one of "
            f"{', '.join(TOPOLOGY_KINDS)}"
        )
    out: Dict[str, Any] = {"kind": kind}
    if kind == "ring-stream":
        out["n"] = _require_int(spec, "n", 3, MAX_REQUEST_NODES)
    elif kind == "grid-stream":
        out["rows"] = _require_int(spec, "rows", 2, 4096)
        out["cols"] = _require_int(spec, "cols", 2, 4096)
    elif kind == "tree-stream":
        out["depth"] = _require_int(spec, "depth", 1, 20)
    elif kind == "gnp-stream":
        out["n"] = _require_int(spec, "n", 2, MAX_REQUEST_NODES)
        out["p"] = _require_float(spec, "p", 0.0, 1.0)
        out["seed"] = _require_int(spec, "seed", 0, 2 ** 31 - 1, default=0)
    elif kind == "regular-stream":
        out["n"] = _require_int(spec, "n", 3, MAX_REQUEST_NODES)
        out["degree"] = _require_int(spec, "degree", 1, 512)
        out["seed"] = _require_int(spec, "seed", 0, 2 ** 31 - 1, default=0)
        if out["n"] * out["degree"] % 2 != 0:
            raise RequestError("n * degree must be even for regular-stream")
        if out["degree"] >= out["n"]:
            raise RequestError("degree must be smaller than n")
    elif kind == "gnp":
        out["n"] = _require_int(spec, "n", 2, 4096)
        out["density"] = _require_float(spec, "density", 0.0, 1.0)
        out["seed"] = _require_int(spec, "seed", 0, 2 ** 31 - 1, default=0)
    elif kind == "edges":
        out["n"] = _require_int(spec, "n", 1, MAX_REQUEST_NODES)
        edges = spec.get("edges")
        if not isinstance(edges, list) or len(edges) > MAX_REQUEST_EDGES:
            raise RequestError(
                f"'edges' must be a list of [u, v] pairs "
                f"(at most {MAX_REQUEST_EDGES})"
            )
        clean: List[Tuple[int, int]] = []
        for pair in edges:
            if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                    or not all(isinstance(x, int) and not isinstance(x, bool)
                               for x in pair)):
                raise RequestError(f"malformed edge {pair!r}")
            u, v = pair
            if not (0 <= u < out["n"] and 0 <= v < out["n"]) or u == v:
                raise RequestError(f"edge {pair!r} out of bounds for n={out['n']}")
            clean.append((u, v))
        out["edges"] = clean
        out["id"] = edges_digest(out["n"], clean)
    else:  # kind == "graph"
        graph_id = spec.get("id")
        if not isinstance(graph_id, str) or not graph_id:
            raise RequestError("'graph' topology needs a string 'id'")
        out["id"] = graph_id
    return out


def parse_algorithm(spec: Any) -> Dict[str, Any]:
    """Normalize and validate an algorithm spec; returns a fresh dict."""
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, dict):
        raise RequestError("'algorithm' must be an object or a name")
    name = spec.get("name")
    if name not in ALGORITHMS:
        raise RequestError(
            f"unknown algorithm {name!r}; expected one of "
            f"{', '.join(ALGORITHMS)}"
        )
    out: Dict[str, Any] = {"name": name}
    if name == "greedy-reduction":
        out["colors"] = _require_int(spec, "colors", 2, 1 << 20, default=16)
        out["validate"] = bool(spec.get("validate", True))
        # shards > 1 routes the run through the sharded engine; inside
        # a pool worker the shards execute serially (identical bytes),
        # so this is a layout knob, never a correctness one.
        out["shards"] = _require_int(spec, "shards", 1, 4096, default=1)
        return out
    out["p"] = _require_int(spec, "p", 1, 64, default=2)
    out["seed"] = _require_int(spec, "seed", 0, 2 ** 31 - 1, default=0)
    out["id_bits"] = _require_int(spec, "id_bits", 0, 62, default=0)
    out["check"] = bool(spec.get("check", True))
    lists = spec.get("lists", "random")
    if lists not in ("random", "stuck"):
        raise RequestError("'lists' must be 'random' or 'stuck'")
    out["lists"] = lists
    if name == "fast-two-sweep":
        out["epsilon"] = _require_float(spec, "epsilon", 1e-6, 1.0,
                                        default=0.25)
    return out


def parse_request(body: Any) -> Dict[str, Any]:
    """Validate a ``POST /color`` body into the executor's spec dict."""
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(body) - {"topology", "algorithm", "include_colors",
                           "trace"}
    if unknown:
        raise RequestError(f"unknown request fields: {sorted(unknown)}")
    return {
        "topology": parse_topology(body.get("topology")),
        "algorithm": parse_algorithm(body.get("algorithm")),
        "include_colors": bool(body.get("include_colors", False)),
        "trace": bool(body.get("trace", True)),
    }


def topology_key(topology: Dict[str, Any]) -> Hashable:
    """The hashable identity a topology is cached/published under.

    Named streamed families reuse the exact keys the
    :mod:`repro.graphs.streaming` builders intern under, so a daemon
    request and a ``repro scale`` run share one shm segment.
    """
    kind = topology["kind"]
    if kind == "ring-stream":
        return ("ring-stream", topology["n"])
    if kind == "grid-stream":
        return ("grid-stream", topology["rows"], topology["cols"])
    if kind == "tree-stream":
        return ("tree-stream", topology["depth"])
    if kind == "gnp-stream":
        return ("gnp-stream", topology["n"], topology["p"],
                topology["seed"])
    if kind == "regular-stream":
        return ("regular-stream", topology["n"], topology["degree"],
                topology["seed"])
    if kind == "gnp":
        return ("gnp", topology["n"], topology["density"],
                topology["seed"])
    return ("uploaded", topology["id"])


def batch_key(spec: Dict[str, Any]) -> Hashable:
    """Micro-batching identity: same topology + same algorithm class.

    Requests sharing a batch key run back-to-back in one worker
    dispatch, so the mapped topology, its value tables, and the
    vectorized kernel state stay hot across the whole batch.
    """
    return (spec["algorithm"]["name"], topology_key(spec["topology"]))
