"""Coloring-as-a-service: a persistent daemon over the simulator.

The batch tools (``repro scale``, ``repro two-sweep``, the benchmark
runners) pay the full cold start on every invocation -- interpreter
boot, imports, worker spawn, cache building, topology compilation.
:mod:`repro.serve` keeps all of that alive in one long-running process:
a stdlib-only asyncio HTTP daemon whose worker pool holds the warm
substrate caches, shared-memory topologies, and frozen engine across
requests, with micro-batching of compatible requests in between.

Layers (each its own module):

* :mod:`~repro.serve.schema` -- request validation + the shared
  ``repro-result/v2`` response envelope (also used by ``--json`` CLI
  output);
* :mod:`~repro.serve.executor` -- one request to one payload; the same
  code path serves the daemon's workers and serial reference runs,
  which is what makes bit-identity testable;
* :mod:`~repro.serve.pool` -- the supervised process-lifetime
  :class:`~repro.sim.parallel.WorkerPool`;
* :mod:`~repro.serve.batcher` -- bounded admission + micro-batching;
* :mod:`~repro.serve.server` -- the asyncio HTTP front end;
* :mod:`~repro.serve.client` -- the keep-alive test/benchmark client.
"""

from .batcher import Batcher, ServerBusy
from .client import ServeClient
from .executor import execute_batch, execute_request
from .pool import PoolSupervisor
from .schema import (
    RequestError,
    SCHEMA_VERSION,
    batch_key,
    envelope,
    parse_request,
    topology_key,
)
from .server import ColoringServer, ServerHandle

__all__ = [
    "Batcher",
    "ColoringServer",
    "PoolSupervisor",
    "RequestError",
    "SCHEMA_VERSION",
    "ServeClient",
    "ServerBusy",
    "ServerHandle",
    "batch_key",
    "envelope",
    "execute_batch",
    "execute_request",
    "parse_request",
    "topology_key",
]
