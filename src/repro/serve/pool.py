"""Pool supervision: keep a warm :class:`WorkerPool` alive across faults.

The daemon's throughput story rests on one process-lifetime pool whose
workers hold the warm state (substrate-cache snapshot, frozen engine,
attached shm topologies).  The supervisor wraps that pool with the two
things a long-running service needs on top:

* **restart on breakage** -- a worker killed mid-task breaks a
  ``ProcessPoolExecutor`` permanently; the supervisor builds a
  replacement pool, republishes its topologies (refcounts keep the
  segments alive across the handover), and only then closes the broken
  one.  In-flight requests of the broken batch fail; the service does
  not.
* **stable identity for /stats** -- occupancy counters, restart count
  and warmup cost survive across restarts.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, Mapping, Optional

from ..sim.parallel import PoolUnavailable, WorkerPool
from .executor import execute_batch_metrics


class PoolSupervisor:
    """Owns the request pool for a daemon's whole lifetime."""

    def __init__(self, workers: Optional[int] = None,
                 engine: Optional[str] = None,
                 mode: str = "process"):
        self._workers = workers
        self._requested_engine = engine
        self._mode = mode
        self._lock = threading.Lock()
        self._topologies: Dict[Hashable, Any] = {}
        self.restarts = 0
        self.pool = WorkerPool(max_workers=workers, engine=engine,
                               mode=mode)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The engine frozen into the workers (stable across restarts)."""
        return self.pool.engine

    def warm(self) -> float:
        """Spawn workers now; returns warmup seconds (see ``WorkerPool``)."""
        return self.pool.warm()

    def add_topologies(self, topologies: Mapping[Hashable, Any]
                       ) -> Dict[Hashable, dict]:
        """Publish topologies and remember them for pool restarts."""
        with self._lock:
            self._topologies.update(topologies)
            return self.pool.add_topologies(topologies)

    def submit_batch(self, specs):
        """Dispatch one micro-batch; returns a concurrent Future.

        Ships the current shm handle export with the batch so workers
        spawned before a late topology publication still attach it.  A
        dead pool is rebuilt once before giving up.
        """
        handles = self.pool.topology_handles()
        try:
            return self.pool.submit(execute_batch_metrics, specs, handles)
        except PoolUnavailable:
            self.restart()
            return self.pool.submit(execute_batch_metrics, specs, handles)

    def restart(self) -> None:
        """Replace a broken pool with a fresh warm one.

        The new pool re-publishes the supervisor's topologies *before*
        the old pool is closed, so the shm refcounts never touch zero
        and the segments stay mapped throughout the handover.
        """
        with self._lock:
            old = self.pool
            replacement = WorkerPool(
                max_workers=self._workers,
                engine=self._requested_engine or old.engine,
                mode=self._mode,
            )
            if self._topologies:
                replacement.add_topologies(self._topologies)
            self.pool = replacement
            self.restarts += 1
        old.close()
        try:
            replacement.warm()
        except PoolUnavailable:  # pragma: no cover - thread fallback path
            pass

    def stats(self) -> Dict[str, Any]:
        snapshot = self.pool.stats()
        snapshot["restarts"] = self.restarts
        return snapshot

    def close(self) -> None:
        self.pool.close()
