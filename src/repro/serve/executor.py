"""Request execution: the one code path behind every daemon response.

:func:`execute_request` turns a validated request spec (see
:mod:`repro.serve.schema`) into a plain-dict payload -- coloring result,
cost ledger, logical trace events, timing, and a lightweight per-request
manifest.  The daemon's worker pool calls it through
:func:`execute_batch`; tests and the benchmark call it directly in the
serving process as the *serial reference*, and the acceptance contract
is that both paths produce byte-identical logical streams (compare
``canonical_lines`` of the returned trace) and identical ledgers.

Design constraints that shape this module:

* everything returned must be picklable **and** JSON-serializable plain
  data -- payloads cross a process pool and then an HTTP socket;
* algorithm failures are *results*, not crashes: an infeasible instance
  or a stuck node yields ``status: "error"`` with the exception's type
  and message, and the worker process stays healthy for the next batch;
* the per-request manifest is deliberately cheap.  The full
  :func:`repro.obs.manifest.collect_manifest` shells out to ``git`` --
  fine once per benchmark, absurd per request -- so requests carry only
  the fields that vary per execution (engine, pid, cache/kernel counter
  deltas, wall times); the daemon writes one full manifest at boot.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..sim.errors import SimulationError
from ..sim.metrics import CostLedger
from .schema import RequestError, topology_key

#: Result payloads above this node count drop the full color mapping
#: unless the request explicitly asks for it (``include_colors``).
_COLORS_INLINE_LIMIT = 4096


def counters_delta(before: Dict[str, Dict[str, int]],
                   after: Dict[str, Dict[str, int]]
                   ) -> Dict[str, Dict[str, int]]:
    """Per-registry ``{hits, misses}`` deltas between two snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for name, counts in after.items():
        base = before.get(name, {})
        hits = counts.get("hits", 0) - base.get("hits", 0)
        misses = counts.get("misses", 0) - base.get("misses", 0)
        if hits or misses:
            delta[name] = {"hits": hits, "misses": misses}
    return delta


def _kernel_delta(before: Dict[str, Any],
                  after: Dict[str, Any]) -> Dict[str, int]:
    delta = {}
    for field in ("runs", "fallbacks"):
        moved = after.get(field, 0) - before.get(field, 0)
        if moved:
            delta[field] = moved
    return delta


def resolve_topology(topology: Dict[str, Any]) -> Tuple[Hashable, Any]:
    """Build (or fetch warm) the compiled network for a topology spec.

    Returns ``(key, compiled)``.  Every kind resolves to a
    :class:`~repro.sim.compiled.CompiledNetwork`: streamed families via
    their interning/shm-aware builders, seeded ``gnp`` via the interned
    generator's ``compile()`` cache, inline ``edges`` via a CSR build
    that itself consults shm and the interned registry, and ``graph``
    handles strictly via shm (the daemon publishes uploads there).
    """
    from ..graphs.streaming import (
        csr_from_edges,
        stream_gnp,
        stream_grid,
        stream_regular,
        stream_ring,
        stream_tree,
    )

    kind = topology["kind"]
    key = topology_key(topology)
    if kind == "ring-stream":
        return key, stream_ring(topology["n"])
    if kind == "grid-stream":
        return key, stream_grid(topology["rows"], topology["cols"])
    if kind == "tree-stream":
        return key, stream_tree(topology["depth"])
    if kind == "gnp-stream":
        return key, stream_gnp(topology["n"], topology["p"],
                               topology["seed"])
    if kind == "regular-stream":
        return key, stream_regular(topology["n"], topology["degree"],
                                   topology["seed"])
    if kind == "gnp":
        from ..graphs.generators import gnp_graph

        network = gnp_graph(topology["n"], topology["density"],
                            topology["seed"])
        return key, network.compile()
    if kind == "edges":
        from ..graphs.generators import _interned
        from ..sim import shm
        from ..sim.compiled import CompiledNetwork
        from ..substrates.cache import record_lookup

        shared = shm.lookup(key)
        record_lookup("topologies", shared is not None)
        if shared is not None:
            return key, shared
        n = topology["n"]
        edges = [tuple(pair) for pair in topology["edges"]]

        def build() -> CompiledNetwork:
            indptr, indices = csr_from_edges(n, edges)
            return CompiledNetwork.from_csr(indptr, indices)

        return key, _interned(key, build, nodes=n)
    # kind == "graph": strictly a warm handle -- the daemon rewrites
    # uploads to inline edges when shared memory is unavailable.
    from ..sim import shm
    from ..substrates.cache import record_lookup

    shared = shm.lookup(key)
    record_lookup("topologies", shared is not None)
    if shared is None:
        raise RequestError(
            f"unknown graph handle {topology['id']!r} "
            "(upload it via POST /graphs first)"
        )
    return key, shared


def _describe(kind: str, compiled: Any) -> Dict[str, Any]:
    return {
        "kind": kind,
        "n": compiled.n,
        "m": compiled.m,
        "max_degree": compiled.raw_max_degree(),
    }


def _colors_payload(colors: Dict[Any, int], n: int,
                    include_colors: bool) -> Dict[str, Any]:
    """Summarize a coloring: class count, stable checksum, optional map.

    The blake2b checksum over the dense ``(node, color)`` sequence lets
    two payloads be compared for bit-identical colorings without
    shipping (or even keeping) million-entry mappings.
    """
    import hashlib

    hasher = hashlib.blake2b(digest_size=16)
    for node in sorted(colors, key=repr):
        hasher.update(f"{node!r}={colors[node]}:".encode())
    payload: Dict[str, Any] = {
        "color_count": len(set(colors.values())),
        "colors_blake2b": hasher.hexdigest(),
    }
    if include_colors and n <= _COLORS_INLINE_LIMIT:
        payload["colors"] = {str(node): color
                             for node, color in colors.items()}
    return payload


def _run_greedy_reduction(compiled: Any, params: Dict[str, Any],
                          ledger: CostLedger
                          ) -> Tuple[Dict[str, Any], Dict[Any, int]]:
    """The ``repro scale`` workload: inflated palette down to Delta+1."""
    from ..graphs.streaming import inflated_seed_coloring
    from ..substrates.greedy import greedy_color_reduction

    delta = compiled.raw_max_degree()
    target = delta + 1
    colors, q = inflated_seed_coloring(compiled,
                                       max(params["colors"], 2 * target))
    shards = params.get("shards", 1)
    if shards > 1:
        from ..sim.scheduler import use_engine
        from ..sim.sharded import use_shards

        # Inside a pool worker the sharded engine runs its shards
        # serially in-process (workers never nest pools), so the result
        # is byte-identical to the vectorized path by construction.
        with use_shards(shards), use_engine("sharded"):
            result = greedy_color_reduction(compiled, colors, q, target,
                                            ledger=ledger)
    else:
        result = greedy_color_reduction(compiled, colors, q, target,
                                        ledger=ledger)
    payload: Dict[str, Any] = {"q": q, "target": target}
    if shards > 1:
        payload["shards"] = shards
    if params["validate"]:
        violations = sum(
            1 for i, j in compiled.edge_ids() if result[i] == result[j]
        )
        if result and max(result.values()) >= target:
            violations += 1
        payload["valid"] = violations == 0
    return payload, result


def _run_sweep(compiled: Any, params: Dict[str, Any],
               ledger: CostLedger, fast: bool
               ) -> Tuple[Dict[str, Any], Dict[Any, int]]:
    """Algorithm 1 / 2 on a seeded OLDC instance over the topology."""
    from ..coloring.random_instances import random_oldc_instance
    from ..coloring.validate import check_oldc
    from ..core.fast_two_sweep import fast_two_sweep
    from ..core.two_sweep import two_sweep
    from ..graphs.identifiers import random_ids, sequential_ids
    from ..graphs.oriented import orient_by_id

    graph = orient_by_id(compiled)
    if params["lists"] == "stuck":
        # A deliberately infeasible instance: every node holds the single
        # color 0 with zero allowed defect, so any edge wedges the sweep.
        # Exercises AlgorithmFailure isolation without randomness.
        from ..coloring.instance import OLDCInstance

        instance = OLDCInstance(
            graph,
            {node: (0,) for node in graph.nodes},
            {node: {0: 0} for node in graph.nodes},
        )
    else:
        epsilon = params.get("epsilon", 0.0) if fast else 0.0
        instance = random_oldc_instance(
            graph, p=params["p"], seed=params["seed"], epsilon=epsilon,
        )
    if params["id_bits"]:
        q = 1 << params["id_bits"]
        if q < compiled.n:
            raise RequestError(
                f"id_bits={params['id_bits']} gives only {q} ids "
                f"for {compiled.n} nodes"
            )
        ids = random_ids(compiled, params["seed"], bits=params["id_bits"])
    else:
        q = compiled.n
        ids = sequential_ids(compiled)
    check = params["check"] and params["lists"] != "stuck"
    if fast:
        result = fast_two_sweep(instance, ids, q, params["p"],
                                params["epsilon"], ledger=ledger,
                                check=check)
    else:
        result = two_sweep(instance, ids, q, params["p"],
                           ledger=ledger, check=check)
    violations = check_oldc(instance, result.colors)
    payload = {
        "q": q,
        "p": params["p"],
        "valid": not violations,
        "stats": {k: v for k, v in result.stats.items()
                  if isinstance(v, (int, float, str, bool))},
    }
    return payload, result.colors


def execute_request(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one validated request spec to a plain-dict payload.

    Never raises for algorithm- or instance-level failures; those come
    back as ``{"status": "error", "error": {...}}`` payloads so a worker
    process survives any request it is handed.  Only truly unexpected
    exceptions (bugs) propagate.
    """
    from ..obs.tracer import Tracer, logical_view, use_tracer
    from ..sim.kernels import kernel_stats
    from ..sim.scheduler import default_engine
    from ..substrates.cache import cache_counters

    algorithm = spec["algorithm"]
    topology = spec["topology"]
    counters_before = cache_counters()
    kernels_before = kernel_stats()
    started = time.perf_counter()
    ledger = CostLedger()
    tracer: Optional[Tracer] = Tracer() if spec.get("trace", True) else None
    payload: Dict[str, Any] = {
        "algorithm": algorithm["name"],
        "topology": dict(topology),
    }
    payload["topology"].pop("edges", None)  # never echo bulk data back
    try:
        build_start = time.perf_counter()
        key, compiled = resolve_topology(topology)
        build_s = time.perf_counter() - build_start
        payload["topology"] = _describe(topology["kind"], compiled)
        payload["topology"]["key"] = list(map(str, key)) \
            if isinstance(key, tuple) else str(key)
        solve_start = time.perf_counter()
        scope = use_tracer(tracer) if tracer is not None else None
        try:
            if scope is not None:
                scope.__enter__()
            if algorithm["name"] == "greedy-reduction":
                result, colors = _run_greedy_reduction(
                    compiled, algorithm, ledger
                )
            else:
                result, colors = _run_sweep(
                    compiled, algorithm, ledger,
                    fast=algorithm["name"] == "fast-two-sweep",
                )
        finally:
            if scope is not None:
                scope.__exit__(None, None, None)
        solve_s = time.perf_counter() - solve_start
        result.update(_colors_payload(colors, compiled.n,
                                      spec.get("include_colors", False)))
        payload["status"] = "ok"
        payload["result"] = result
        payload["timing"] = {"build_s": build_s, "solve_s": solve_s}
        payload["nodes_per_s"] = (round(compiled.n / solve_s)
                                  if solve_s > 0 else None)
    except (SimulationError, RequestError) as exc:
        payload["status"] = "error"
        payload["error"] = {
            "type": type(exc).__name__,
            "message": str(exc),
        }
        payload["timing"] = {}
    from ..obs.manifest import peak_rss_kb

    payload["ledger"] = ledger.to_dict()
    payload["trace"] = logical_view(tracer.events) if tracer else None
    payload["timing"]["total_s"] = time.perf_counter() - started
    payload["peak_rss_kb"] = peak_rss_kb()
    payload["manifest"] = {
        "engine": default_engine(),
        "pid": os.getpid(),
        "cache_counters": counters_delta(counters_before,
                                         cache_counters()),
        "kernels": _kernel_delta(kernels_before, kernel_stats()),
    }
    return payload


def execute_batch(specs: List[Dict[str, Any]],
                  handles: Optional[Dict[Hashable, Any]] = None
                  ) -> List[Dict[str, Any]]:
    """Run a homogeneous micro-batch inside a pool worker.

    ``handles`` is the parent's current shared-topology export; attaching
    is idempotent and cheap, and it is how topologies published *after*
    the pool booted reach already-spawned workers.  The first request of
    a batch pays any cold build; the rest ride its warm caches -- the
    point of batching by ``(algorithm, topology)``.
    """
    if handles:
        from ..sim import shm

        shm.receive_handles(handles)
    return [execute_request(spec) for spec in specs]


def execute_batch_metrics(specs: List[Dict[str, Any]],
                          handles: Optional[Dict[Hashable, Any]] = None
                          ) -> Dict[str, Any]:
    """:func:`execute_batch` plus this batch's metrics-registry delta.

    The daemon's dispatch path: the worker ships back
    ``{"payloads", "pid", "metrics"}`` so the serving process can fold
    the worker's counters (kernel hits, cache lookups, per-run ledger
    totals) into its own registry.  A *delta*, not a cumulative
    snapshot, so repeated batches on a long-lived worker stay additive;
    stamped with the pid so a thread-mode pool (same process, updates
    already landed) is merged zero times, not twice.
    """
    from ..obs import metrics as obs_metrics

    before = obs_metrics.snapshot()
    payloads = execute_batch(specs, handles)
    return {
        "payloads": payloads,
        "pid": os.getpid(),
        "metrics": obs_metrics.snapshot_delta(before,
                                              obs_metrics.snapshot()),
    }
