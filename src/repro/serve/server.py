"""The coloring daemon: a stdlib-only asyncio HTTP/1.1 front end.

One :class:`ColoringServer` owns the whole warm-state story:

* boot: load the on-disk substrate cache (``REPRO_SIM_CACHE_DIR``),
  install shared-memory signal cleanup, spawn and warm the worker pool,
  publish any prewarm topologies, then start listening;
* steady state: parse requests, admit them through the
  :class:`~repro.serve.batcher.Batcher`, and stream JSON responses over
  keep-alive connections while tracking rolling latency percentiles;
* shutdown: stop accepting, drain in-flight batches, close the pool
  (releasing its shm topologies), and spill the substrate cache back to
  disk so the *next* boot starts warm.

The HTTP layer is deliberately minimal -- request line, headers,
``Content-Length`` bodies, keep-alive -- because the daemon talks to
benchmark harnesses and scripts, not browsers.  Routes:

=======  =========  ====================================================
method   path       purpose
=======  =========  ====================================================
GET      /healthz   liveness + uptime
GET      /stats     occupancy, latency percentiles, cache/pool counters
GET      /metrics   the unified registry in Prometheus text format
POST     /graphs    upload an edge list; returns a reusable graph handle
POST     /color     run one coloring request (see ``serve.schema``)
=======  =========  ====================================================

:class:`ServerHandle` hosts a server on a background thread with its own
event loop -- the harness tests and ``benchmarks/bench_serve.py`` use it
to drive a real TCP daemon in-process.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs.metrics import percentile
from .batcher import Batcher, ServerBusy
from .executor import resolve_topology
from .pool import PoolSupervisor
from .schema import (
    RequestError,
    envelope,
    parse_request,
    parse_topology,
)

#: Refuse request bodies above this size (inline edge lists included).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Rolling window for the /stats latency percentiles.
_LATENCY_WINDOW = 2048

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
    503: "Service Unavailable",
}


# ``percentile`` is re-exported from :mod:`repro.obs.metrics`: the
# ceil-based upper nearest rank, shared with ``Histogram.quantile`` so
# the rolling window and the histogram view agree (the old local copy
# used ``round()``, whose banker's rounding resolved p50 of ``[1, 2]``
# to rank 1 and quietly accepted ``fraction=0.0``).
__all__ = ["ColoringServer", "ServerHandle", "percentile"]


class ColoringServer:
    """One daemon: listener + batcher + supervised warm worker pool."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 engine: Optional[str] = None,
                 mode: str = "process",
                 max_batch: int = 8,
                 max_queue: int = 256,
                 prewarm: Tuple[Dict[str, Any], ...] = ()):
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self.supervisor = PoolSupervisor(workers=workers, engine=engine,
                                         mode=mode)
        self.batcher = Batcher(self.supervisor, max_batch=max_batch,
                               max_queue=max_queue)
        self._prewarm = tuple(prewarm)
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_monotonic: Optional[float] = None
        self._latencies_ms: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.requests: Dict[str, int] = {
            "total": 0, "ok": 0, "errors": 0, "rejected": 0,
        }
        self._by_algorithm: Dict[str, int] = {}
        self._uploads: Dict[str, Dict[str, Any]] = {}
        self.boot: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm everything, then start listening (sets :attr:`port`)."""
        from ..sim import shm
        from ..substrates import cache

        loop = asyncio.get_running_loop()
        disk_loaded = cache.load_from_disk()
        shm.install_signal_cleanup()
        warmup_s = await loop.run_in_executor(None, self.supervisor.warm)
        prewarmed = []
        for raw in self._prewarm:
            topology = parse_topology(raw)
            key, compiled = await loop.run_in_executor(
                None, resolve_topology, topology
            )
            self.supervisor.add_topologies({key: compiled})
            prewarmed.append(str(key))
        self.boot = {
            "disk_cache_loaded": disk_loaded,
            "warmup_s": warmup_s,
            "prewarmed": prewarmed,
        }
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def stop(self) -> None:
        """Graceful shutdown: drain, close pool, spill caches to disk."""
        from ..substrates import cache

        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.close)
        cache.save_to_disk()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                if isinstance(body, int):  # oversized: body holds length
                    await self._respond(writer, 413, envelope(
                        "error", status="error",
                        error={"type": "PayloadTooLarge",
                               "message": f"body of {body} bytes exceeds "
                                          f"{MAX_BODY_BYTES}"},
                    ))
                    break
                status, payload = await self._route(method, path, body)
                keep = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, keep_alive=keep)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError, ValueError):
            pass  # half-closed or garbled peer: drop the connection
        except asyncio.CancelledError:
            # Shutdown cancels handlers parked on an idle keep-alive
            # read; completing quietly keeps asyncio.run's teardown from
            # logging a spurious traceback per open connection.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF.

        Returns ``(method, path, headers, body)``; an oversized body is
        *not* read -- the body slot carries its length as an ``int``.
        """
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length > MAX_BODY_BYTES:
            return method, path, headers, length
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       keep_alive: bool = False) -> None:
        # A ``str`` payload is served verbatim as Prometheus text
        # (``GET /metrics``); everything else is a JSON envelope.
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed()
            return 200, envelope("health", status="ok",
                                 uptime_s=self.uptime_s())
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed()
            return 200, self._stats_payload()
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed()
            self._refresh_gauges()
            return 200, obs_metrics.exposition()
        if path == "/graphs":
            if method != "POST":
                return self._method_not_allowed()
            return await self._post_graph(body)
        if path == "/color":
            if method != "POST":
                return self._method_not_allowed()
            return await self._post_color(body)
        return 404, envelope("error", status="error", error={
            "type": "NotFound", "message": f"no route {path!r}",
        })

    @staticmethod
    def _method_not_allowed() -> Tuple[int, Dict[str, Any]]:
        return 405, envelope("error", status="error", error={
            "type": "MethodNotAllowed",
            "message": "use GET for /healthz, /stats and /metrics, "
                       "POST otherwise",
        })

    @staticmethod
    def _parse_body(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"body is not valid JSON: {error}") from None

    async def _post_graph(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        """Upload an edge list once; color it many times by handle."""
        try:
            raw = self._parse_body(body)
            if not isinstance(raw, dict):
                raise RequestError("graph upload must be a JSON object")
            topology = parse_topology({
                "kind": "edges",
                "n": raw.get("n"),
                "edges": raw.get("edges"),
            })
        except RequestError as error:
            return 400, envelope("error", status="error", error={
                "type": "RequestError", "message": str(error),
            })
        loop = asyncio.get_running_loop()
        key, compiled = await loop.run_in_executor(
            None, resolve_topology, topology
        )
        handles = self.supervisor.add_topologies({key: compiled})
        graph_id = topology["id"]
        self._uploads[graph_id] = {
            "n": topology["n"],
            "edges": topology["edges"],
            "published": key in handles,
        }
        return 200, envelope(
            "graph-upload", status="ok", id=graph_id,
            n=compiled.n, m=compiled.m,
            max_degree=compiled.raw_max_degree(),
            published=key in handles,
        )

    @staticmethod
    def _count_request(route: str, status: int) -> None:
        obs_metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by route and status code",
            labelnames=("route", "code"),
        ).labels(route=route, code=str(status)).inc()

    async def _post_color(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        status, payload = await self._color_inner(body)
        self._count_request("/color", status)
        return status, payload

    async def _color_inner(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        started = time.perf_counter()
        self.requests["total"] += 1
        try:
            spec = parse_request(self._parse_body(body))
        except RequestError as error:
            self.requests["rejected"] += 1
            return 400, envelope("error", status="error", error={
                "type": "RequestError", "message": str(error),
            })
        self._rewrite_upload(spec)
        name = spec["algorithm"]["name"]
        self._by_algorithm[name] = self._by_algorithm.get(name, 0) + 1
        try:
            payload = await self.batcher.submit(spec)
        except ServerBusy as error:
            self.requests["rejected"] += 1
            return 503, envelope("error", status="error", error={
                "type": "ServerBusy", "message": str(error),
            })
        except RuntimeError as error:
            self.requests["errors"] += 1
            return 500, envelope("error", status="error", error={
                "type": "BatchFailed", "message": str(error),
            })
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._latencies_ms.append(elapsed_ms)
        obs_metrics.histogram(
            "repro_request_seconds",
            "End-to-end /color latency (admission to response)",
            buckets=obs_metrics.LATENCY_BUCKETS,
        ).observe(elapsed_ms / 1000.0)
        payload["timing"]["request_wall_s"] = elapsed_ms / 1000.0
        if payload["status"] == "ok":
            self.requests["ok"] += 1
            return 200, envelope("coloring", **payload)
        self.requests["errors"] += 1
        status = 400 if payload["error"]["type"] == "RequestError" else 422
        return status, envelope("coloring", **payload)

    def _rewrite_upload(self, spec: Dict[str, Any]) -> None:
        """Resolve a ``graph`` handle the workers cannot see via shm.

        When the upload could not be published to shared memory (or a
        thread-mode pool shares this process anyway), the spec is
        rewritten to inline edges whose digest reproduces the same
        topology key, so caching and batching identities are unchanged.
        """
        topology = spec["topology"]
        if topology["kind"] != "graph":
            return
        record = self._uploads.get(topology["id"])
        if record is not None and not record["published"]:
            spec["topology"] = {
                "kind": "edges",
                "n": record["n"],
                "edges": record["edges"],
                "id": topology["id"],
            }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _refresh_gauges(self) -> None:
        """Push point-in-time server state into the registry gauges.

        Counters and histograms update at their call sites; gauges that
        mirror live server state (queue depth, pool size, uptime) are
        sampled here, immediately before a snapshot or exposition, so
        scrapes always see current values.
        """
        obs_metrics.gauge(
            "repro_queue_depth", "Requests admitted but not yet dispatched"
        ).set(float(self.batcher.depth()))
        pool = self.supervisor.stats()
        obs_metrics.gauge(
            "repro_pool_workers", "Worker processes/threads in the pool"
        ).set(float(pool.get("workers") or 0))
        obs_metrics.gauge(
            "repro_uptime_seconds", "Seconds since the daemon began listening"
        ).set(self.uptime_s())

    def _stats_payload(self) -> Dict[str, Any]:
        from ..sim import shm
        from ..substrates import cache

        self._refresh_gauges()
        window = tuple(self._latencies_ms)
        return envelope(
            "stats",
            status="ok",
            uptime_s=self.uptime_s(),
            boot=self.boot,
            requests={**self.requests,
                      "by_algorithm": dict(self._by_algorithm)},
            latency_ms={
                "window": len(window),
                "p50": percentile(window, 0.50),
                "p99": percentile(window, 0.99),
            },
            queue=self.batcher.stats(),
            pool=self.supervisor.stats(),
            caches={
                "enabled": cache.cache_enabled(),
                "registries": cache.registry_sizes(),
                "counters": cache.cache_counters(),
                "disk": cache.disk_state(),
            },
            topologies={
                "published": sorted(
                    str(key) for key in (shm.export_handles() or {})
                ),
                "uploads": len(self._uploads),
            },
            metrics=obs_metrics.snapshot(),
        )


class ServerHandle:
    """Host a :class:`ColoringServer` on a background thread.

    ``with ServerHandle(ColoringServer(...)) as handle:`` gives tests and
    benchmarks a real TCP daemon (``handle.host`` / ``handle.port``)
    inside the current process, with clean startup/shutdown ordering.
    """

    def __init__(self, server: ColoringServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._boot_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def __enter__(self) -> "ServerHandle":
        ready = threading.Event()
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as error:  # noqa: BLE001 - reraised
                self._boot_error = error
                ready.set()
                return
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not ready.wait(timeout=120):
            raise RuntimeError("server failed to start within 120 s")
        if self._boot_error is not None:
            raise self._boot_error
        return self

    def __exit__(self, *exc_info: Any) -> None:
        assert self._loop is not None and self._thread is not None
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self._loop)
        try:
            future.result(timeout=120)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=120)
            if not self._loop.is_running():
                self._loop.close()
