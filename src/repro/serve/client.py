"""A minimal keep-alive client for the coloring daemon.

Shared by the harness tests and ``benchmarks/bench_serve.py`` so both
talk to the daemon the same way: one persistent ``http.client``
connection per client, JSON in, JSON out.  Not a public SDK -- just
enough to measure and verify the server without duplicating plumbing.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Dict, Optional, Tuple


class ServeClient:
    """One keep-alive connection to a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.conn = HTTPConnection(host, port, timeout=timeout)

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, Any]]:
        """Send one request; returns ``(status, decoded_json)``.

        Retries once on a dropped keep-alive connection (the server may
        close between requests), never on an HTTP error.
        """
        payload = None if body is None else json.dumps(body)
        headers = {} if payload is None else {
            "Content-Type": "application/json",
        }
        for attempt in (0, 1):
            try:
                self.conn.request(method, path, body=payload,
                                  headers=headers)
                response = self.conn.getresponse()
                data = response.read()
                return response.status, json.loads(data.decode("utf-8"))
            except (ConnectionError, OSError):
                self.conn.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def color(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/color", body)

    def upload(self, n: int, edges) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/graphs",
                            {"n": n, "edges": [list(e) for e in edges]})

    def stats(self) -> Dict[str, Any]:
        status, payload = self.request("GET", "/stats")
        assert status == 200, payload
        return payload

    def metrics(self) -> str:
        """Scrape ``GET /metrics``; returns the raw Prometheus text.

        Bypasses :meth:`request` because the exposition format is plain
        text, not JSON.
        """
        for attempt in (0, 1):
            try:
                self.conn.request("GET", "/metrics")
                response = self.conn.getresponse()
                data = response.read()
                assert response.status == 200, data
                return data.decode("utf-8")
            except (ConnectionError, OSError):
                self.conn.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def healthz(self) -> Dict[str, Any]:
        status, payload = self.request("GET", "/healthz")
        assert status == 200, payload
        return payload

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
