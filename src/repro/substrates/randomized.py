"""Randomized trial coloring -- the classic O(log n) baseline.

The paper's introduction: "Even with the simple first randomized
algorithms of the 1980s, it is possible to (Delta+1)-color a graph in
only O(log n) rounds [ABI86, Lin87, Lub86]".  This module implements that
baseline in its standard *trial coloring* form, generalized to
(deg+1)-list coloring:

each round, every uncolored node picks a uniform candidate from its
remaining list and keeps it if no uncolored neighbor picked the same
candidate and no colored neighbor owns it.  A node succeeds with
probability at least 1/4 per round (its list always exceeds the number
of competitors), so all nodes finish in O(log n) rounds w.h.p.

It is the randomized comparator for the deterministic pipelines of
Theorems 1.3 and 1.5 in benchmark E13.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Mapping, Optional, Tuple

from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.errors import InstanceError
from ..sim.message import color_bits
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol

Node = Hashable
Color = int

_TAG_TRIAL = "trial"
_TAG_KEEP = "keep"


class TrialColoringProgram(NodeProgram):
    """One node's side of the randomized trial coloring.

    Round structure (two rounds per attempt):

    * odd rounds: every active node broadcasts a random candidate from
      its current list;
    * even rounds: a node keeps its candidate iff no neighbor proposed
      the same one, announces the decision, and halts; neighbors remove
      kept colors from their lists.
    """

    def __init__(self, node: Node, color_list: Tuple[Color, ...],
                 color_space_size: int, rng: random.Random):
        self.node = node
        self.available = list(color_list)
        self.color_space_size = color_space_size
        self.rng = rng
        self.candidate: Optional[Color] = None
        self.final_color: Optional[Color] = None

    def on_round(self, ctx: RoundContext) -> None:
        # Keep-announcements travel even -> odd rounds; consume them
        # before anything else so the list is current when proposing.
        for color in ctx.received(_TAG_KEEP).values():
            if color in self.available:
                self.available.remove(color)
        if ctx.round_number % 2 == 1:
            self._propose(ctx)
        else:
            self._resolve(ctx)

    def _propose(self, ctx: RoundContext) -> None:
        if not self.available:
            raise InstanceError(
                f"node {self.node!r}: list exhausted -- the instance was "
                f"not a (deg+1)-list instance"
            )
        self.candidate = self.rng.choice(self.available)
        ctx.broadcast(
            _TAG_TRIAL, self.candidate,
            bits=color_bits(self.color_space_size),
        )

    def _resolve(self, ctx: RoundContext) -> None:
        proposals = ctx.received(_TAG_TRIAL)
        conflicted = any(
            color == self.candidate for color in proposals.values()
        )
        if not conflicted and self.candidate in self.available:
            self.final_color = self.candidate
            ctx.broadcast(
                _TAG_KEEP, self.candidate,
                bits=color_bits(self.color_space_size),
            )
            ctx.halt()
        self.candidate = None

    def output(self) -> Optional[Color]:
        return self.final_color


def randomized_list_coloring(network: Network,
                             lists: Mapping[Node, Iterable[Color]],
                             seed: int,
                             ledger: Optional[CostLedger] = None,
                             bandwidth: Optional[BandwidthModel] = None,
                             color_space_size: Optional[int] = None,
                             max_rounds: int = 10_000) -> ColoringResult:
    """Randomized (deg+1)-list coloring in O(log n) rounds w.h.p.

    ``lists[v]`` must hold at least ``deg(v) + 1`` colors.  The run is
    reproducible: node randomness is derived from ``seed`` and the node's
    position, independent of scheduling.
    """
    frozen = {
        node: tuple(dict.fromkeys(lists[node])) for node in network
    }
    for node in network:
        if len(frozen[node]) < network.degree(node) + 1:
            raise InstanceError(
                f"node {node!r}: list of {len(frozen[node])} colors < "
                f"deg + 1 = {network.degree(node) + 1}"
            )
    if color_space_size is None:
        color_space_size = max(
            (max(colors) for colors in frozen.values() if colors),
            default=0,
        ) + 1
    ledger = ensure_ledger(ledger)
    master = random.Random(seed)
    programs = {
        node: TrialColoringProgram(
            node, frozen[node], color_space_size,
            random.Random(master.getrandbits(64)),
        )
        for node in network.nodes
    }
    with ledger.phase("randomized-trial-coloring"):
        outputs, _ = run_protocol(
            network, programs, bandwidth=bandwidth, ledger=ledger,
            max_rounds=max_rounds,
        )
    return ColoringResult(colors=dict(outputs), orientation=None,
                          ledger=ledger)


def randomized_delta_plus_one(network: Network, seed: int,
                              ledger: Optional[CostLedger] = None,
                              bandwidth: Optional[BandwidthModel] = None
                              ) -> ColoringResult:
    """Randomized (Delta+1)-coloring: identical full lists everywhere."""
    palette = tuple(range(network.raw_max_degree() + 1))
    lists = {node: palette for node in network}
    return randomized_list_coloring(
        network, lists, seed, ledger=ledger, bandwidth=bandwidth,
        color_space_size=len(palette),
    )
