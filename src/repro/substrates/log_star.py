"""Iterated logarithm helpers.

``log*`` appears in every round bound of the paper; benchmarks print it
next to measured round counts.
"""

from __future__ import annotations

import math


def log_star(x: float, base: float = 2.0) -> int:
    """The iterated logarithm: how often log must be applied to reach <= 1."""
    if x <= 1.0:
        return 0
    count = 0
    value = float(x)
    while value > 1.0:
        value = math.log(value, base)
        count += 1
        if count > 128:  # pragma: no cover - unreachable for finite floats
            raise OverflowError("log* did not converge")
    return count


def tower(height: int, base: float = 2.0) -> float:
    """The power tower ``base^base^...`` of the given height (inverse of log*)."""
    if height < 0:
        raise ValueError("height must be non-negative")
    value = 1.0
    for _ in range(height):
        value = base ** value
    return value


def ceil_log2(x: int) -> int:
    """``ceil(log2 x)`` for positive integers, with ``ceil_log2(1) = 0``."""
    if x < 1:
        raise ValueError("x must be positive")
    return (x - 1).bit_length()
