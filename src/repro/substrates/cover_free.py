"""Polynomial set systems over finite fields.

Both Linial's O(Delta^2)-coloring [Lin87] and the defective coloring of
Lemma 3.4 [Kuh09, KS18] rest on the same algebraic gadget: encode each of
``q`` current colors as a polynomial of degree at most ``k`` over a prime
field ``F_m`` (possible whenever ``q <= m**(k+1)``).  Two *distinct*
polynomials agree on at most ``k`` evaluation points, so a node can pick a
point where few (or no) neighbors' polynomials collide with its own --
that point/value pair is its new color from a palette of size ``m**2``.

The module provides the polynomial family, prime search, and the step
parameter selection for both the *proper* (zero collisions with up to
``avoid`` neighbors) and *defective* (collision rate at most
``alpha_step``) recoloring steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import arrays
from .cache import (
    ARRAY_REGISTRY_LIMIT,
    cache_enabled,
    record_lookup,
    registry,
)

#: Largest full evaluation table (``q * m`` int64 entries) exported for
#: the NumPy kernel backend; larger families are evaluated per round on
#: the colors actually present instead of as one dense table.
VALUE_TABLE_LIMIT = 1 << 22


def _is_prime_raw(n: int) -> bool:
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality (fields here are small).

    Memoized process-wide (``REPRO_SIM_CACHE=0`` disables): schedule
    construction probes the same field sizes for every trial of a sweep.
    """
    if not cache_enabled():
        return _is_prime_raw(n)
    memo = registry("is_prime")
    cached = memo.get(n)
    if cached is None:
        cached = memo[n] = _is_prime_raw(n)
    return cached


def next_prime(n: int) -> int:
    """The smallest prime >= n (memoized like :func:`is_prime`)."""
    if not cache_enabled():
        candidate = max(2, n)
        while not _is_prime_raw(candidate):
            candidate += 1
        return candidate
    memo = registry("next_prime")
    cached = memo.get(n)
    if cached is None:
        candidate = max(2, n)
        while not is_prime(candidate):
            candidate += 1
        cached = memo[n] = candidate
    return cached


class PolynomialFamily:
    """Degree-``k`` polynomials over ``F_m`` indexed by ``0 .. q-1``.

    Index ``i`` maps to the polynomial whose coefficients are the base-``m``
    digits of ``i``; distinct indices give distinct polynomials, and two
    distinct degree-``<= k`` polynomials agree on at most ``k`` points.
    """

    def __init__(self, q: int, m: int, k: int):
        if not is_prime(m):
            raise ValueError(f"field size {m} is not prime")
        if k < 1:
            raise ValueError("degree bound k must be at least 1")
        if q > m ** (k + 1):
            raise ValueError(
                f"cannot encode {q} indices as degree-{k} polynomials "
                f"over F_{m} (capacity {m ** (k + 1)})"
            )
        self.q = q
        self.m = m
        self.k = k
        # Per-instance memo tables.  A family is immutable apart from
        # these (they only ever grow), so a shared instance (see
        # :func:`shared_family`) keeps its evaluation table warm across
        # nodes, trials, and -- via :func:`repro.substrates.cache.snapshot`
        # -- process-pool workers.
        self._coeff_memo: dict = {}
        self._eval_memo: dict = {}

    def coefficients(self, index: int) -> Tuple[int, ...]:
        """Base-``m`` digits of ``index`` (constant coefficient first)."""
        cached = self._coeff_memo.get(index)
        if cached is not None:
            return cached
        if not 0 <= index < self.q:
            raise ValueError(f"index {index} out of range [0, {self.q})")
        digits = []
        value = index
        for _ in range(self.k + 1):
            digits.append(value % self.m)
            value //= self.m
        result = tuple(digits)
        self._coeff_memo[index] = result
        return result

    def evaluate(self, index: int, x: int) -> int:
        """Evaluate polynomial ``index`` at point ``x`` (Horner over F_m)."""
        # Horner over F_m only sees x mod m, so normalizing keeps the
        # flat integer key collision-free for out-of-field points.
        key = index * self.m + x % self.m
        cached = self._eval_memo.get(key)
        if cached is not None:
            return cached
        acc = 0
        for coefficient in reversed(self.coefficients(index)):
            acc = (acc * x + coefficient) % self.m
        self._eval_memo[key] = acc
        return acc

    def pair_color(self, index: int, x: int) -> int:
        """The palette-``m**2`` color ``(x, p_index(x))`` flattened."""
        return x * self.m + self.evaluate(index, x)

    # ------------------------------------------------------------------
    # NumPy backend export (repro.sim.arrays)
    # ------------------------------------------------------------------
    def coefficient_matrix(self):
        """All ``q`` coefficient rows as a ``(q, k + 1)`` int64 ndarray.

        Row ``i`` equals :meth:`coefficients` ``(i)``; ``None`` when the
        array backend is disabled or the family exceeds its int64
        overflow bounds (:func:`repro.sim.arrays.field_fits`).
        """
        np = arrays.get_numpy()
        if np is None or not arrays.field_fits(self.m, self.q):
            return None
        return arrays.coefficient_matrix(
            np, np.arange(self.q, dtype=np.int64), self.m, self.k
        )

    def value_table(self):
        """The full ``(q, m)`` evaluation matrix for the NumPy backend.

        ``table[i, x] == evaluate(i, x)`` -- one batched modular Horner
        pass replaces ``q * m`` scalar evaluations.  Returns ``None``
        when the array backend is off, the family exceeds the int64
        overflow bounds, or the table would be larger than
        :data:`VALUE_TABLE_LIMIT` entries.  Cached process-wide on
        ``(q, m, k)`` (``REPRO_SIM_CACHE=0`` disables) so repeated
        trials -- and, via :func:`repro.substrates.cache.snapshot`,
        process-pool workers -- share one read-only table.
        """
        np = arrays.get_numpy()
        if np is None or not arrays.field_fits(self.m, self.q) \
                or self.q * self.m > VALUE_TABLE_LIMIT:
            return None
        if not cache_enabled():
            return self._value_table_raw(np)
        memo = registry("value_tables", ARRAY_REGISTRY_LIMIT)
        key = (self.q, self.m, self.k)
        table = memo.get(key)
        if table is None:
            table = memo[key] = self._value_table_raw(np)
        return table

    def _value_table_raw(self, np):
        table = arrays.batched_horner(
            np, np.arange(self.q, dtype=np.int64), self.m, self.k
        )
        table.setflags(write=False)
        return table

    def value_rows(self, colors):
        """Evaluation rows for an int64 ndarray of valid color indices.

        ``value_rows(c)[r, x] == evaluate(c[r], x)``.  Callers (the
        NumPy kernel paths) guarantee ``0 <= c < q`` and that the array
        backend is active; out-of-range indices are undefined here, just
        as they are for a raw table lookup.
        """
        table = self.value_table()
        if table is not None:
            return table[colors]
        return arrays.batched_horner(
            arrays.get_numpy(), colors, self.m, self.k
        )

    @property
    def palette_size(self) -> int:
        return self.m * self.m


def shared_family(q: int, m: int, k: int) -> PolynomialFamily:
    """The process-wide :class:`PolynomialFamily` for ``(q, m, k)``.

    Families are pure functions of their parameters, so every trial of a
    sweep can share one instance -- and with it the coefficient and
    evaluation memos, which dominate recoloring cost.  Falls back to a
    fresh instance when caching is disabled.
    """
    if not cache_enabled():
        record_lookup("families", False)
        return PolynomialFamily(q, m, k)
    memo = registry("families")
    key = (q, m, k)
    family = memo.get(key)
    record_lookup("families", family is not None)
    if family is None:
        family = memo[key] = PolynomialFamily(q, m, k)
    return family


@dataclass(frozen=True)
class RecoloringStep:
    """One algebraic recoloring step: ``q`` colors -> ``m**2`` colors."""

    q: int
    m: int
    k: int
    #: Defect budget of this step (0.0 for proper Linial steps).
    alpha_step: float = 0.0

    def family(self) -> PolynomialFamily:
        return shared_family(self.q, self.m, self.k)

    @property
    def palette_size(self) -> int:
        return self.m * self.m


def _min_field_size_for_capacity(q: int, k: int) -> int:
    """Smallest ``m`` with ``m**(k+1) >= q``."""
    if q <= 1:
        return 2
    m = max(2, int(round(q ** (1.0 / (k + 1)))))
    while m ** (k + 1) < q:
        m += 1
    while m > 2 and (m - 1) ** (k + 1) >= q:
        m -= 1
    return m


def choose_proper_step(q: int, avoid: int) -> Optional[RecoloringStep]:
    """Parameters for one *proper* recoloring step from ``q`` colors.

    ``avoid`` is the number of neighbors whose polynomials must be dodged
    (Delta for undirected Linial, beta for the oriented variant).  Requires
    ``m > avoid * k`` so a collision-free point always exists.  Returns the
    step minimizing the new palette ``m**2``, or ``None`` when no step
    makes progress (``m**2 >= q``): the coloring is already as small as
    this technique gets.
    """
    best: Optional[RecoloringStep] = None
    max_k = max(1, int(math.log2(max(2, q))) + 1)
    for k in range(1, max_k + 1):
        m = next_prime(max(avoid * k + 1, _min_field_size_for_capacity(q, k)))
        step = RecoloringStep(q=q, m=m, k=k)
        if best is None or step.palette_size < best.palette_size:
            best = step
        # Larger k only helps while the capacity constraint dominates.
        if m == next_prime(avoid * k + 1) and k > 1:
            break
    if best is None or best.palette_size >= q:
        return None
    return best


def choose_defective_step(q: int, alpha_step: float) -> Optional[RecoloringStep]:
    """Parameters for one *defective* recoloring step from ``q`` colors.

    The step guarantees a point whose collision rate against out-neighbors
    with different current colors is at most ``k / m <= alpha_step``.
    Returns ``None`` when no palette-shrinking step exists.
    """
    if alpha_step <= 0.0:
        raise ValueError("alpha_step must be positive")
    best: Optional[RecoloringStep] = None
    max_k = max(1, int(math.log2(max(2, q))) + 1)
    for k in range(1, max_k + 1):
        min_m_defect = int(math.ceil(k / alpha_step))
        m = next_prime(max(min_m_defect, _min_field_size_for_capacity(q, k), 2))
        if k / m > alpha_step:  # pragma: no cover - next_prime guards this
            continue
        step = RecoloringStep(q=q, m=m, k=k, alpha_step=alpha_step)
        if best is None or step.palette_size < best.palette_size:
            best = step
        if m == next_prime(max(min_m_defect, 2)) and k > 1:
            break
    if best is None or best.palette_size >= q:
        return None
    return best


def proper_schedule(q: int, avoid: int) -> List[RecoloringStep]:
    """The full Linial schedule: steps until the palette stops shrinking.

    Memoized on ``(q, avoid)`` process-wide; a fresh list of the
    (immutable) steps is returned so callers may slice or mutate it.
    """
    memo = registry("proper_schedule") if cache_enabled() else None
    if memo is not None:
        cached = memo.get((q, avoid))
        record_lookup("proper_schedule", cached is not None)
        if cached is not None:
            return list(cached)
    else:
        record_lookup("proper_schedule", False)
    steps = _proper_schedule_raw(q, avoid)
    if memo is not None:
        memo[(q, avoid)] = tuple(steps)
    return steps


def _proper_schedule_raw(q: int, avoid: int) -> List[RecoloringStep]:
    steps: List[RecoloringStep] = []
    current = q
    while True:
        step = choose_proper_step(current, avoid)
        if step is None:
            return steps
        steps.append(step)
        current = step.palette_size
        if len(steps) > 64:  # pragma: no cover - schedule always converges
            raise RuntimeError("Linial schedule failed to converge")


def defective_schedule(q: int, alpha: float) -> List[RecoloringStep]:
    """The Lemma 3.4 schedule with total defect budget ``alpha``.

    The *last* step alone determines the final palette, so it should get a
    constant fraction of the budget; the earlier steps only need to pull
    ``q`` down to the last step's capacity and can share the rest.  We run
    equal-budget shrinking steps with budget ``alpha / (2 * T_hat)`` until
    they stop making progress, then append one final step with budget
    ``alpha / 2`` -- giving a palette of O(1/alpha^2) while the budgets sum
    to at most ``alpha``.  ``T_hat`` starts at an O(log* q) estimate and is
    doubled in the (unobserved in practice) case the estimate was short.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must lie in (0, 1]")

    memo = registry("defective_schedule") if cache_enabled() else None
    if memo is not None:
        cached = memo.get((q, alpha))
        record_lookup("defective_schedule", cached is not None)
        if cached is not None:
            return list(cached)
    else:
        record_lookup("defective_schedule", False)
    steps = _defective_schedule_raw(q, alpha)
    if memo is not None:
        memo[(q, alpha)] = tuple(steps)
    return steps


def _defective_schedule_raw(q: int, alpha: float) -> List[RecoloringStep]:
    t_hat = max(2, _count_equal_split_steps(q, alpha / 2.0))
    for _ in range(8):
        steps: List[RecoloringStep] = []
        current = q
        early_budget = alpha / (2.0 * t_hat)
        while len(steps) < t_hat:
            step = choose_defective_step(current, early_budget)
            if step is None:
                break
            steps.append(step)
            current = step.palette_size
        if len(steps) == t_hat and choose_defective_step(
                current, early_budget) is not None:
            # The estimate was short: more shrinking steps were available.
            t_hat *= 2
            continue
        final = choose_defective_step(current, alpha / 2.0)
        if final is not None:
            steps.append(final)
        return steps
    raise RuntimeError(
        "defective schedule failed to converge")  # pragma: no cover


def _count_equal_split_steps(q: int, budget: float) -> int:
    """Steps an equal-split schedule with the given budget would take."""
    count = 0
    current = q
    while True:
        step = choose_defective_step(current, budget)
        if step is None:
            return count
        count += 1
        current = step.palette_size
        if count > 64:  # pragma: no cover - schedules always converge
            raise RuntimeError("defective schedule failed to converge")
