"""The shared algebraic recoloring protocol.

Linial's O(Delta^2)-coloring and the Lemma 3.4 defective coloring differ
only in how a node picks its evaluation point each step:

* **proper** steps pick a point where *no* relevant neighbor's polynomial
  agrees (possible because ``m > avoid * k``),
* **defective** steps pick the point *minimizing* the number of agreeing
  relevant neighbors with a different current color (at most
  ``k/m * beta_v`` by averaging).

Color convention: every "q-coloring" in this repository uses colors
``{0, ..., q-1}`` (the paper's ``1..q`` shifted down by one).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from ..sim.congest import BandwidthModel
from ..sim.errors import AlgorithmFailure, InstanceError
from ..sim.message import color_bits
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol
from .cover_free import RecoloringStep

Node = Hashable
Color = int

_TAG = "algebraic-color"


class AlgebraicRecoloringProgram(NodeProgram):
    """One node's side of the iterated algebraic recoloring."""

    def __init__(self, node: Node, initial_color: Color,
                 schedule: Sequence[RecoloringStep],
                 relevant: frozenset):
        """``relevant``: the neighbors whose polynomials this node dodges
        (all neighbors for undirected Linial, out-neighbors otherwise)."""
        self.node = node
        self.color = initial_color
        self.schedule = list(schedule)
        self.relevant = relevant
        self._step_index = 0
        self._families = [step.family() for step in self.schedule]

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            if not self.schedule:
                ctx.halt()
                return
            ctx.broadcast(
                _TAG, self.color, bits=color_bits(self.schedule[0].q)
            )
            return
        step = self.schedule[self._step_index]
        family = self._families[self._step_index]
        neighbor_colors = ctx.received(_TAG)
        self.color = self._recolor(step, family, neighbor_colors)
        self._step_index += 1
        if self._step_index >= len(self.schedule):
            ctx.halt()
            return
        ctx.broadcast(
            _TAG,
            self.color,
            bits=color_bits(self.schedule[self._step_index].q),
        )

    def _recolor(self, step: RecoloringStep, family,
                 neighbor_colors: Mapping[Node, Color]) -> Color:
        own = self.color
        if own >= step.q:
            raise AlgorithmFailure(
                f"node {self.node!r}: color {own} outside the declared "
                f"{step.q}-coloring"
            )
        rivals = [
            color
            for sender, color in neighbor_colors.items()
            if sender in self.relevant and color != own
        ]
        if step.alpha_step == 0.0:
            return self._recolor_proper(step, family, rivals)
        return self._recolor_defective(step, family, rivals)

    def _recolor_proper(self, step: RecoloringStep, family,
                        rivals: Sequence[Color]) -> Color:
        for x in range(step.m):
            own_value = family.evaluate(self.color, x)
            if all(family.evaluate(r, x) != own_value for r in rivals):
                return x * step.m + own_value
        raise AlgorithmFailure(
            f"node {self.node!r}: no collision-free point over F_{step.m} "
            f"with {len(rivals)} rivals of degree {step.k} -- the step "
            f"parameters violate m > avoid * k"
        )

    def _recolor_defective(self, step: RecoloringStep, family,
                           rivals: Sequence[Color]) -> Color:
        best_x = 0
        best_conflicts = None
        for x in range(step.m):
            own_value = family.evaluate(self.color, x)
            conflicts = sum(
                1 for r in rivals if family.evaluate(r, x) == own_value
            )
            if best_conflicts is None or conflicts < best_conflicts:
                best_x = x
                best_conflicts = conflicts
                if conflicts == 0:
                    break
        return best_x * step.m + family.evaluate(self.color, best_x)

    def output(self) -> Color:
        return self.color


def run_recoloring(network: Network,
                   initial_colors: Mapping[Node, Color],
                   schedule: Sequence[RecoloringStep],
                   relevant: Mapping[Node, frozenset],
                   ledger: Optional[CostLedger] = None,
                   bandwidth: Optional[BandwidthModel] = None,
                   phase: str = "algebraic-recoloring"
                   ) -> Tuple[Dict[Node, Color], int]:
    """Run the schedule on every node; returns (colors, final palette size).

    ``relevant[v]`` is the set of neighbors whose polynomials node ``v``
    must account for.  Validation of the *initial* coloring is the
    caller's job (proper overall vs. proper towards out-neighbors).
    """
    ledger = ensure_ledger(ledger)
    for node in network:
        if node not in initial_colors:
            raise InstanceError(f"node {node!r} has no initial color")
    if not schedule:
        palette = max(initial_colors.values(), default=0) + 1
        return dict(initial_colors), palette
    programs = {
        node: AlgebraicRecoloringProgram(
            node, initial_colors[node], schedule, relevant[node]
        )
        for node in network
    }
    with ledger.phase(phase):
        outputs, _ = run_protocol(
            network, programs, bandwidth=bandwidth, ledger=ledger
        )
    return dict(outputs), schedule[-1].palette_size
