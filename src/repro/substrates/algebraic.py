"""The shared algebraic recoloring protocol.

Linial's O(Delta^2)-coloring and the Lemma 3.4 defective coloring differ
only in how a node picks its evaluation point each step:

* **proper** steps pick a point where *no* relevant neighbor's polynomial
  agrees (possible because ``m > avoid * k``),
* **defective** steps pick the point *minimizing* the number of agreeing
  relevant neighbors with a different current color (at most
  ``k/m * beta_v`` by averaging).

Color convention: every "q-coloring" in this repository uses colors
``{0, ..., q-1}`` (the paper's ``1..q`` shifted down by one).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from ..sim import arrays
from ..sim.congest import BandwidthModel, LocalModel
from ..sim.errors import AlgorithmFailure, InstanceError
from ..sim.kernels import KernelRound, RoundKernel, fanout_totals, register_kernel
from ..sim.message import color_bits, intern_broadcast
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol
from .cover_free import RecoloringStep

Node = Hashable
Color = int

_TAG = "algebraic-color"


class AlgebraicRecoloringProgram(NodeProgram):
    """One node's side of the iterated algebraic recoloring."""

    def __init__(self, node: Node, initial_color: Color,
                 schedule: Sequence[RecoloringStep],
                 relevant: frozenset):
        """``relevant``: the neighbors whose polynomials this node dodges
        (all neighbors for undirected Linial, out-neighbors otherwise)."""
        self.node = node
        self.color = initial_color
        # Stored as a tuple: steps are immutable, and callers that
        # normalize once (``run_recoloring``) then share one tuple
        # across the whole population, which the kernel's uniformity
        # scan detects by identity.
        self.schedule = tuple(schedule)
        self.relevant = relevant
        self._step_index = 0

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            if not self.schedule:
                ctx.halt()
                return
            ctx.broadcast(
                _TAG, self.color, bits=color_bits(self.schedule[0].q)
            )
            return
        step = self.schedule[self._step_index]
        family = step.family()
        neighbor_colors = ctx.received(_TAG)
        self.color = self._recolor(step, family, neighbor_colors)
        self._step_index += 1
        if self._step_index >= len(self.schedule):
            ctx.halt()
            return
        ctx.broadcast(
            _TAG,
            self.color,
            bits=color_bits(self.schedule[self._step_index].q),
        )

    def _recolor(self, step: RecoloringStep, family,
                 neighbor_colors: Mapping[Node, Color]) -> Color:
        own = self.color
        if own >= step.q:
            raise AlgorithmFailure(
                f"node {self.node!r}: color {own} outside the declared "
                f"{step.q}-coloring"
            )
        rivals = [
            color
            for sender, color in neighbor_colors.items()
            if sender in self.relevant and color != own
        ]
        if step.alpha_step == 0.0:
            return self._recolor_proper(step, family, rivals)
        return self._recolor_defective(step, family, rivals)

    def _recolor_proper(self, step: RecoloringStep, family,
                        rivals: Sequence[Color]) -> Color:
        for x in range(step.m):
            own_value = family.evaluate(self.color, x)
            if all(family.evaluate(r, x) != own_value for r in rivals):
                return x * step.m + own_value
        raise AlgorithmFailure(
            f"node {self.node!r}: no collision-free point over F_{step.m} "
            f"with {len(rivals)} rivals of degree {step.k} -- the step "
            f"parameters violate m > avoid * k"
        )

    def _recolor_defective(self, step: RecoloringStep, family,
                           rivals: Sequence[Color]) -> Color:
        best_x = 0
        best_conflicts = None
        for x in range(step.m):
            own_value = family.evaluate(self.color, x)
            conflicts = sum(
                1 for r in rivals if family.evaluate(r, x) == own_value
            )
            if best_conflicts is None or conflicts < best_conflicts:
                best_x = x
                best_conflicts = conflicts
                if conflicts == 0:
                    break
        return best_x * step.m + family.evaluate(self.color, best_x)

    def output(self) -> Color:
        return self.color


class AlgebraicRecoloringKernel(RoundKernel):
    """Array-at-a-time execution of a uniform algebraic recoloring run.

    One run of :class:`AlgebraicRecoloringProgram` over all nodes is a
    textbook homogeneous workload: every node broadcasts its color,
    evaluates the *same* polynomial family over the *same* schedule, and
    halts together after the last step.  The kernel keeps the colors as
    one column, pre-filters each node's relevant-neighbor dense ids
    once, and memoizes each color's evaluation row ``(P_c(0), ...,
    P_c(m-1))`` per step so the inner scan is pure list/tuple work --
    no contexts, envelopes, or ``received()`` dict builds.

    Declines populations with differing schedules or mid-run state.
    ``finalize`` restores ``color`` and ``_step_index``; the transient
    per-round inbox views have no program-side counterpart to restore.

    When the NumPy backend (:mod:`repro.sim.arrays`) is available and
    every step's field fits the int64 overflow bounds, ``prepare``
    additionally builds ndarray columns: the color column as one int64
    vector and the relevant-neighbor relation as flat ``(src, dst)``
    edge arrays.  Each step then evaluates the whole population through
    the family's batched-Horner value table and counts rival agreements
    with one segmented reduction -- bit-identical to the scalar scan
    (same integers, same first-minimum tie-breaks, same failure text in
    the same node order), just batched.
    """

    def prepare(self, compiled, programs, bandwidth):
        first = programs[0]
        schedule = first.schedule
        for program in programs:
            if program._step_index != 0 or (
                    program.schedule is not schedule
                    and program.schedule != schedule):
                return None
        order = compiled.order
        indptr = compiled.indptr
        indices = compiled.indices
        neighbor_sets = compiled.neighbor_sets
        id_rows = compiled.neighbor_id_tuples
        relevant_ids: list = []
        full_rows = True
        for i, program in enumerate(programs):
            relevant = program.relevant
            if relevant == neighbor_sets[i]:
                # Every neighbor is relevant (undirected Linial): the
                # CSR row itself is the filtered list.
                relevant_ids.append(id_rows[i])
            else:
                full_rows = False
                relevant_ids.append([
                    j for j in indices[indptr[i]:indptr[i + 1]]
                    if order[j] in relevant
                ])
        total_copies, envelopes = fanout_totals(compiled)
        columns = {
            "programs": programs,
            "order": order,
            "degrees": compiled.degrees,
            "schedule": schedule,
            "families": [step.family() for step in schedule],
            "relevant_ids": relevant_ids,
            "colors": [program.color for program in programs],
            "total_copies": total_copies,
            "envelopes": envelopes,
            # One evaluation-row memo per step: color -> tuple of the
            # polynomial's values at x = 0..m-1.
            "rows": [{} for _ in schedule],
            "check_fanout": (None if type(bandwidth) is LocalModel
                             else bandwidth.check_fanout),
            "arrays": None,
        }
        state = self._prepare_arrays(compiled, columns, full_rows)
        if state is not None:
            columns["arrays"] = state
            self.backend = "numpy"
        return columns

    def _prepare_arrays(self, compiled, columns, full_rows):
        """Build the ndarray columns, or ``None`` to keep pure Python.

        Declined (transparently -- the scalar path is bit-identical)
        when NumPy is off, the population is too small to amortize the
        array round-trips, any step's field exceeds the int64 overflow
        bounds, the worst-case match matrix would be oversized, or a
        color does not even fit in int64.
        """
        np = arrays.get_numpy()
        if np is None:
            return None
        n = compiled.n
        schedule = columns["schedule"]
        if not schedule or n < arrays.MIN_BATCH:
            return None
        if not all(arrays.field_fits(step.m, step.q) for step in schedule):
            return None
        relevant_ids = columns["relevant_ids"]
        edges = (len(compiled.indices) if full_rows
                 else sum(len(row) for row in relevant_ids))
        max_m = max(step.m for step in schedule)
        # Chunked rounds only ever materialize one chunk's match matrix,
        # so the allocation guard applies to the widest chunk -- this is
        # what lets million-node populations keep the array path.  The
        # chunk width is frozen here: one run never mixes granularities.
        chunk = arrays.chunk_size()
        if chunk and chunk < n:
            if full_rows:
                indptr = compiled.indptr
                gate_edges = max(
                    indptr[hi] - indptr[lo]
                    for lo, hi in arrays.iter_chunks(n, chunk)
                )
            else:
                gate_edges = max(
                    sum(len(relevant_ids[i]) for i in range(lo, hi))
                    for lo, hi in arrays.iter_chunks(n, chunk)
                )
        else:
            gate_edges = edges
        if gate_edges * max_m > arrays.MAX_MATCH_ELEMENTS:
            return None
        try:
            colors = np.array(columns["colors"], dtype=np.int64)
        except (OverflowError, ValueError):
            return None
        if full_rows:
            # The relevant relation is the CSR adjacency itself: use
            # the zero-copy views, no per-edge Python work.
            _, indices_np, degrees_np = compiled.numpy_views()
            src = np.repeat(np.arange(n, dtype=np.int64), degrees_np)
            dst = indices_np
        else:
            src = np.repeat(
                np.arange(n, dtype=np.int64),
                np.fromiter(map(len, relevant_ids), dtype=np.int64,
                            count=n),
            )
            dst = np.fromiter(
                (j for row in relevant_ids for j in row),
                dtype=np.int64, count=edges,
            )
        return {"np": np, "colors": colors, "src": src, "dst": dst,
                "chunk": chunk}

    def _broadcast_round(self, columns, bits) -> KernelRound:
        """Charge one all-node color broadcast (rounds 1..len(schedule))."""
        check_fanout = columns["check_fanout"]
        if check_fanout is not None:
            order = columns["order"]
            degrees = columns["degrees"]
            colors = columns["colors"]
            for i, degree in enumerate(degrees):
                if degree:
                    check_fanout(
                        intern_broadcast(order[i], _TAG, colors[i], bits),
                        degree,
                    )
        copies = columns["total_copies"]
        return KernelRound(
            active=len(columns["colors"]),
            messages=copies,
            bits=copies * bits,
            max_message_bits=bits if copies else 0,
            broadcasts=columns["envelopes"],
        )

    def step(self, round_number, columns, inboxes) -> KernelRound:
        schedule = columns["schedule"]
        if round_number == 1:
            if not schedule:
                return KernelRound(active=0)
            return self._broadcast_round(columns, color_bits(schedule[0].q))
        state = columns["arrays"]
        if state is not None:
            step = schedule[round_number - 2]
            colors = state["colors"]
            if bool(((colors < 0) | (colors >= step.q)).any()):
                # Out-of-range colors must fail with exactly the scalar
                # path's exception (text, type, node order), so hand the
                # round to it -- it always raises on such input.
                columns["colors"] = colors.tolist()
                columns["arrays"] = None
                self.backend = "python"
                return self._step_python(round_number, columns)
            return self._step_numpy(round_number, columns)
        return self._step_python(round_number, columns)

    def _step_python(self, round_number, columns) -> KernelRound:
        schedule = columns["schedule"]
        step_index = round_number - 2
        step = schedule[step_index]
        q = step.q
        m = step.m
        defective = step.alpha_step != 0.0
        evaluate = columns["families"][step_index].evaluate
        rows = columns["rows"][step_index]
        programs = columns["programs"]
        relevant_ids = columns["relevant_ids"]
        colors = columns["colors"]
        old = list(colors)
        last = step_index + 1 >= len(schedule)
        check_fanout = None if last else columns["check_fanout"]
        next_bits = 0 if last else color_bits(schedule[step_index + 1].q)
        order = columns["order"]
        degrees = columns["degrees"]

        for i, own in enumerate(old):
            if own >= q:
                raise AlgorithmFailure(
                    f"node {programs[i].node!r}: color {own} outside the "
                    f"declared {q}-coloring"
                )
            # Rival colors as a multiset: counts drive the defective
            # scan, distinct keys the proper scan, the total the proper
            # failure message -- exactly what the per-node lists yield.
            rival_counts: Dict[int, int] = {}
            for j in relevant_ids[i]:
                color = old[j]
                if color != own:
                    rival_counts[color] = rival_counts.get(color, 0) + 1
            own_row = rows.get(own)
            if own_row is None:
                own_row = rows[own] = tuple(
                    evaluate(own, x) for x in range(m)
                )
            rival_rows = []
            for color, weight in rival_counts.items():
                row = rows.get(color)
                if row is None:
                    row = rows[color] = tuple(
                        evaluate(color, x) for x in range(m)
                    )
                rival_rows.append((row, weight))
            if not defective:
                for x in range(m):
                    own_value = own_row[x]
                    if all(row[x] != own_value for row, _ in rival_rows):
                        colors[i] = x * m + own_value
                        break
                else:
                    raise AlgorithmFailure(
                        f"node {programs[i].node!r}: no collision-free "
                        f"point over F_{m} with "
                        f"{sum(rival_counts.values())} rivals of degree "
                        f"{step.k} -- the step parameters violate "
                        f"m > avoid * k"
                    )
            else:
                best_x = 0
                best_conflicts = None
                for x in range(m):
                    own_value = own_row[x]
                    conflicts = 0
                    for row, weight in rival_rows:
                        if row[x] == own_value:
                            conflicts += weight
                    if best_conflicts is None or conflicts < best_conflicts:
                        best_x = x
                        best_conflicts = conflicts
                        if conflicts == 0:
                            break
                colors[i] = best_x * m + own_row[best_x]
            if check_fanout is not None and degrees[i]:
                check_fanout(
                    intern_broadcast(order[i], _TAG, colors[i], next_bits),
                    degrees[i],
                )
        if last:
            return KernelRound(active=0)
        # The fan-out checks already ran interleaved above (a node's
        # recoloring failure must surface before a later node's
        # bandwidth failure, as in the per-node engines).
        copies = columns["total_copies"]
        return KernelRound(
            active=len(colors),
            messages=copies,
            bits=copies * next_bits,
            max_message_bits=next_bits if copies else 0,
            broadcasts=columns["envelopes"],
        )

    def _step_numpy(self, round_number, columns) -> KernelRound:
        """One whole recoloring round as batched int64 matrix work.

        ``V = value_rows(colors)`` is the ``(n, m)`` evaluation matrix;
        rival agreements are counted per node with one segmented
        reduction over the relevant-edge arrays.  ``argmax``/``argmin``
        pick the first feasible / first minimal point, matching the
        scalar scan's tie-breaking exactly.
        """
        state = columns["arrays"]
        np = state["np"]
        schedule = columns["schedule"]
        step_index = round_number - 2
        step = schedule[step_index]
        m = step.m
        family = columns["families"][step_index]
        old = state["colors"]
        n = old.shape[0]
        chunk = state.get("chunk", 0)

        if chunk and chunk < n:
            new_colors, rival_counts, failed = self._recolor_chunked(
                state, step, family, chunk
            )
        else:
            new_colors, rival_counts, failed = self._recolor_whole(
                state, step, family
            )

        last = step_index + 1 >= len(schedule)
        check_fanout = None if last else columns["check_fanout"]
        next_bits = 0 if last else color_bits(schedule[step_index + 1].q)
        if check_fanout is not None:
            # Interleave: node i's recoloring failure precedes node
            # i+1's bandwidth failure and follows node i-1's, exactly as
            # in the scalar loop.
            order = columns["order"]
            degrees = columns["degrees"]
            new_list = new_colors.tolist()
            for i in range(n):
                if failed is not None and failed[i]:
                    self._raise_no_point(columns, i, step, rival_counts)
                if degrees[i]:
                    check_fanout(
                        intern_broadcast(
                            order[i], _TAG, new_list[i], next_bits
                        ),
                        degrees[i],
                    )
        elif failed is not None:
            self._raise_no_point(
                columns, int(np.argmax(failed)), step, rival_counts
            )
        state["colors"] = new_colors
        if last:
            return KernelRound(active=0)
        copies = columns["total_copies"]
        return KernelRound(
            active=n,
            messages=copies,
            bits=copies * next_bits,
            max_message_bits=next_bits if copies else 0,
            broadcasts=columns["envelopes"],
        )

    @staticmethod
    def _recolor_whole(state, step, family):
        """Whole-population recoloring: one ``(n, m)`` value matrix."""
        np = state["np"]
        old = state["colors"]
        n = old.shape[0]
        m = step.m
        values = family.value_rows(old)
        src = state["src"]
        dst = state["dst"]
        rival = old[dst] != old[src]
        srcs = src[rival]
        rival_counts = np.bincount(srcs, minlength=n)
        conflicts = np.zeros((n, m), dtype=np.int64)
        if srcs.shape[0]:
            matches = (values[dst[rival]] == values[srcs]).astype(np.int64)
            # ``srcs`` is sorted, so consecutive starts of the non-empty
            # segments partition ``matches`` into per-node blocks.
            nonempty = rival_counts > 0
            offsets = np.concatenate(
                ([0], np.cumsum(rival_counts[:-1]))
            )[nonempty]
            conflicts[nonempty] = np.add.reduceat(matches, offsets, axis=0)

        failed = None
        if step.alpha_step != 0.0:
            best_x = np.argmin(conflicts, axis=1)
        else:
            feasible = conflicts == 0
            solvable = feasible.any(axis=1)
            if not bool(solvable.all()):
                failed = ~solvable
            best_x = np.argmax(feasible, axis=1)
        new_colors = best_x * m + values[np.arange(n), best_x]
        return new_colors, rival_counts, failed

    @staticmethod
    def _recolor_chunked(state, step, family, chunk):
        """The same round in node chunks: peak temporaries ``(chunk, m)``.

        Each chunk's slice of the sorted ``src`` edge array is found with
        ``searchsorted``; the per-chunk gathers and reductions are index
        slices of the whole-population computation, so the resulting
        colors, rival counts, and failure mask are bit-identical to
        :meth:`_recolor_whole` -- only the allocation shape changes.
        """
        np = state["np"]
        old = state["colors"]
        n = old.shape[0]
        m = step.m
        src = state["src"]
        dst = state["dst"]
        defective = step.alpha_step != 0.0
        new_colors = np.empty(n, dtype=np.int64)
        rival_counts = np.zeros(n, dtype=np.int64)
        failed_full = None if defective else np.zeros(n, dtype=bool)
        any_failed = False
        for lo, hi in arrays.iter_chunks(n, chunk):
            width = hi - lo
            begin, end = np.searchsorted(src, (lo, hi))
            src_c = src[begin:end]
            dst_c = dst[begin:end]
            values_c = family.value_rows(old[lo:hi])
            rival = old[dst_c] != old[src_c]
            srcs = src_c[rival] - lo
            counts = np.bincount(srcs, minlength=width)
            rival_counts[lo:hi] = counts
            conflicts = np.zeros((width, m), dtype=np.int64)
            if srcs.shape[0]:
                matches = (
                    family.value_rows(old[dst_c[rival]]) == values_c[srcs]
                ).astype(np.int64)
                nonempty = counts > 0
                offsets = np.concatenate(
                    ([0], np.cumsum(counts[:-1]))
                )[nonempty]
                conflicts[nonempty] = np.add.reduceat(
                    matches, offsets, axis=0
                )
            if defective:
                best_x = np.argmin(conflicts, axis=1)
            else:
                feasible = conflicts == 0
                solvable = feasible.any(axis=1)
                if not bool(solvable.all()):
                    failed_full[lo:hi] = ~solvable
                    any_failed = True
                best_x = np.argmax(feasible, axis=1)
            new_colors[lo:hi] = (
                best_x * m + values_c[np.arange(width), best_x]
            )
        return new_colors, rival_counts, failed_full if any_failed else None

    @staticmethod
    def _raise_no_point(columns, i, step, rival_counts):
        raise AlgorithmFailure(
            f"node {columns['programs'][i].node!r}: no collision-free "
            f"point over F_{step.m} with "
            f"{int(rival_counts[i])} rivals of degree "
            f"{step.k} -- the step parameters violate "
            f"m > avoid * k"
        )

    def finalize(self, columns, programs) -> None:
        state = columns["arrays"]
        colors = (state["colors"].tolist() if state is not None
                  else columns["colors"])
        steps = len(columns["schedule"])
        for program, color in zip(programs, colors):
            program.color = color
            program._step_index = steps


register_kernel(AlgebraicRecoloringProgram, AlgebraicRecoloringKernel)


def run_recoloring(network: Network,
                   initial_colors: Mapping[Node, Color],
                   schedule: Sequence[RecoloringStep],
                   relevant: Mapping[Node, frozenset],
                   ledger: Optional[CostLedger] = None,
                   bandwidth: Optional[BandwidthModel] = None,
                   phase: str = "algebraic-recoloring"
                   ) -> Tuple[Dict[Node, Color], int]:
    """Run the schedule on every node; returns (colors, final palette size).

    ``relevant[v]`` is the set of neighbors whose polynomials node ``v``
    must account for.  Validation of the *initial* coloring is the
    caller's job (proper overall vs. proper towards out-neighbors).
    """
    ledger = ensure_ledger(ledger)
    for node in network:
        if node not in initial_colors:
            raise InstanceError(f"node {node!r} has no initial color")
    if not schedule:
        palette = max(initial_colors.values(), default=0) + 1
        return dict(initial_colors), palette
    # One shared tuple for the whole population: programs alias it
    # (steps are immutable) and the kernel's uniformity scan reduces to
    # identity checks.
    schedule = tuple(schedule)
    programs = {
        node: AlgebraicRecoloringProgram(
            node, initial_colors[node], schedule, relevant[node]
        )
        for node in network
    }
    with ledger.phase(phase):
        outputs, _ = run_protocol(
            network, programs, bandwidth=bandwidth, ledger=ledger
        )
    return dict(outputs), schedule[-1].palette_size
