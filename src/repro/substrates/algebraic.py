"""The shared algebraic recoloring protocol.

Linial's O(Delta^2)-coloring and the Lemma 3.4 defective coloring differ
only in how a node picks its evaluation point each step:

* **proper** steps pick a point where *no* relevant neighbor's polynomial
  agrees (possible because ``m > avoid * k``),
* **defective** steps pick the point *minimizing* the number of agreeing
  relevant neighbors with a different current color (at most
  ``k/m * beta_v`` by averaging).

Color convention: every "q-coloring" in this repository uses colors
``{0, ..., q-1}`` (the paper's ``1..q`` shifted down by one).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from ..sim.congest import BandwidthModel, LocalModel
from ..sim.errors import AlgorithmFailure, InstanceError
from ..sim.kernels import KernelRound, RoundKernel, fanout_totals, register_kernel
from ..sim.message import color_bits, intern_broadcast
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol
from .cover_free import RecoloringStep

Node = Hashable
Color = int

_TAG = "algebraic-color"


class AlgebraicRecoloringProgram(NodeProgram):
    """One node's side of the iterated algebraic recoloring."""

    def __init__(self, node: Node, initial_color: Color,
                 schedule: Sequence[RecoloringStep],
                 relevant: frozenset):
        """``relevant``: the neighbors whose polynomials this node dodges
        (all neighbors for undirected Linial, out-neighbors otherwise)."""
        self.node = node
        self.color = initial_color
        self.schedule = list(schedule)
        self.relevant = relevant
        self._step_index = 0
        self._families = [step.family() for step in self.schedule]

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            if not self.schedule:
                ctx.halt()
                return
            ctx.broadcast(
                _TAG, self.color, bits=color_bits(self.schedule[0].q)
            )
            return
        step = self.schedule[self._step_index]
        family = self._families[self._step_index]
        neighbor_colors = ctx.received(_TAG)
        self.color = self._recolor(step, family, neighbor_colors)
        self._step_index += 1
        if self._step_index >= len(self.schedule):
            ctx.halt()
            return
        ctx.broadcast(
            _TAG,
            self.color,
            bits=color_bits(self.schedule[self._step_index].q),
        )

    def _recolor(self, step: RecoloringStep, family,
                 neighbor_colors: Mapping[Node, Color]) -> Color:
        own = self.color
        if own >= step.q:
            raise AlgorithmFailure(
                f"node {self.node!r}: color {own} outside the declared "
                f"{step.q}-coloring"
            )
        rivals = [
            color
            for sender, color in neighbor_colors.items()
            if sender in self.relevant and color != own
        ]
        if step.alpha_step == 0.0:
            return self._recolor_proper(step, family, rivals)
        return self._recolor_defective(step, family, rivals)

    def _recolor_proper(self, step: RecoloringStep, family,
                        rivals: Sequence[Color]) -> Color:
        for x in range(step.m):
            own_value = family.evaluate(self.color, x)
            if all(family.evaluate(r, x) != own_value for r in rivals):
                return x * step.m + own_value
        raise AlgorithmFailure(
            f"node {self.node!r}: no collision-free point over F_{step.m} "
            f"with {len(rivals)} rivals of degree {step.k} -- the step "
            f"parameters violate m > avoid * k"
        )

    def _recolor_defective(self, step: RecoloringStep, family,
                           rivals: Sequence[Color]) -> Color:
        best_x = 0
        best_conflicts = None
        for x in range(step.m):
            own_value = family.evaluate(self.color, x)
            conflicts = sum(
                1 for r in rivals if family.evaluate(r, x) == own_value
            )
            if best_conflicts is None or conflicts < best_conflicts:
                best_x = x
                best_conflicts = conflicts
                if conflicts == 0:
                    break
        return best_x * step.m + family.evaluate(self.color, best_x)

    def output(self) -> Color:
        return self.color


class AlgebraicRecoloringKernel(RoundKernel):
    """Array-at-a-time execution of a uniform algebraic recoloring run.

    One run of :class:`AlgebraicRecoloringProgram` over all nodes is a
    textbook homogeneous workload: every node broadcasts its color,
    evaluates the *same* polynomial family over the *same* schedule, and
    halts together after the last step.  The kernel keeps the colors as
    one column, pre-filters each node's relevant-neighbor dense ids
    once, and memoizes each color's evaluation row ``(P_c(0), ...,
    P_c(m-1))`` per step so the inner scan is pure list/tuple work --
    no contexts, envelopes, or ``received()`` dict builds.

    Declines populations with differing schedules or mid-run state.
    ``finalize`` restores ``color`` and ``_step_index``; the transient
    per-round inbox views have no program-side counterpart to restore.
    """

    def prepare(self, compiled, programs, bandwidth):
        first = programs[0]
        schedule = first.schedule
        for program in programs:
            if program._step_index != 0 or program.schedule != schedule:
                return None
        order = compiled.order
        indptr = compiled.indptr
        indices = compiled.indices
        relevant_ids = []
        for i, program in enumerate(programs):
            relevant = program.relevant
            relevant_ids.append([
                j for j in indices[indptr[i]:indptr[i + 1]]
                if order[j] in relevant
            ])
        total_copies, envelopes = fanout_totals(compiled)
        return {
            "programs": programs,
            "order": order,
            "degrees": compiled.degrees,
            "schedule": schedule,
            "families": first._families,
            "relevant_ids": relevant_ids,
            "colors": [program.color for program in programs],
            "total_copies": total_copies,
            "envelopes": envelopes,
            # One evaluation-row memo per step: color -> tuple of the
            # polynomial's values at x = 0..m-1.
            "rows": [{} for _ in schedule],
            "check_fanout": (None if type(bandwidth) is LocalModel
                             else bandwidth.check_fanout),
        }

    def _broadcast_round(self, columns, bits) -> KernelRound:
        """Charge one all-node color broadcast (rounds 1..len(schedule))."""
        check_fanout = columns["check_fanout"]
        if check_fanout is not None:
            order = columns["order"]
            degrees = columns["degrees"]
            colors = columns["colors"]
            for i, degree in enumerate(degrees):
                if degree:
                    check_fanout(
                        intern_broadcast(order[i], _TAG, colors[i], bits),
                        degree,
                    )
        copies = columns["total_copies"]
        return KernelRound(
            active=len(columns["colors"]),
            messages=copies,
            bits=copies * bits,
            max_message_bits=bits if copies else 0,
            broadcasts=columns["envelopes"],
        )

    def step(self, round_number, columns, inboxes) -> KernelRound:
        schedule = columns["schedule"]
        if round_number == 1:
            if not schedule:
                return KernelRound(active=0)
            return self._broadcast_round(columns, color_bits(schedule[0].q))
        step_index = round_number - 2
        step = schedule[step_index]
        q = step.q
        m = step.m
        defective = step.alpha_step != 0.0
        evaluate = columns["families"][step_index].evaluate
        rows = columns["rows"][step_index]
        programs = columns["programs"]
        relevant_ids = columns["relevant_ids"]
        colors = columns["colors"]
        old = list(colors)
        last = step_index + 1 >= len(schedule)
        check_fanout = None if last else columns["check_fanout"]
        next_bits = 0 if last else color_bits(schedule[step_index + 1].q)
        order = columns["order"]
        degrees = columns["degrees"]

        for i, own in enumerate(old):
            if own >= q:
                raise AlgorithmFailure(
                    f"node {programs[i].node!r}: color {own} outside the "
                    f"declared {q}-coloring"
                )
            # Rival colors as a multiset: counts drive the defective
            # scan, distinct keys the proper scan, the total the proper
            # failure message -- exactly what the per-node lists yield.
            rival_counts: Dict[int, int] = {}
            for j in relevant_ids[i]:
                color = old[j]
                if color != own:
                    rival_counts[color] = rival_counts.get(color, 0) + 1
            own_row = rows.get(own)
            if own_row is None:
                own_row = rows[own] = tuple(
                    evaluate(own, x) for x in range(m)
                )
            rival_rows = []
            for color, weight in rival_counts.items():
                row = rows.get(color)
                if row is None:
                    row = rows[color] = tuple(
                        evaluate(color, x) for x in range(m)
                    )
                rival_rows.append((row, weight))
            if not defective:
                for x in range(m):
                    own_value = own_row[x]
                    if all(row[x] != own_value for row, _ in rival_rows):
                        colors[i] = x * m + own_value
                        break
                else:
                    raise AlgorithmFailure(
                        f"node {programs[i].node!r}: no collision-free "
                        f"point over F_{m} with "
                        f"{sum(rival_counts.values())} rivals of degree "
                        f"{step.k} -- the step parameters violate "
                        f"m > avoid * k"
                    )
            else:
                best_x = 0
                best_conflicts = None
                for x in range(m):
                    own_value = own_row[x]
                    conflicts = 0
                    for row, weight in rival_rows:
                        if row[x] == own_value:
                            conflicts += weight
                    if best_conflicts is None or conflicts < best_conflicts:
                        best_x = x
                        best_conflicts = conflicts
                        if conflicts == 0:
                            break
                colors[i] = best_x * m + own_row[best_x]
            if check_fanout is not None and degrees[i]:
                check_fanout(
                    intern_broadcast(order[i], _TAG, colors[i], next_bits),
                    degrees[i],
                )
        if last:
            return KernelRound(active=0)
        # The fan-out checks already ran interleaved above (a node's
        # recoloring failure must surface before a later node's
        # bandwidth failure, as in the per-node engines).
        copies = columns["total_copies"]
        return KernelRound(
            active=len(colors),
            messages=copies,
            bits=copies * next_bits,
            max_message_bits=next_bits if copies else 0,
            broadcasts=columns["envelopes"],
        )

    def finalize(self, columns, programs) -> None:
        colors = columns["colors"]
        steps = len(columns["schedule"])
        for program, color in zip(programs, colors):
            program.color = color
            program._step_index = steps


register_kernel(AlgebraicRecoloringProgram, AlgebraicRecoloringKernel)


def run_recoloring(network: Network,
                   initial_colors: Mapping[Node, Color],
                   schedule: Sequence[RecoloringStep],
                   relevant: Mapping[Node, frozenset],
                   ledger: Optional[CostLedger] = None,
                   bandwidth: Optional[BandwidthModel] = None,
                   phase: str = "algebraic-recoloring"
                   ) -> Tuple[Dict[Node, Color], int]:
    """Run the schedule on every node; returns (colors, final palette size).

    ``relevant[v]`` is the set of neighbors whose polynomials node ``v``
    must account for.  Validation of the *initial* coloring is the
    caller's job (proper overall vs. proper towards out-neighbors).
    """
    ledger = ensure_ledger(ledger)
    for node in network:
        if node not in initial_colors:
            raise InstanceError(f"node {node!r} has no initial color")
    if not schedule:
        palette = max(initial_colors.values(), default=0) + 1
        return dict(initial_colors), palette
    programs = {
        node: AlgebraicRecoloringProgram(
            node, initial_colors[node], schedule, relevant[node]
        )
        for node in network
    }
    with ledger.phase(phase):
        outputs, _ = run_protocol(
            network, programs, bandwidth=bandwidth, ledger=ledger
        )
    return dict(outputs), schedule[-1].palette_size
