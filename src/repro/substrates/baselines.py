"""Comparator algorithms and resource envelopes from prior work.

Two kinds of baseline live here:

* :func:`two_sweep_defective_baseline` is a full implementation of the
  classic *non-list* two-sweep defective coloring [BE09, BHL+19] that the
  paper's Algorithm 1 generalizes: O(beta^2 / d^2) colors with defect
  ``d`` in two sweeps.
* The ``*_required_list_size`` / ``*_local_work`` functions model the
  *resource envelopes* of the [FK23a] and [MT20] OLDC algorithms (list
  size needed and per-node computation) for the comparison experiment E3.
  Re-implementing those 20+ page algorithms is out of scope (DESIGN.md,
  substitution 4); the quantities the present paper claims to improve --
  required list size and internal computation -- are exactly what these
  envelopes provide.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..coloring.result import ColoringResult
from ..graphs.oriented import OrientedGraph
from ..sim.congest import BandwidthModel
from ..sim.errors import InstanceError
from ..sim.message import color_bits
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol

Node = Hashable
Color = int


# ----------------------------------------------------------------------
# Non-list two-sweep defective coloring [BE09, BHL+19]
# ----------------------------------------------------------------------
class _DefectiveTwoSweepProgram(NodeProgram):
    """Two opposite sweeps; the final color is the pair (c1, c2)."""

    _TAG_INITIAL = "base-initial"
    _TAG_FIRST = "base-first"
    _TAG_SECOND = "base-second"

    def __init__(self, node: Node, initial_color: Color, q: int,
                 palette: int, out_neighbors: frozenset):
        self.node = node
        self.initial_color = initial_color
        self.q = q
        self.palette = palette
        self.out_neighbors = out_neighbors
        self.neighbor_initial: Dict[Node, Color] = {}
        self.first_counts = [0] * palette
        self.second_counts = [0] * palette
        self.first: Optional[Color] = None
        self.second: Optional[Color] = None

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            ctx.broadcast(
                self._TAG_INITIAL, self.initial_color, bits=color_bits(self.q)
            )
            return
        self._collect(ctx)
        if ctx.round_number == 2 + self.initial_color:
            self.first = min(
                range(self.palette),
                key=lambda c: (self.first_counts[c], c),
            )
            ctx.broadcast(
                self._TAG_FIRST, self.first, bits=color_bits(self.palette)
            )
        if ctx.round_number == self.q + 2 + (self.q - 1 - self.initial_color):
            self.second = min(
                range(self.palette),
                key=lambda c: (self.second_counts[c], c),
            )
            ctx.broadcast(
                self._TAG_SECOND, self.second, bits=color_bits(self.palette)
            )
            ctx.halt()

    def _collect(self, ctx: RoundContext) -> None:
        for sender, payload in ctx.received(self._TAG_INITIAL).items():
            self.neighbor_initial[sender] = payload
        for sender, payload in ctx.received(self._TAG_FIRST).items():
            if (sender in self.out_neighbors
                    and self.neighbor_initial[sender] < self.initial_color):
                self.first_counts[payload] += 1
        for sender, payload in ctx.received(self._TAG_SECOND).items():
            if (sender in self.out_neighbors
                    and self.neighbor_initial[sender] > self.initial_color):
                self.second_counts[payload] += 1

    def output(self) -> Tuple[Color, Color]:
        return (self.first, self.second)


def two_sweep_defective_baseline(graph: OrientedGraph,
                                 initial_colors: Mapping[Node, Color],
                                 q: int,
                                 defect: int,
                                 ledger: Optional[CostLedger] = None,
                                 bandwidth: Optional[BandwidthModel] = None
                                 ) -> ColoringResult:
    """The classic two-sweep ``d``-defective coloring with O(beta^2/d^2) colors.

    Each sweep uses a palette of ``k = ceil((beta + 1) / (floor(d/2) + 1))``
    colors and picks the value minimizing conflicts with the already-
    processed out-neighbors (at most ``floor(beta_v / k) <= floor(d/2)``
    each); the final color is the flattened pair, so the same-colored
    out-neighbors number at most ``2 * floor(d/2) <= d``.
    """
    if defect < 0:
        raise InstanceError("defect must be non-negative")
    beta = graph.max_beta()
    palette = max(1, math.ceil((beta + 1) / (defect // 2 + 1)))
    ledger = ensure_ledger(ledger)
    programs = {
        node: _DefectiveTwoSweepProgram(
            node=node,
            initial_color=initial_colors[node],
            q=q,
            palette=palette,
            out_neighbors=frozenset(graph.out_neighbors(node)),
        )
        for node in graph.nodes
    }
    with ledger.phase("baseline-two-sweep"):
        outputs, _ = run_protocol(
            graph.network, programs, bandwidth=bandwidth, ledger=ledger
        )
    colors = {
        node: first * palette + second
        for node, (first, second) in outputs.items()
    }
    return ColoringResult(colors=colors, orientation=None, ledger=ledger)


def baseline_palette_size(beta: int, defect: int) -> int:
    """The color count of :func:`two_sweep_defective_baseline`."""
    k = max(1, math.ceil((beta + 1) / (defect // 2 + 1)))
    return k * k


# ----------------------------------------------------------------------
# Resource envelopes of [FK23a] and [MT20]
# ----------------------------------------------------------------------
def fk23_required_list_size(beta: int, defect: int, color_space: int,
                            q: int, alpha: float = 1.0) -> int:
    """List size the [FK23a] OLDC algorithm needs at uniform defect ``d``.

    From the paper's comparison: Omega((beta/d)^2 * (log beta + loglog C))
    (the loglog q term is absorbed; ``alpha`` is the unstated constant).
    """
    ratio = beta / max(1, defect)
    log_term = (
        max(1.0, math.log2(max(2, beta)))
        + max(0.0, math.log2(max(2.0, math.log2(max(2, color_space)))))
        + max(0.0, math.log2(max(2.0, math.log2(max(2, q)))))
    )
    return int(math.ceil(alpha * ratio * ratio * log_term))


def mt20_required_list_size(beta: int, color_space: int) -> int:
    """List size of the [MT20] proper list coloring: Theta(beta^2 log beta)."""
    log_term = max(1.0, math.log2(max(2, beta))) + max(
        0.0, math.log2(max(2.0, math.log2(max(2, color_space))))
    )
    return int(math.ceil(beta * beta * log_term))


def two_sweep_required_list_size(beta: int, defect: int) -> int:
    """List size our Algorithm 1 needs at uniform defect ``d``: ``p**2``.

    With ``p = ceil((beta + 1) / (d + 1))`` a list of ``p**2`` colors of
    defect ``d`` has weight ``p^2 (d+1) >= p (beta+1) > p * beta_v`` and
    ``|L| / p * beta = p * beta`` likewise, satisfying Eq. (2).
    """
    p = max(1, math.ceil((beta + 1) / (defect + 1)))
    return p * p


def two_sweep_local_work(beta: int, list_size: int) -> int:
    """Per-node computation of Algorithm 1 (comparisons, up to constants).

    Aggregating the out-neighbors' sub-lists costs ``beta * p`` and the
    sort costs ``|L| log |L|`` -- nearly linear in ``Delta`` times the
    maximum list size, as Section 1.1 states.
    """
    p = max(1, int(math.isqrt(max(1, list_size))))
    sort_cost = list_size * max(1, int(math.ceil(math.log2(max(2, list_size)))))
    return beta * p + sort_cost


def fk23_local_work(list_size: int, cap_bits: int = 64) -> int:
    """Per-node computation of [FK23a]: more than exponential in the list.

    Appendix C of the full version bounds the nodes' internal computation
    by a quantity exponential in the maximum list size (the algorithm
    searches a subset of ``2^(2^{L_v})``).  We report ``2**min(list,
    cap_bits)`` so the comparison table stays finite.
    """
    return 2 ** min(list_size, cap_bits)
