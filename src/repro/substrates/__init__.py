"""Classic-algorithm substrates the paper builds on."""

from .algebraic import AlgebraicRecoloringProgram, run_recoloring
from .arbdefective import arbdefective_coloring, arbdefective_palette
from .baselines import (
    baseline_palette_size,
    fk23_local_work,
    fk23_required_list_size,
    mt20_required_list_size,
    two_sweep_defective_baseline,
    two_sweep_local_work,
    two_sweep_required_list_size,
)
from .exhaustive import (
    solve_list_defective_bruteforce,
    solve_oldc_bruteforce,
)
from .cache import (
    cache_enabled,
    clear_substrate_cache,
    set_cache_enabled,
)
from .cover_free import (
    PolynomialFamily,
    RecoloringStep,
    choose_defective_step,
    choose_proper_step,
    defective_schedule,
    is_prime,
    next_prime,
    proper_schedule,
    shared_family,
)
from .greedy import (
    greedy_arbdefective_sweep,
    greedy_color_reduction,
    lovasz_defective_partition,
    sequential_greedy_arbdefective,
    sequential_greedy_coloring,
    sequential_greedy_defective,
)
from .kuhn_defective import defective_palette_bound, kuhn_defective_coloring
from .linial import (
    linial_coloring,
    linial_oriented_coloring,
    linial_palette_bound,
)
from .local_search import LocalSearchProgram, distributed_lovasz_partition
from .log_star import ceil_log2, log_star, tower
from .randomized import (
    TrialColoringProgram,
    randomized_delta_plus_one,
    randomized_list_coloring,
)

__all__ = [
    "AlgebraicRecoloringProgram",
    "LocalSearchProgram",
    "arbdefective_coloring",
    "arbdefective_palette",
    "PolynomialFamily",
    "RecoloringStep",
    "baseline_palette_size",
    "cache_enabled",
    "ceil_log2",
    "clear_substrate_cache",
    "choose_defective_step",
    "choose_proper_step",
    "defective_palette_bound",
    "defective_schedule",
    "distributed_lovasz_partition",
    "fk23_local_work",
    "fk23_required_list_size",
    "greedy_arbdefective_sweep",
    "greedy_color_reduction",
    "is_prime",
    "kuhn_defective_coloring",
    "linial_coloring",
    "linial_oriented_coloring",
    "linial_palette_bound",
    "log_star",
    "lovasz_defective_partition",
    "mt20_required_list_size",
    "next_prime",
    "proper_schedule",
    "randomized_delta_plus_one",
    "randomized_list_coloring",
    "run_recoloring",
    "set_cache_enabled",
    "shared_family",
    "TrialColoringProgram",
    "sequential_greedy_arbdefective",
    "sequential_greedy_coloring",
    "sequential_greedy_defective",
    "solve_list_defective_bruteforce",
    "solve_oldc_bruteforce",
    "tower",
    "two_sweep_defective_baseline",
    "two_sweep_local_work",
    "two_sweep_required_list_size",
]
