"""Greedy coloring algorithms: sequential baselines and distributed sweeps.

Three roles in the reproduction:

* sequential greedy algorithms are the textbook baselines the paper's
  introduction cites (greedy ``(Delta+1)``-coloring, the d-defective
  ``O(theta * Delta / d)``-coloring of the bounded-neighborhood-
  independence discussion, arbdefective greedy);
* :func:`greedy_arbdefective_sweep` is the distributed "process color
  classes in order" solver -- by weighted pigeonhole it solves *any* list
  arbdefective instance with slack above 1 in O(q) rounds, and serves as
  the universal correct fallback at the base of the Section 4 recursion;
* :func:`greedy_color_reduction` is the standard one-color-per-round
  reduction that turns Linial's O(Delta^2) colors into ``Delta + 1``.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from ..coloring.instance import ArbdefectiveInstance
from ..coloring.result import ColoringResult
from ..sim import arrays
from ..sim.congest import BandwidthModel, LocalModel
from ..sim.errors import (
    AlgorithmFailure,
    InfeasibleInstanceError,
    InstanceError,
)
from ..sim.kernels import KernelRound, RoundKernel, fanout_totals, register_kernel
from ..sim.message import Message, color_bits, intern_broadcast
from ..sim.sharded import ShardSpec, register_sharded
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol

Node = Hashable
Color = int


# ----------------------------------------------------------------------
# Sequential baselines
# ----------------------------------------------------------------------
def sequential_greedy_coloring(network: Network,
                               order: Optional[Sequence[Node]] = None
                               ) -> Dict[Node, Color]:
    """The sequential greedy ``(Delta + 1)``-coloring."""
    order = list(order) if order is not None else list(network.nodes)
    colors: Dict[Node, Color] = {}
    for node in order:
        used = {
            colors[neighbor]
            for neighbor in network.neighbors(node)
            if neighbor in colors
        }
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return colors


def sequential_greedy_defective(network: Network, num_colors: int,
                                order: Optional[Sequence[Node]] = None
                                ) -> Dict[Node, Color]:
    """Greedy defective coloring: pick the color minimizing conflicts so far.

    On a graph of neighborhood independence ``theta`` this is the greedy
    algorithm of the paper's introduction: each node has at most
    ``floor(Delta / num_colors)`` *earlier* same-colored neighbors, and by
    Claim 4.1 at most ``(2 * floor(Delta/num_colors) + 1) * theta``
    same-colored neighbors overall.
    """
    if num_colors < 1:
        raise InstanceError("need at least one color")
    order = list(order) if order is not None else list(network.nodes)
    colors: Dict[Node, Color] = {}
    for node in order:
        counts = [0] * num_colors
        for neighbor in network.neighbors(node):
            if neighbor in colors:
                counts[colors[neighbor]] += 1
        colors[node] = min(range(num_colors), key=lambda c: (counts[c], c))
    return colors


def sequential_greedy_arbdefective(network: Network, num_colors: int,
                                   order: Optional[Sequence[Node]] = None
                                   ) -> Tuple[Dict[Node, Color],
                                              Dict[Node, Tuple[Node, ...]]]:
    """Greedy arbdefective coloring with the towards-earlier orientation.

    Returns ``(colors, orientation)`` where each node's monochromatic
    out-neighbors are the *earlier* same-colored neighbors; their count is
    at most ``floor(deg(v) / num_colors)``, matching the classic
    ``ceil((Delta+1)/(d+1))``-color greedy arbdefective bound.
    """
    colors = sequential_greedy_defective(network, num_colors, order)
    position = {
        node: index
        for index, node in enumerate(
            order if order is not None else list(network.nodes)
        )
    }
    orientation = {
        node: tuple(
            neighbor
            for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
            and position[neighbor] < position[node]
        )
        for node in network
    }
    return colors, orientation


def lovasz_defective_partition(network: Network, num_classes: int,
                               seed: int = 0,
                               max_moves: Optional[int] = None
                               ) -> Dict[Node, Color]:
    """The [Lov66] local-search defective partition.

    Every graph has a partition into ``k`` classes in which each node has
    at most ``floor(deg(v) / k)`` same-class neighbors: start from any
    partition and repeatedly move a violating node to its least-conflicted
    class -- each move strictly decreases the number of monochromatic
    edges, so the search terminates.  This is the ``d``-defective
    ``ceil((Delta+1)/(d+1))``-coloring existence result the paper cites,
    and doubles as a ground-truth partition source for experiments.
    """
    if num_classes < 1:
        raise InstanceError("need at least one class")
    rng = _random.Random(seed)
    colors: Dict[Node, Color] = {
        node: rng.randrange(num_classes) for node in network
    }
    budget = max_moves if max_moves is not None else (
        10 * network.edge_count() * num_classes + 10 * len(network) + 10
    )
    moves = 0
    while moves <= budget:
        moved = False
        for node in network:
            counts = [0] * num_classes
            for neighbor in network.neighbors(node):
                counts[colors[neighbor]] += 1
            best = min(range(num_classes), key=lambda c: (counts[c], c))
            threshold = network.degree(node) // num_classes
            if counts[colors[node]] > threshold and (
                    counts[best] < counts[colors[node]]):
                colors[node] = best
                moved = True
                moves += 1
        if not moved:
            break
    return colors


# ----------------------------------------------------------------------
# Distributed greedy sweep for list arbdefective instances
# ----------------------------------------------------------------------
class _GreedySweepProgram(NodeProgram):
    """Color class ``c`` decides in round ``c + 2`` (after the ID round)."""

    _TAG_INITIAL = "sweep-initial"
    _TAG_FINAL = "sweep-final"

    def __init__(self, node: Node, initial_color: Color, q: int,
                 color_list: Tuple[Color, ...],
                 defect_fn: Mapping[Color, int],
                 color_space_size: int):
        self.node = node
        self.initial_color = initial_color
        self.q = q
        self.color_list = color_list
        self.defect_fn = dict(defect_fn)
        self.color_space_size = color_space_size
        self.neighbor_initial: Dict[Node, Color] = {}
        self.decided: Dict[Node, Color] = {}
        self.final_color: Optional[Color] = None
        self.mono_out: Tuple[Node, ...] = ()

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            ctx.broadcast(
                self._TAG_INITIAL, self.initial_color, bits=color_bits(self.q)
            )
            return
        for sender, payload in ctx.received(self._TAG_INITIAL).items():
            self.neighbor_initial[sender] = payload
        for sender, payload in ctx.received(self._TAG_FINAL).items():
            self.decided[sender] = payload
        if ctx.round_number != self.initial_color + 2:
            return
        counts = {color: 0 for color in self.color_list}
        for neighbor_color in self.decided.values():
            if neighbor_color in counts:
                counts[neighbor_color] += 1
        chosen = None
        for color in sorted(self.color_list):
            if counts[color] <= self.defect_fn[color]:
                chosen = color
                break
        if chosen is None:
            raise AlgorithmFailure(
                f"node {self.node!r}: greedy sweep found no feasible color; "
                f"the instance's slack must be at most 1"
            )
        self.final_color = chosen
        self.mono_out = tuple(
            neighbor
            for neighbor, neighbor_color in self.decided.items()
            if neighbor_color == chosen
        )
        for neighbor in ctx.neighbors:
            if self.neighbor_initial[neighbor] > self.initial_color:
                ctx.send(
                    neighbor,
                    self._TAG_FINAL,
                    chosen,
                    bits=color_bits(self.color_space_size),
                )
        ctx.halt()

    def output(self):
        return (self.final_color, self.mono_out)


class _GreedySweepKernel(RoundKernel):
    """Array-at-a-time greedy sweep: one column pass per color class.

    The sweep is homogeneous in everything but each node's list/defect
    data: round 1 is one uniform broadcast, and in round ``c + 2``
    exactly the class-``c`` nodes decide from their lower-class
    neighbors' finals.  The kernel buckets nodes by class once, sorts
    each node's lower neighbors into the order the per-node ``decided``
    dict would acquire them (class ascending, then sender processing
    order), and then each round touches only that round's deciders --
    idle "waiting" classes cost nothing, where the per-node engines
    still dispatch an ``on_round`` no-op for every active node.

    Declines non-uniform ``q``/``color_space_size``, mid-run state, and
    negative classes (which never decide; the fast engine reproduces
    the reference's run-forever semantics).  ``finalize`` restores
    ``final_color`` and ``mono_out``; the transient ``neighbor_initial``
    / ``decided`` ingest dicts are not reconstructed.
    """

    def prepare(self, compiled, programs, bandwidth):
        first = programs[0]
        q = first.q
        color_space_size = first.color_space_size
        for program in programs:
            if (program.q != q
                    or program.color_space_size != color_space_size
                    or program.final_color is not None
                    or program.neighbor_initial or program.decided
                    or program.initial_color < 0):
                return None
        order = compiled.order
        indptr = compiled.indptr
        indices = compiled.indices
        initial = [program.initial_color for program in programs]
        lower = []
        higher = []
        by_class: Dict[int, list] = {}
        for i, own in enumerate(initial):
            row = indices[indptr[i]:indptr[i + 1]]
            # ``decided`` fills class-ascending (class c's finals arrive
            # in round c + 3), then in sender processing order within a
            # round -- i.e. dense-id ascending.
            lower.append(sorted(
                (j for j in row if initial[j] < own),
                key=lambda j: (initial[j], j),
            ))
            higher.append(tuple(j for j in row if initial[j] > own))
            by_class.setdefault(own, []).append(i)
        total_copies, envelopes = fanout_totals(compiled)
        sorted_lists = [sorted(p.color_list) for p in programs]
        state = self._prepare_arrays(programs, sorted_lists, lower)
        return {
            "programs": programs,
            "order": order,
            "initial": initial,
            "sorted_lists": sorted_lists,
            "arrays": state,
            "lower": lower,
            "higher": higher,
            "by_class": by_class,
            "finals": [None] * len(programs),
            "mono": [()] * len(programs),
            "remaining": len(programs),
            "total_copies": total_copies,
            "envelopes": envelopes,
            "bits_initial": color_bits(q),
            "bits_final": color_bits(color_space_size),
            "check": (None if type(bandwidth) is LocalModel
                      else bandwidth.check),
            "check_fanout": (None if type(bandwidth) is LocalModel
                             else bandwidth.check_fanout),
            "degrees": compiled.degrees,
        }

    def _prepare_arrays(self, programs, sorted_lists, lower):
        """NumPy column state for the tally path, or ``None`` to decline.

        The array path keeps an int64 mirror of the finals column (``-1``
        marks undecided) so a decider with a long lower-neighbor row can
        tally committed colors with one gather + sort-based count instead
        of a Python dict loop.  Small populations, color values beyond
        int64, and topologies where every lower row stays under
        ``MIN_TALLY`` (the mirror upkeep would never pay off) keep the
        pure-Python columns.
        """
        np = arrays.get_numpy()
        if np is None or len(programs) < arrays.MIN_BATCH:
            return None
        if not any(len(row) >= arrays.MIN_TALLY for row in lower):
            return None
        for colors in sorted_lists:
            if colors and not (-arrays.MAX_COLOR <= colors[0]
                               and colors[-1] <= arrays.MAX_COLOR):
                return None
        self.backend = "numpy"
        return {
            "np": np,
            "finals": np.full(len(programs), -1, dtype=np.int64),
        }

    def step(self, round_number, columns, inboxes) -> KernelRound:
        if round_number == 1:
            bits = columns["bits_initial"]
            check_fanout = columns["check_fanout"]
            if check_fanout is not None:
                order = columns["order"]
                initial = columns["initial"]
                for i, degree in enumerate(columns["degrees"]):
                    if degree:
                        check_fanout(
                            intern_broadcast(
                                order[i], _GreedySweepProgram._TAG_INITIAL,
                                initial[i], bits,
                            ),
                            degree,
                        )
            copies = columns["total_copies"]
            return KernelRound(
                active=columns["remaining"],
                messages=copies,
                bits=copies * bits,
                max_message_bits=bits if copies else 0,
                broadcasts=columns["envelopes"],
            )
        deciders = columns["by_class"].get(round_number - 2, ())
        finals = columns["finals"]
        if deciders:
            programs = columns["programs"]
            order = columns["order"]
            lower = columns["lower"]
            higher = columns["higher"]
            sorted_lists = columns["sorted_lists"]
            mono = columns["mono"]
            check = columns["check"]
            bits_final = columns["bits_final"]
        state = columns["arrays"]
        messages = 0
        for i in deciders:
            program = programs[i]
            row = lower[i]
            if state is not None and len(row) >= arrays.MIN_TALLY:
                # Long lower row: gather the committed finals once and
                # tally against the sorted candidate list in C.  Probing
                # the unique ascending candidates picks the same color as
                # the Python scan over the (possibly duplicated) list.
                np = state["np"]
                row_np = np.fromiter(row, np.int64, len(row))
                committed = state["finals"][row_np]
                slist = sorted_lists[i]
                candidates = np.unique(
                    np.fromiter(slist, np.int64, len(slist))
                )
                tallies = arrays.membership_counts(np, committed, candidates)
                chosen = None
                defect_fn = program.defect_fn
                for color, count in zip(candidates.tolist(),
                                        tallies.tolist()):
                    if count <= defect_fn[color]:
                        chosen = color
                        break
                mono_row = None if chosen is None else tuple(
                    order[j]
                    for j in row_np[committed == chosen].tolist()
                )
            else:
                counts = {color: 0 for color in program.color_list}
                for j in row:
                    neighbor_final = finals[j]
                    if neighbor_final in counts:
                        counts[neighbor_final] += 1
                chosen = None
                for color in sorted_lists[i]:
                    if counts[color] <= program.defect_fn[color]:
                        chosen = color
                        break
                mono_row = None if chosen is None else tuple(
                    order[j] for j in row if finals[j] == chosen
                )
            if chosen is None:
                raise AlgorithmFailure(
                    f"node {program.node!r}: greedy sweep found no "
                    f"feasible color; the instance's slack must be at "
                    f"most 1"
                )
            finals[i] = chosen
            if state is not None:
                state["finals"][i] = chosen
            mono[i] = mono_row
            if check is not None:
                sender = order[i]
                for j in higher[i]:
                    check(Message(
                        sender, order[j],
                        _GreedySweepProgram._TAG_FINAL, chosen, bits_final,
                    ))
            messages += len(higher[i])
        remaining = columns["remaining"] - len(deciders)
        columns["remaining"] = remaining
        bits_final = columns["bits_final"]
        return KernelRound(
            active=remaining,
            messages=messages,
            bits=messages * bits_final,
            max_message_bits=bits_final if messages else 0,
        )

    def finalize(self, columns, programs) -> None:
        finals = columns["finals"]
        mono = columns["mono"]
        for i, program in enumerate(programs):
            program.final_color = finals[i]
            program.mono_out = mono[i]


register_kernel(_GreedySweepProgram, _GreedySweepKernel)


def greedy_arbdefective_sweep(instance: ArbdefectiveInstance,
                              initial_colors: Mapping[Node, Color],
                              q: int,
                              ledger: Optional[CostLedger] = None,
                              bandwidth: Optional[BandwidthModel] = None,
                              check: bool = True) -> ColoringResult:
    """Solve any ``P_A`` instance with slack > 1 by one sweep over classes.

    When node ``v`` decides, at most ``deg(v)`` neighbors have committed,
    and ``sum_x (d_v(x)+1) > deg(v)`` guarantees (weighted pigeonhole) a
    color whose committed conflicts stay within its defect.  Monochromatic
    edges are oriented towards the earlier-deciding endpoint, so later
    decisions never hurt ``v``.  Rounds: ``q + 1``.
    """
    ledger = ensure_ledger(ledger)
    if check:
        for node in instance.network:
            color = initial_colors.get(node)
            if color is None or not 0 <= color < q:
                raise InstanceError(
                    f"node {node!r}: initial color {color!r} outside 0..{q - 1}"
                )
            if instance.weight(node) <= instance.network.degree(node):
                raise InfeasibleInstanceError(
                    node,
                    f"greedy sweep needs weight > deg: "
                    f"{instance.weight(node)} <= {instance.network.degree(node)}",
                )
        for u, v in instance.network.edges():
            if initial_colors[u] == initial_colors[v]:
                raise InstanceError(
                    f"initial coloring is not proper: edge {u!r}-{v!r}"
                )
    programs = {
        node: _GreedySweepProgram(
            node=node,
            initial_color=initial_colors[node],
            q=q,
            color_list=instance.lists[node],
            defect_fn=instance.defects[node],
            color_space_size=instance.color_space_size,
        )
        for node in instance.network
    }
    with ledger.phase("greedy-sweep"):
        outputs, _ = run_protocol(
            instance.network, programs, bandwidth=bandwidth, ledger=ledger
        )
    colors = {node: value[0] for node, value in outputs.items()}
    orientation = {node: value[1] for node, value in outputs.items()}
    return ColoringResult(colors=colors, orientation=orientation, ledger=ledger)


# ----------------------------------------------------------------------
# Color reduction
# ----------------------------------------------------------------------
class _ColorReductionProgram(NodeProgram):
    _TAG = "reduce-color"

    def __init__(self, node: Node, color: Color, q: int, target: int):
        self.node = node
        self.color = color
        self.q = q
        self.target = target
        self.neighbor_colors: Dict[Node, Color] = {}

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            ctx.broadcast(self._TAG, self.color, bits=color_bits(self.q))
            return
        for sender, payload in ctx.received(self._TAG).items():
            self.neighbor_colors[sender] = payload
        # Round t >= 2 handles old color q - t + 1.
        active_color = self.q - ctx.round_number + 1
        if active_color < self.target:
            ctx.halt()
            return
        if self.color == active_color:
            used = set(self.neighbor_colors.values())
            new_color = 0
            while new_color in used:
                new_color += 1
            if new_color >= self.target:
                raise AlgorithmFailure(
                    f"node {self.node!r}: no free color below {self.target}; "
                    f"target must be at least Delta + 1"
                )
            self.color = new_color
            ctx.broadcast(self._TAG, new_color, bits=color_bits(self.q))

    def output(self) -> Color:
        return self.color


class _ColorReductionKernel(RoundKernel):
    """Array-at-a-time one-color-per-round reduction.

    Round ``t`` retires old color ``q - t + 1``: only nodes *of that
    color* act, so the kernel buckets nodes by color once and each
    round touches one bucket -- the per-node engines dispatch an
    ``on_round`` ingest no-op to every other node, which on a
    ``q``-round reduction is almost all of the work.

    Recolorings computed this round are applied to the shared color
    column only at the round boundary: a node's broadcast is ingested
    by its neighbors one round later, so same-round deciders must read
    each other's *old* colors (the reference's stale-view semantics,
    observable on improper inputs).  Declines non-uniform
    ``q``/``target`` and mid-run state; ``finalize`` restores ``color``,
    the transient ``neighbor_colors`` view is not reconstructed.
    """

    def prepare(self, compiled, programs, bandwidth):
        first = programs[0]
        q = first.q
        target = first.target
        for program in programs:
            if (program.q != q or program.target != target
                    or program.neighbor_colors):
                return None
        colors = [program.color for program in programs]
        by_color: Dict[int, list] = {}
        for i, color in enumerate(colors):
            by_color.setdefault(color, []).append(i)
        total_copies, envelopes = fanout_totals(compiled)
        state = self._prepare_arrays(compiled, colors, target)
        return {
            "programs": programs,
            "order": compiled.order,
            "degrees": compiled.degrees,
            # Deciders slice their CSR row on demand: each node decides
            # exactly once, so pre-materializing n row copies would only
            # double the topology's footprint at scale.
            "indices": compiled.indices,
            "arrays": state,
            "indptr": compiled.indptr,
            "colors": colors,
            "by_color": by_color,
            "q": q,
            "target": target,
            "bits": color_bits(q),
            "total_copies": total_copies,
            "envelopes": envelopes,
            "check_fanout": (None if type(bandwidth) is LocalModel
                             else bandwidth.check_fanout),
        }

    def _prepare_arrays(self, compiled, colors, target):
        """NumPy column state for the mex path, or ``None`` to decline.

        Keeps an int64 mirror of the color column next to the CSR index
        view so a high-degree decider computes its minimum excluded color
        with one gather + boolean table instead of a Python set loop.
        The mirror is updated at the same round boundary as the list, so
        the stale-view semantics are preserved bit-for-bit.  Topologies
        whose maximum degree stays under ``MIN_TALLY`` decline: no
        decider would ever take the gather path, so the mirror upkeep
        would be pure overhead.
        """
        np = arrays.get_numpy()
        if (np is None or compiled.n < arrays.MIN_BATCH
                or not 0 < target <= arrays.MAX_MATCH_ELEMENTS
                or max(compiled.degrees, default=0) < arrays.MIN_TALLY):
            return None
        try:
            mirror = np.array(colors, dtype=np.int64)
        except (OverflowError, ValueError):
            return None
        views = compiled.numpy_views()
        self.backend = "numpy"
        return {"np": np, "colors": mirror, "indices": views[1]}

    def step(self, round_number, columns, inboxes) -> KernelRound:
        colors = columns["colors"]
        bits = columns["bits"]
        if round_number == 1:
            check_fanout = columns["check_fanout"]
            if check_fanout is not None:
                order = columns["order"]
                for i, degree in enumerate(columns["degrees"]):
                    if degree:
                        check_fanout(
                            intern_broadcast(
                                order[i], _ColorReductionProgram._TAG,
                                colors[i], bits,
                            ),
                            degree,
                        )
            copies = columns["total_copies"]
            return KernelRound(
                active=len(colors),
                messages=copies,
                bits=copies * bits,
                max_message_bits=bits if copies else 0,
                broadcasts=columns["envelopes"],
            )
        target = columns["target"]
        active_color = columns["q"] - round_number + 1
        if active_color < target:
            return KernelRound(active=0)
        deciders = columns["by_color"].get(active_color, ())
        messages = 0
        broadcasts = 0
        updates = []
        if deciders:
            order = columns["order"]
            degrees = columns["degrees"]
            indices = columns["indices"]
            check_fanout = columns["check_fanout"]
            state = columns["arrays"]
            indptr = columns["indptr"]
        for i in deciders:
            if state is not None and degrees[i] >= arrays.MIN_TALLY:
                np = state["np"]
                row_np = state["indices"][indptr[i]:indptr[i + 1]]
                new_color = arrays.mex_below(
                    np, state["colors"][row_np], target
                )
            else:
                used = {colors[j] for j in indices[indptr[i]:indptr[i + 1]]}
                new_color = 0
                while new_color in used:
                    new_color += 1
            if new_color >= target:
                raise AlgorithmFailure(
                    f"node {columns['programs'][i].node!r}: no free color "
                    f"below {target}; target must be at least Delta + 1"
                )
            updates.append((i, new_color))
            degree = degrees[i]
            if degree:
                if check_fanout is not None:
                    check_fanout(
                        intern_broadcast(
                            order[i], _ColorReductionProgram._TAG,
                            new_color, bits,
                        ),
                        degree,
                    )
                messages += degree
                broadcasts += 1
        if updates:
            mirror = None if state is None else state["colors"]
            for i, new_color in updates:
                colors[i] = new_color
                if mirror is not None:
                    mirror[i] = new_color
        return KernelRound(
            active=len(colors),
            messages=messages,
            bits=messages * bits,
            max_message_bits=bits if messages else 0,
            broadcasts=broadcasts,
        )

    def finalize(self, columns, programs) -> None:
        for program, color in zip(programs, columns["colors"]):
            program.color = color


register_kernel(_ColorReductionProgram, _ColorReductionKernel)


def _restore_reduction_colors(colors, programs) -> None:
    """Sharded finalize: write the final color column back (parent side)."""
    for program, color in zip(programs, colors):
        program.color = color


def _color_reduction_shard_spec(compiled, programs, bandwidth):
    """Flatten a color-reduction population for the sharded engine.

    Same eligibility gate as :meth:`_ColorReductionKernel.prepare`
    (uniform ``q``/``target``, no mid-run state), plus an int-only color
    check: shard workers round-trip colors through an int64 segment, so
    bools or exotic int subclasses -- which would also intern into
    differently-typed broadcast payloads -- decline to the serial path.
    """
    first = programs[0]
    q = first.q
    target = first.target
    colors = []
    for program in programs:
        if (program.q != q or program.target != target
                or program.neighbor_colors):
            return None
        color = program.color
        if type(color) is not int:
            return None
        colors.append(color)
    return ShardSpec(
        colors=colors,
        q=q,
        target=target,
        bits=color_bits(q),
        tag=_ColorReductionProgram._TAG,
        finalize=_restore_reduction_colors,
        name="ColorReduction",
    )


register_sharded(_ColorReductionProgram, _color_reduction_shard_spec)


def greedy_color_reduction(network: Network,
                           colors: Mapping[Node, Color],
                           q: int,
                           target: int,
                           ledger: Optional[CostLedger] = None,
                           bandwidth: Optional[BandwidthModel] = None
                           ) -> Dict[Node, Color]:
    """Reduce a proper ``q``-coloring to ``target`` colors, one per round.

    ``target`` must be at least ``Delta + 1``.  Rounds: ``q - target + 1``.
    Combined with Linial this yields the classic O(Delta^2 + log* n)
    ``(Delta + 1)``-coloring baseline.
    """
    if target < network.raw_max_degree() + 1:
        raise InstanceError("target must be at least Delta + 1")
    ledger = ensure_ledger(ledger)
    if q <= target:
        return dict(colors)  # nothing to reduce, zero rounds
    programs = {
        node: _ColorReductionProgram(node, colors[node], q, target)
        for node in network
    }
    with ledger.phase("color-reduction"):
        outputs, _ = run_protocol(
            network, programs, bandwidth=bandwidth, ledger=ledger
        )
    return dict(outputs)
