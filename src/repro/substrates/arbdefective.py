"""The classic ``d``-arbdefective ``ceil((Delta+1)/(d+1))``-coloring.

[BE10] introduced arbdefective colorings precisely because -- unlike
standard defective coloring -- the greedy bound is achievable: a single
sweep in which every node picks the color minimizing conflicts with
already-committed neighbors, orienting monochromatic edges towards the
earlier nodes, keeps every node's monochromatic *out*-degree at most
``floor(deg(v) / k)``.  This module packages that as a distributed tool
(Linial bootstrap + greedy sweep) with the standard parameter interface:
give me defect ``d``, get ``ceil((Delta+1)/(d+1))`` colors.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Optional

from ..coloring.instance import ArbdefectiveInstance
from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.errors import InstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from .greedy import greedy_arbdefective_sweep
from .linial import linial_coloring

Node = Hashable


def arbdefective_palette(max_degree: int, defect: int) -> int:
    """``ceil((Delta + 1) / (d + 1))``: the greedy arbdefective palette."""
    return max(1, math.ceil((max_degree + 1) / (defect + 1)))


def arbdefective_coloring(network: Network,
                          defect: int,
                          ids: Optional[Mapping[Node, int]] = None,
                          ledger: Optional[CostLedger] = None,
                          bandwidth: Optional[BandwidthModel] = None
                          ) -> ColoringResult:
    """A ``d``-arbdefective coloring with ``ceil((Delta+1)/(d+1))`` colors.

    Distributed: Linial shrinks the identifier space to O(Delta^2)
    colors, then one greedy sweep commits final colors; monochromatic
    edges point at earlier-committed neighbors, so every node has at most
    ``floor(deg(v) / k) <= d`` same-colored out-neighbors.
    """
    if defect < 0:
        raise InstanceError("defect must be non-negative")
    ledger = ensure_ledger(ledger)
    palette_size = arbdefective_palette(network.raw_max_degree(), defect)
    palette = tuple(range(palette_size))
    # Per-color defect floor(deg / k) makes the sweep's pigeonhole tight:
    # weight = k * (floor(deg/k) + 1) >= deg + 1 > deg.
    lists = {node: palette for node in network}
    defects = {
        node: {
            color: network.degree(node) // palette_size
            for color in palette
        }
        for node in network
    }
    instance = ArbdefectiveInstance(network, lists, defects, palette_size)
    if ids is None:
        from ..graphs.identifiers import sequential_ids

        ids = sequential_ids(network)
    q_ids = max(ids.values()) + 1 if ids else 1
    with ledger.phase("arbdefective-coloring"):
        colors0, q0 = linial_coloring(
            network, ids, q_ids, ledger=ledger, bandwidth=bandwidth
        )
        result = greedy_arbdefective_sweep(
            instance, colors0, q0, ledger=ledger, bandwidth=bandwidth,
        )
    return ColoringResult(
        colors=result.colors, orientation=result.orientation, ledger=ledger
    )
