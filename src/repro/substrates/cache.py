"""Process-level substrate caches shared across trials and workers.

Benchmark sweeps and repeated trials re-derive the same small objects
over and over: primality of the same field sizes, the same recoloring
schedules for the same ``(q, avoid)`` / ``(q, alpha)`` parameters, and
polynomial evaluation tables for the same ``(q, m, k)`` families.  All of
these are *pure* -- they depend only on their arguments -- so this module
keeps one named registry per kind of derived object for the lifetime of
the process.

Two consumers build on the registries:

* :mod:`repro.substrates.cover_free` memoizes ``is_prime`` /
  ``next_prime`` / schedule construction and hands out shared
  :class:`~repro.substrates.cover_free.PolynomialFamily` instances whose
  evaluation memos stay warm across trials;
* :mod:`repro.sim.parallel` ships a :func:`snapshot` of the parent's
  registries to every process-pool worker so warm caches survive the
  process boundary instead of being rebuilt per worker.

Like the payload memo tables in :mod:`repro.sim.message`, everything here
is disabled by ``REPRO_SIM_CACHE=0`` (one knob for every process-level
memo in the repository).  Caching never changes results -- only how often
the pure derivations run.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, Optional

from ..obs import metrics as obs_metrics
from ..sim.message import CACHE_ENV

#: Safety valve mirroring the payload memo tables: a registry that hits
#: this size is cleared rather than growing without bound.
REGISTRY_LIMIT = 1 << 16

#: Much smaller cap for registries whose *values* are heavy ndarrays --
#: currently the ``(q, m)`` polynomial value tables exported by
#: :meth:`repro.substrates.cover_free.PolynomialFamily.value_table` for
#: the NumPy kernel backend.  Each entry can be megabytes, and
#: :func:`snapshot` ships every entry to every pool worker, so the cap
#: bounds both resident memory and the worker-initializer payload.
ARRAY_REGISTRY_LIMIT = 64

#: Directory for the persistent spill file; unset means "no disk cache".
CACHE_DIR_ENV = "REPRO_SIM_CACHE_DIR"

#: Bumped whenever the registry key/value conventions change shape; a
#: file with a different version is ignored (cold start), never migrated.
CACHE_FILE_VERSION = 1

_CACHE_FILE_NAME = "substrate_cache.pkl"

_enabled = os.environ.get(CACHE_ENV, "1") != "0"

#: ``registry name -> {key -> derived object}``.  Registries are created
#: on first use so this module stays agnostic of what is cached.
_registries: Dict[str, Dict[Any, Any]] = {}

#: ``registry name -> {"hits": int, "misses": int}``.  Consumers that
#: want their lookups observable call :func:`record_lookup`; the serve
#: daemon and run manifests read :func:`cache_counters` to report how
#: warm a request or run actually was.
_counters: Dict[str, Dict[str, int]] = {}

#: What :func:`load_from_disk` / :func:`save_to_disk` last did, for
#: ``/stats`` and manifests (the difference between "no disk cache
#: configured" and "configured but cold" matters operationally).
_disk_state: Dict[str, Any] = {"path": None, "loaded": False, "saved": False}


def cache_enabled() -> bool:
    """Whether the substrate registries are active."""
    return _enabled


def set_cache_enabled(enabled: bool) -> bool:
    """Toggle the registries (tests only); returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if not enabled:
        clear_substrate_cache()
    return previous


def registry(name: str, limit: int = REGISTRY_LIMIT) -> Dict[Any, Any]:
    """The named memo table (created empty on first use).

    Callers own the key/value convention of their registry; this module
    only provides the shared lifecycle (clear / snapshot / restore) and
    the ``REPRO_SIM_CACHE`` switch.  Callers should check
    :func:`cache_enabled` before reading or writing.  ``limit`` caps the
    table size before it is cleared rather than growing without bound --
    registries holding heavy values (e.g. the interned networks with
    their compiled CSR topologies) pass a much smaller cap than the
    default, which is sized for scalar derivations.
    """
    table = _registries.get(name)
    if table is None:
        table = _registries[name] = {}
    elif len(table) >= limit:
        table.clear()
    return table


def record_lookup(name: str, hit: bool) -> None:
    """Count one registry lookup, for :func:`cache_counters`.

    Instrumented at the consumer (e.g. ``shared_family``) rather than in
    :func:`registry`, because only the consumer knows whether its
    ``get`` was a hit.  Counting is unconditional on cache state so a
    disabled cache shows up as all-misses, not as silence.
    """
    entry = _counters.get(name)
    if entry is None:
        entry = _counters[name] = {"hits": 0, "misses": 0}
    entry["hits" if hit else "misses"] += 1
    # Dual-write into the unified registry; the dict above remains the
    # authoritative view read by manifests and /stats.
    obs_metrics.counter(
        "repro_cache_lookups_total",
        "Substrate-cache lookups by registry and outcome",
        ("registry", "outcome"),
    ).labels(registry=name, outcome="hit" if hit else "miss").inc()


def cache_counters() -> Dict[str, Dict[str, int]]:
    """``{registry name: {"hits", "misses"}}`` for every counted lookup.

    Counters are cumulative for the process; callers wanting per-request
    attribution snapshot before and after (see
    :func:`repro.serve.executor.counters_delta`).
    """
    return {name: dict(entry) for name, entry in _counters.items()}


def reset_cache_counters() -> None:
    """Zero the hit/miss counters (tests and per-worker accounting)."""
    _counters.clear()


def disk_state() -> Dict[str, Any]:
    """What the persistent spill last did in this process."""
    return dict(_disk_state)


def clear_substrate_cache() -> None:
    """Drop every cached derivation (all registries, kept registered)."""
    for table in _registries.values():
        table.clear()


def registry_sizes() -> Dict[str, int]:
    """``{registry name: entry count}`` for every non-empty registry.

    Run manifests (:mod:`repro.obs.manifest`) record this so a benchmark
    artifact states how warm its caches were -- the difference between a
    cold-start and a warm-cache measurement is otherwise invisible.
    """
    return {
        name: len(table) for name, table in _registries.items() if table
    }


def snapshot() -> Dict[str, Dict[Any, Any]]:
    """A picklable copy of every registry's current contents.

    Values are shared, not deep-copied: cached objects are immutable by
    convention (schedules, families whose memos only ever grow), and the
    pickling boundary of a process pool deep-copies anyway.
    """
    return {name: dict(table) for name, table in _registries.items() if table}


def restore(state: Dict[str, Dict[Any, Any]]) -> None:
    """Merge a :func:`snapshot` into this process's registries.

    Used by process-pool workers to start from the parent's warm caches.
    Existing entries are kept (the union is taken, snapshot entries win);
    a ``None`` or empty state is a no-op, and restoring while caching is
    disabled is also a no-op.
    """
    if not state or not _enabled:
        return
    for name, table in state.items():
        registry(name).update(table)


# ----------------------------------------------------------------------
# Persistent on-disk spill
# ----------------------------------------------------------------------
def cache_file_path(path: Optional[str] = None) -> Optional[str]:
    """The spill file location: explicit ``path``, else
    ``$REPRO_SIM_CACHE_DIR/substrate_cache.pkl``, else ``None`` (off).
    """
    if path is not None:
        return path
    directory = os.environ.get(CACHE_DIR_ENV)
    if not directory:
        return None
    return os.path.join(directory, _CACHE_FILE_NAME)


def save_to_disk(path: Optional[str] = None) -> Optional[str]:
    """Spill the current registries to the versioned cache file.

    Lets *cold processes* -- not just pool workers -- start with warm
    schedules, prime tables, and polynomial families across benchmark
    invocations.  Returns the file path, or ``None`` when nothing was
    written (caching disabled, no directory configured, empty
    registries, or an unwritable destination -- the cache is an
    optimization, so I/O failures degrade to a cold start, silently).

    The write is atomic (temp file + ``os.replace``): a concurrent
    benchmark reading the file mid-save sees the old complete state,
    never a torn one.
    """
    destination = cache_file_path(path)
    if destination is None or not _enabled:
        return None
    state = snapshot()
    if not state:
        return None
    payload = {"version": CACHE_FILE_VERSION, "registries": state}
    try:
        os.makedirs(os.path.dirname(destination) or ".", exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(destination) or ".",
            prefix=_CACHE_FILE_NAME + ".",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, destination)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
    except (OSError, pickle.PicklingError):
        return None
    _disk_state.update(path=destination, saved=True)
    return destination


def load_from_disk(path: Optional[str] = None) -> bool:
    """Warm the registries from the cache file; True when anything loaded.

    Missing, corrupt, wrong-version, or wrong-shape files are treated as
    a cold start (False) -- a stale spill from an older code revision
    must never poison a run.  Loaded entries merge like :func:`restore`
    (union, file entries win); disabled caching is a no-op.
    """
    source = cache_file_path(path)
    if source is None or not _enabled:
        return False
    _disk_state.update(path=source, loaded=False)
    try:
        with open(source, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError, TypeError):
        return False
    if not isinstance(payload, dict):
        return False
    if payload.get("version") != CACHE_FILE_VERSION:
        return False
    state = payload.get("registries")
    if not isinstance(state, dict):
        return False
    for name, table in state.items():
        if not isinstance(name, str) or not isinstance(table, dict):
            return False
    if not state:
        return False
    restore(state)
    _disk_state["loaded"] = True
    return True
