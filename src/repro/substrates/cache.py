"""Process-level substrate caches shared across trials and workers.

Benchmark sweeps and repeated trials re-derive the same small objects
over and over: primality of the same field sizes, the same recoloring
schedules for the same ``(q, avoid)`` / ``(q, alpha)`` parameters, and
polynomial evaluation tables for the same ``(q, m, k)`` families.  All of
these are *pure* -- they depend only on their arguments -- so this module
keeps one named registry per kind of derived object for the lifetime of
the process.

Two consumers build on the registries:

* :mod:`repro.substrates.cover_free` memoizes ``is_prime`` /
  ``next_prime`` / schedule construction and hands out shared
  :class:`~repro.substrates.cover_free.PolynomialFamily` instances whose
  evaluation memos stay warm across trials;
* :mod:`repro.sim.parallel` ships a :func:`snapshot` of the parent's
  registries to every process-pool worker so warm caches survive the
  process boundary instead of being rebuilt per worker.

Like the payload memo tables in :mod:`repro.sim.message`, everything here
is disabled by ``REPRO_SIM_CACHE=0`` (one knob for every process-level
memo in the repository).  Caching never changes results -- only how often
the pure derivations run.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from ..sim.message import CACHE_ENV

#: Safety valve mirroring the payload memo tables: a registry that hits
#: this size is cleared rather than growing without bound.
REGISTRY_LIMIT = 1 << 16

_enabled = os.environ.get(CACHE_ENV, "1") != "0"

#: ``registry name -> {key -> derived object}``.  Registries are created
#: on first use so this module stays agnostic of what is cached.
_registries: Dict[str, Dict[Any, Any]] = {}


def cache_enabled() -> bool:
    """Whether the substrate registries are active."""
    return _enabled


def set_cache_enabled(enabled: bool) -> bool:
    """Toggle the registries (tests only); returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if not enabled:
        clear_substrate_cache()
    return previous


def registry(name: str) -> Dict[Any, Any]:
    """The named memo table (created empty on first use).

    Callers own the key/value convention of their registry; this module
    only provides the shared lifecycle (clear / snapshot / restore) and
    the ``REPRO_SIM_CACHE`` switch.  Callers should check
    :func:`cache_enabled` before reading or writing.
    """
    table = _registries.get(name)
    if table is None:
        table = _registries[name] = {}
    elif len(table) >= REGISTRY_LIMIT:
        table.clear()
    return table


def clear_substrate_cache() -> None:
    """Drop every cached derivation (all registries, kept registered)."""
    for table in _registries.values():
        table.clear()


def snapshot() -> Dict[str, Dict[Any, Any]]:
    """A picklable copy of every registry's current contents.

    Values are shared, not deep-copied: cached objects are immutable by
    convention (schedules, families whose memos only ever grow), and the
    pickling boundary of a process pool deep-copies anyway.
    """
    return {name: dict(table) for name, table in _registries.items() if table}


def restore(state: Dict[str, Dict[Any, Any]]) -> None:
    """Merge a :func:`snapshot` into this process's registries.

    Used by process-pool workers to start from the parent's warm caches.
    Existing entries are kept (the union is taken, snapshot entries win);
    a ``None`` or empty state is a no-op, and restoring while caching is
    disabled is also a no-op.
    """
    if not state or not _enabled:
        return
    for name, table in state.items():
        registry(name).update(table)
