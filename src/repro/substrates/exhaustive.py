"""Exact brute-force solvers for tiny instances.

Backtracking search over the full assignment space.  Exponential in the
worst case -- these exist so tests can (a) cross-check the distributed
algorithms' outputs against a ground-truth solver and (b) drive a single
reduction lemma in isolation without pulling in the whole recursion.
They are deliberately *not* part of the distributed tool set (zero
rounds, global knowledge).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from ..coloring.instance import ListDefectiveInstance, OLDCInstance

Node = Hashable
Color = int

#: Hard cap so a mis-sized test fails fast instead of hanging.
MAX_BRUTE_FORCE_NODES = 64


def solve_list_defective_bruteforce(instance: ListDefectiveInstance
                                    ) -> Optional[Dict[Node, Color]]:
    """An exact ``P_D`` solution, or ``None`` if none exists.

    Backtracks over nodes in a max-degree-first order; prunes as soon as
    a *committed* node's defect is exceeded (conflicts only grow).
    """
    network = instance.network
    if len(network) > MAX_BRUTE_FORCE_NODES:
        raise ValueError(
            f"brute force capped at {MAX_BRUTE_FORCE_NODES} nodes"
        )
    order: List[Node] = sorted(
        network.nodes, key=lambda node: -network.degree(node)
    )
    colors: Dict[Node, Color] = {}

    def violates(node: Node) -> bool:
        """Is some committed node's defect already exceeded around node?"""
        for candidate in (node, *network.neighbors(node)):
            if candidate not in colors:
                continue
            color = colors[candidate]
            conflicts = sum(
                1
                for neighbor in network.neighbors(candidate)
                if colors.get(neighbor) == color
            )
            if conflicts > instance.defects[candidate][color]:
                return True
        return False

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for color in instance.lists[node]:
            colors[node] = color
            if not violates(node) and backtrack(index + 1):
                return True
            del colors[node]
        return False

    return dict(colors) if backtrack(0) else None


def solve_oldc_bruteforce(instance: OLDCInstance
                          ) -> Optional[Dict[Node, Color]]:
    """An exact OLDC solution, or ``None`` if none exists."""
    graph = instance.graph
    if len(graph.nodes) > MAX_BRUTE_FORCE_NODES:
        raise ValueError(
            f"brute force capped at {MAX_BRUTE_FORCE_NODES} nodes"
        )
    order: List[Node] = sorted(
        graph.nodes, key=lambda node: -graph.outdegree(node)
    )
    colors: Dict[Node, Color] = {}

    def violates(node: Node) -> bool:
        for candidate in (node, *graph.in_neighbors(node), node):
            if candidate not in colors:
                continue
            color = colors[candidate]
            conflicts = sum(
                1
                for neighbor in graph.out_neighbors(candidate)
                if colors.get(neighbor) == color
            )
            if conflicts > instance.defects[candidate][color]:
                return True
        return False

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for color in instance.lists[node]:
            colors[node] = color
            if not violates(node) and backtrack(index + 1):
                return True
            del colors[node]
        return False

    return dict(colors) if backtrack(0) else None
