"""The defective coloring of Lemma 3.4 [Kuh09, KS18].

Given a directed graph with a proper ``q``-coloring, computes a coloring
with O(1/alpha^2) colors such that every node has at most
``alpha * beta_v`` out-neighbors of its own color, in O(log* q) rounds.
Passing a :class:`~repro.graphs.oriented.BidirectedView` instead of an
orientation yields the *undirected* guarantee (at most ``alpha * deg(v)``
same-colored neighbors) used by the slack reductions of Section 4.2.

Correctness sketch (matches the implementation): in each step, a node
picks the evaluation point minimizing collisions against out-neighbors
whose *current* colors differ; averaging over the ``m`` points bounds the
minimum by ``(k/m) * beta_v <= alpha_step * beta_v``.  Out-neighbors that
already share the node's color can collide again, so per-step defects add
up; the step budgets sum to at most ``alpha``, hence the final relative
defect is below ``alpha``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..sim.congest import BandwidthModel
from ..sim.errors import InstanceError
from ..sim.metrics import CostLedger
from .algebraic import run_recoloring
from .cover_free import defective_schedule

Node = Hashable
Color = int


def kuhn_defective_coloring(graph,
                            initial_colors: Mapping[Node, Color],
                            q: int,
                            alpha: float,
                            ledger: Optional[CostLedger] = None,
                            bandwidth: Optional[BandwidthModel] = None
                            ) -> Tuple[Dict[Node, Color], int]:
    """Lemma 3.4: O(1/alpha^2) colors, defect <= alpha * beta_v, O(log* q) rounds.

    Parameters
    ----------
    graph:
        An :class:`~repro.graphs.oriented.OrientedGraph` (out-neighbor
        defect) or :class:`~repro.graphs.oriented.BidirectedView`
        (all-neighbor defect).
    initial_colors:
        A proper ``q``-coloring with colors ``0..q-1``.  Properness is
        required: the first step's collision bound only covers neighbors
        with *different* current colors.
    alpha:
        The relative defect budget, ``0 < alpha <= 1``.

    Returns ``(colors, palette_size)``.
    """
    if not 0.0 < alpha <= 1.0:
        raise InstanceError("alpha must lie in (0, 1]")
    bad = [
        node for node, color in initial_colors.items() if not 0 <= color < q
    ]
    if bad:
        raise InstanceError(
            f"initial colors outside 0..{q - 1} at nodes "
            f"{sorted(map(repr, bad))[:5]}"
        )
    schedule = defective_schedule(q, alpha)
    relevant = {
        node: frozenset(graph.out_neighbors(node)) for node in graph.nodes
    }
    return run_recoloring(
        graph.network, initial_colors, schedule, relevant,
        ledger=ledger, bandwidth=bandwidth, phase="kuhn-defective",
    )


def defective_palette_bound(alpha: float) -> int:
    """Closed-form bound on the Lemma 3.4 palette: O(1/alpha^2).

    The final schedule step uses a prime ``m <= 2 * max(2, ceil(3/(alpha/2)))``
    (degree at most 3 suffices once earlier steps have shrunk the palette),
    so ``m**2 <= (12/alpha + 4) ** 2``.  Benchmarks compare measured
    palettes against this explicit constant.
    """
    return int((12.0 / alpha + 4.0) ** 2) + 1
