"""Distributed local-search defective partition.

The [Lov66] existence argument (move any node with too many same-class
neighbors to its least-conflicted class; the monochromatic-edge count
strictly drops) parallelizes with a two-phase round structure:

* **status phase** (odd rounds): every node announces its class, its
  *fresh* unhappiness flag, and its identifier;
* **move phase** (even rounds): exactly the unhappy nodes whose
  identifier beats every unhappy neighbor's (flags from the *same*
  status phase, so the comparison is symmetric) move to their
  least-conflicted class and announce the new class.

Movers are pairwise non-adjacent -- two adjacent unhappy nodes compare
the same pair of flags, so at most the larger id moves -- hence every
move's improvement is computed against a static neighborhood and the
monochromatic-edge potential strictly decreases whenever anyone is
unhappy (the globally largest unhappy id always moves).  Convergence in
at most ``|E|`` move phases; typically a handful.

Termination: a locally-quiet node can be re-destabilized by a move two
hops away, so nodes cannot decide termination locally without a
termination-detection layer; the run uses the scheduler's
global-quiescence oracle (``stop_when``) instead -- stop after a status
phase in which nobody is unhappy, which is a fixpoint.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..sim.congest import BandwidthModel
from ..sim.errors import InstanceError
from ..sim.message import color_bits, int_bits
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol

Node = Hashable
Color = int

_TAG_STATUS = "ls-status"
_TAG_MOVE = "ls-move"


class LocalSearchProgram(NodeProgram):
    """One node's side of the two-phase parallel local search."""

    def __init__(self, node: Node, node_id: int, num_classes: int,
                 initial_class: Color):
        self.node = node
        self.node_id = node_id
        self.num_classes = num_classes
        self.color = initial_class
        self.neighbor_color: Dict[Node, Color] = {}
        self.neighbor_status: Dict[Node, Tuple[bool, int]] = {}
        #: Read by the runner's quiescence oracle after status phases.
        self.currently_unhappy = False
        self.in_status_phase = False
        self.status_rounds_completed = 0

    def _counts(self) -> Dict[Color, int]:
        counts = {c: 0 for c in range(self.num_classes)}
        for color in self.neighbor_color.values():
            counts[color] += 1
        return counts

    def _unhappy(self) -> bool:
        if not self.neighbor_color:
            return False
        counts = self._counts()
        threshold = len(self.neighbor_color) // self.num_classes
        return counts[self.color] > threshold and (
            min(counts.values()) < counts[self.color]
        )

    def on_round(self, ctx: RoundContext) -> None:
        # Absorb whatever arrived (status updates carry colors too).
        for sender, (color, unhappy, rival_id) in ctx.received(
                _TAG_STATUS).items():
            self.neighbor_color[sender] = color
            self.neighbor_status[sender] = (unhappy, rival_id)
        for sender, color in ctx.received(_TAG_MOVE).items():
            self.neighbor_color[sender] = color
        if ctx.round_number % 2 == 1:
            self._status_phase(ctx)
        else:
            self._move_phase(ctx)

    def _status_phase(self, ctx: RoundContext) -> None:
        self.in_status_phase = True
        self.status_rounds_completed += 1
        self.currently_unhappy = self._unhappy()
        ctx.broadcast(
            _TAG_STATUS,
            (self.color, self.currently_unhappy, self.node_id),
            bits=color_bits(self.num_classes) + 1 + int_bits(self.node_id),
        )

    def _move_phase(self, ctx: RoundContext) -> None:
        self.in_status_phase = False
        if not self.currently_unhappy:
            return
        rivals = [
            rival_id
            for unhappy, rival_id in self.neighbor_status.values()
            if unhappy
        ]
        if all(self.node_id > rival for rival in rivals):
            counts = self._counts()
            self.color = min(
                range(self.num_classes), key=lambda c: (counts[c], c)
            )
            ctx.broadcast(
                _TAG_MOVE, self.color, bits=color_bits(self.num_classes)
            )

    def output(self) -> Color:
        return self.color


def distributed_lovasz_partition(network: Network,
                                 num_classes: int,
                                 ids: Optional[Mapping[Node, int]] = None,
                                 seed: int = 0,
                                 ledger: Optional[CostLedger] = None,
                                 bandwidth: Optional[BandwidthModel] = None,
                                 max_rounds: int = 100_000
                                 ) -> Dict[Node, Color]:
    """Distributed ``floor(deg/k)``-defective ``k``-partition.

    Starts from a seeded random partition and converges to a [Lov66]
    local optimum: every node ends with at most
    ``floor(deg(v) / num_classes)`` same-class neighbors.
    """
    if num_classes < 1:
        raise InstanceError("need at least one class")
    if ids is None:
        from ..graphs.identifiers import sequential_ids

        ids = sequential_ids(network)
    if len(set(ids.values())) != len(network):
        raise InstanceError("identifiers must be unique")
    rng = random.Random(seed)
    ledger = ensure_ledger(ledger)
    programs = {
        node: LocalSearchProgram(
            node, ids[node], num_classes, rng.randrange(num_classes)
        )
        for node in network.nodes
    }

    def quiescent(running) -> bool:
        # Only decide right after a status phase, where the fresh flags
        # reflect the current (post-move) configuration; the first
        # status phase runs before any neighbor information arrived.
        return all(
            program.in_status_phase
            and program.status_rounds_completed >= 2
            and not program.currently_unhappy
            for program in running.values()
        )

    with ledger.phase("distributed-local-search"):
        outputs, _ = run_protocol(
            network, programs, bandwidth=bandwidth, ledger=ledger,
            max_rounds=max_rounds, stop_when=quiescent,
        )
    return dict(outputs)
