"""Linial's coloring algorithm [Lin87] and its oriented variant.

From any initial proper ``q``-coloring (e.g. the unique identifiers), the
iterated algebraic recoloring reaches a proper O(Delta^2)-coloring in
O(log* q) rounds.  The oriented variant only dodges *out*-neighbors and
reaches O(beta^2) colors -- every edge's tail avoids its head, which keeps
the coloring proper.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..graphs.oriented import OrientedGraph
from ..sim.congest import BandwidthModel
from ..sim.errors import InstanceError
from ..sim.metrics import CostLedger
from ..sim.network import Network
from .algebraic import run_recoloring
from .cover_free import proper_schedule

Node = Hashable
Color = int


def _check_initial(colors: Mapping[Node, Color], q: int) -> None:
    bad = [node for node, color in colors.items() if not 0 <= color < q]
    if bad:
        raise InstanceError(
            f"initial colors outside 0..{q - 1} at nodes "
            f"{sorted(map(repr, bad))[:5]}"
        )


def linial_coloring(network: Network,
                    initial_colors: Mapping[Node, Color],
                    q: int,
                    ledger: Optional[CostLedger] = None,
                    bandwidth: Optional[BandwidthModel] = None
                    ) -> Tuple[Dict[Node, Color], int]:
    """Proper O(Delta^2)-coloring from a proper ``q``-coloring.

    Returns ``(colors, palette_size)``; the run costs O(log* q) rounds on
    the shared ledger.  The initial coloring must be proper.
    """
    _check_initial(initial_colors, q)
    avoid = network.raw_max_degree()
    schedule = proper_schedule(q, avoid)
    relevant = {node: network.neighbor_set(node) for node in network}
    return run_recoloring(
        network, initial_colors, schedule, relevant,
        ledger=ledger, bandwidth=bandwidth, phase="linial",
    )


def linial_oriented_coloring(graph: OrientedGraph,
                             initial_colors: Mapping[Node, Color],
                             q: int,
                             ledger: Optional[CostLedger] = None,
                             bandwidth: Optional[BandwidthModel] = None
                             ) -> Tuple[Dict[Node, Color], int]:
    """Proper O(beta^2)-coloring of an oriented graph [Lin87, Sec. 1.1].

    Each node only avoids its out-neighbors' polynomials; since every edge
    has exactly one tail, the result is still a proper coloring, with a
    palette quadratic in the maximum outdegree rather than the degree.
    """
    _check_initial(initial_colors, q)
    avoid = graph.max_outdegree()
    schedule = proper_schedule(q, avoid)
    relevant = {
        node: frozenset(graph.out_neighbors(node)) for node in graph.nodes
    }
    return run_recoloring(
        graph.network, initial_colors, schedule, relevant,
        ledger=ledger, bandwidth=bandwidth, phase="linial-oriented",
    )


def linial_palette_bound(max_degree: int) -> int:
    """A closed-form upper bound on the final Linial palette size.

    The last schedule step uses a prime ``m <= 2 * (2 * max_degree + 1)``
    with degree ``k <= 2`` (Bertrand's postulate), so the palette is at
    most ``(4 * max_degree + 2) ** 2`` -- the O(Delta^2) of the theorem
    with an explicit constant.  Benchmarks print measured palettes next to
    this bound.
    """
    return (4 * max_degree + 2) ** 2
