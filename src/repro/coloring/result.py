"""Results of coloring protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from ..sim.metrics import CostLedger

Node = Hashable
Color = int


@dataclass
class ColoringResult:
    """A computed coloring plus (optionally) an edge orientation.

    Attributes
    ----------
    colors:
        The color chosen by each node.
    orientation:
        For arbdefective outputs: each node's *monochromatic out-neighbors*
        under the orientation the algorithm committed to.  ``None`` for
        plain (oriented) list defective colorings, where the orientation is
        either irrelevant or part of the input.
    ledger:
        The cost ledger the computation charged rounds/messages to.
    """

    colors: Dict[Node, Color]
    orientation: Optional[Dict[Node, Tuple[Node, ...]]] = None
    ledger: CostLedger = field(default_factory=CostLedger)
    #: Free-form algorithm statistics (e.g. recursion branch counts).
    stats: Optional[Dict[str, int]] = None

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    def palette(self) -> Tuple[Color, ...]:
        """The distinct colors actually used, sorted."""
        return tuple(sorted(set(self.colors.values())))

    def color_count(self) -> int:
        return len(set(self.colors.values()))

    def __repr__(self) -> str:
        oriented = "oriented" if self.orientation is not None else "plain"
        return (
            f"ColoringResult(nodes={len(self.colors)}, "
            f"colors={self.color_count()}, {oriented}, "
            f"rounds={self.rounds})"
        )

    def monochromatic_out_neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Out-neighbors with the node's color (empty without orientation)."""
        if self.orientation is None:
            return ()
        return self.orientation.get(node, ())
