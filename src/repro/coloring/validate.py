"""Validators for every coloring flavor in the paper.

Each ``check_*`` function returns a list of human-readable violation
strings (empty = valid); the matching ``assert_*`` raises
:class:`~repro.sim.errors.AlgorithmFailure` on the first violation.  The
validators are deliberately independent of the algorithms (they recount
conflicts from scratch) so tests can cross-check algorithm outputs.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Tuple

from ..sim.errors import AlgorithmFailure
from ..sim.network import Network
from .instance import (
    ArbdefectiveInstance,
    ListDefectiveInstance,
    OLDCInstance,
)

Node = Hashable
Color = int


def check_complete(nodes, colors: Mapping[Node, Color]) -> List[str]:
    """Every node must have chosen a color."""
    return [
        f"node {node!r} is uncolored"
        for node in nodes
        if node not in colors or colors[node] is None
    ]


def check_proper_coloring(network: Network,
                          colors: Mapping[Node, Color]) -> List[str]:
    """No monochromatic edge."""
    violations = check_complete(network.nodes, colors)
    if violations:
        return violations
    for u, v in network.edges():
        if colors[u] == colors[v]:
            violations.append(
                f"edge {u!r}-{v!r} monochromatic with color {colors[u]}"
            )
    return violations


def check_list_membership(lists: Mapping[Node, Tuple[Color, ...]],
                          colors: Mapping[Node, Color]) -> List[str]:
    """Every chosen color must come from the node's list."""
    violations = []
    for node, color in colors.items():
        if color not in lists[node]:
            violations.append(
                f"node {node!r} chose color {color} outside its list"
            )
    return violations


def check_list_defective(instance: ListDefectiveInstance,
                         colors: Mapping[Node, Color]) -> List[str]:
    """``P_D`` validity: same-colored *neighbors* within ``d_v(x_v)``."""
    violations = check_complete(instance.network.nodes, colors)
    if violations:
        return violations
    violations = check_list_membership(instance.lists, colors)
    for node in instance.network:
        color = colors[node]
        conflicts = sum(
            1
            for neighbor in instance.network.neighbors(node)
            if colors[neighbor] == color
        )
        # Out-of-list colors (already reported above) allow no defect.
        allowed = instance.defects[node].get(color, 0)
        if conflicts > allowed:
            violations.append(
                f"node {node!r}: {conflicts} same-colored neighbors exceed "
                f"defect {allowed} for color {color}"
            )
    return violations


def check_oldc(instance: OLDCInstance,
               colors: Mapping[Node, Color]) -> List[str]:
    """OLDC validity: same-colored *out*-neighbors within ``d_v(x_v)``."""
    violations = check_complete(instance.graph.nodes, colors)
    if violations:
        return violations
    violations = check_list_membership(instance.lists, colors)
    for node in instance.graph.nodes:
        color = colors[node]
        conflicts = sum(
            1
            for neighbor in instance.graph.out_neighbors(node)
            if colors[neighbor] == color
        )
        allowed = instance.defects[node].get(color, 0)
        if conflicts > allowed:
            violations.append(
                f"node {node!r}: {conflicts} same-colored out-neighbors "
                f"exceed defect {allowed} for color {color}"
            )
    return violations


def check_arbdefective(instance: ArbdefectiveInstance,
                       colors: Mapping[Node, Color],
                       orientation: Mapping[Node, Tuple[Node, ...]]
                       ) -> List[str]:
    """``P_A`` validity: the output orientation covers every monochromatic
    edge exactly once and out-defects respect ``d_v(x_v)``."""
    violations = check_complete(instance.network.nodes, colors)
    if violations:
        return violations
    violations = check_list_membership(instance.lists, colors)
    out_sets = {
        node: frozenset(orientation.get(node, ())) for node in instance.network
    }
    for node, outs in out_sets.items():
        for target in outs:
            if not instance.network.has_edge(node, target):
                violations.append(
                    f"orientation uses non-edge {node!r}->{target!r}"
                )
            elif colors[node] != colors[target]:
                violations.append(
                    f"orientation covers non-monochromatic edge "
                    f"{node!r}->{target!r}"
                )
    for u, v in instance.network.edges():
        if colors[u] != colors[v]:
            continue
        u_to_v = v in out_sets[u]
        v_to_u = u in out_sets[v]
        if u_to_v and v_to_u:
            violations.append(f"monochromatic edge {u!r}-{v!r} oriented both ways")
        elif not u_to_v and not v_to_u:
            violations.append(f"monochromatic edge {u!r}-{v!r} left unoriented")
    for node in instance.network:
        color = colors[node]
        conflicts = sum(
            1 for target in out_sets[node] if colors.get(target) == color
        )
        allowed = instance.defects[node].get(color, 0)
        if conflicts > allowed:
            violations.append(
                f"node {node!r}: {conflicts} monochromatic out-neighbors "
                f"exceed defect {allowed} for color {color}"
            )
    return violations


def check_defective_coloring(network: Network,
                             colors: Mapping[Node, Color],
                             defect: int) -> List[str]:
    """Standard d-defective coloring: <= ``defect`` same-colored neighbors."""
    violations = check_complete(network.nodes, colors)
    if violations:
        return violations
    for node in network:
        conflicts = sum(
            1
            for neighbor in network.neighbors(node)
            if colors[neighbor] == colors[node]
        )
        if conflicts > defect:
            violations.append(
                f"node {node!r}: {conflicts} same-colored neighbors exceed "
                f"defect {defect}"
            )
    return violations


def check_outdegree_defective(graph, colors: Mapping[Node, Color],
                              relative_defect: float) -> List[str]:
    """Lemma 3.4 guarantee: <= ``alpha * beta_v`` same-colored out-neighbors."""
    violations: List[str] = []
    for node in graph.nodes:
        conflicts = sum(
            1
            for neighbor in graph.out_neighbors(node)
            if colors[neighbor] == colors[node]
        )
        allowed = relative_defect * graph.beta(node)
        if conflicts > allowed:
            violations.append(
                f"node {node!r}: {conflicts} same-colored out-neighbors "
                f"exceed alpha*beta = {allowed:.3f}"
            )
    return violations


def _raise_if(violations: List[str], what: str) -> None:
    if violations:
        preview = "; ".join(violations[:5])
        raise AlgorithmFailure(
            f"invalid {what} ({len(violations)} violations): {preview}"
        )


def assert_proper_coloring(network: Network,
                           colors: Mapping[Node, Color]) -> None:
    """Raise :class:`AlgorithmFailure` unless the coloring is proper."""
    _raise_if(check_proper_coloring(network, colors), "proper coloring")


def assert_list_defective(instance: ListDefectiveInstance,
                          colors: Mapping[Node, Color]) -> None:
    """Raise :class:`AlgorithmFailure` on any ``P_D`` violation."""
    _raise_if(check_list_defective(instance, colors), "list defective coloring")


def assert_oldc(instance: OLDCInstance,
                colors: Mapping[Node, Color]) -> None:
    """Raise :class:`AlgorithmFailure` on any OLDC violation."""
    _raise_if(check_oldc(instance, colors), "oriented list defective coloring")


def assert_arbdefective(instance: ArbdefectiveInstance,
                        colors: Mapping[Node, Color],
                        orientation: Mapping[Node, Tuple[Node, ...]]) -> None:
    """Raise :class:`AlgorithmFailure` on any ``P_A`` violation."""
    _raise_if(
        check_arbdefective(instance, colors, orientation),
        "list arbdefective coloring",
    )
