"""List defective coloring instances.

The paper works with three problem flavors over the same data (a color
list ``L_v`` and a defect function ``d_v : L_v -> N_0`` per node):

* **List defective coloring** (``P_D``): pick ``x_v in L_v`` such that at
  most ``d_v(x_v)`` *neighbors* share the color.
* **List arbdefective coloring** (``P_A``): additionally output an
  orientation of the monochromatic edges; only *out*-neighbors under that
  orientation count against the defect.
* **Oriented list defective coloring** (OLDC): the orientation of *all*
  edges is part of the *input*; only out-neighbors count.

The three instance classes below share list/defect bookkeeping through
:class:`_ListInstanceBase` and differ in the graph object they carry and
the slack notion they expose.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from ..graphs.oriented import BidirectedView, OrientedGraph
from ..sim.errors import InstanceError
from ..sim.network import Network

Node = Hashable
Color = int
ColorList = Tuple[Color, ...]
DefectFn = Dict[Color, int]


def _normalize_lists(nodes: Iterable[Node],
                     lists: Mapping[Node, Iterable[Color]],
                     defects: Mapping[Node, Mapping[Color, int]]
                     ) -> Tuple[Dict[Node, ColorList], Dict[Node, DefectFn]]:
    """Validate and freeze per-node lists and defect functions."""
    node_set = set(nodes)
    missing = node_set - set(lists)
    if missing:
        raise InstanceError(f"nodes without a color list: {sorted(map(repr, missing))}")
    norm_lists: Dict[Node, ColorList] = {}
    norm_defects: Dict[Node, DefectFn] = {}
    for node in node_set:
        colors = tuple(dict.fromkeys(lists[node]))
        defect_fn = dict(defects.get(node, {}))
        for color in colors:
            if not isinstance(color, int) or color < 0:
                raise InstanceError(
                    f"node {node!r}: colors must be non-negative ints, got "
                    f"{color!r}"
                )
            value = defect_fn.get(color, 0)
            if not isinstance(value, int) or value < 0:
                raise InstanceError(
                    f"node {node!r}: defect of color {color} must be a "
                    f"non-negative int, got {value!r}"
                )
            defect_fn[color] = value
        extra = set(defect_fn) - set(colors)
        if extra:
            raise InstanceError(
                f"node {node!r}: defects given for colors outside the list: "
                f"{sorted(extra)}"
            )
        norm_lists[node] = colors
        norm_defects[node] = defect_fn
    return norm_lists, norm_defects


class _ListInstanceBase:
    """Shared list/defect bookkeeping for the three problem flavors."""

    def __init__(self, nodes: Iterable[Node],
                 lists: Mapping[Node, Iterable[Color]],
                 defects: Mapping[Node, Mapping[Color, int]],
                 color_space_size: Optional[int] = None):
        self.lists, self.defects = _normalize_lists(nodes, lists, defects)
        observed = max(
            (max(colors) for colors in self.lists.values() if colors),
            default=0,
        )
        if color_space_size is None:
            color_space_size = observed + 1
        elif observed >= color_space_size:
            raise InstanceError(
                f"color {observed} outside declared color space of size "
                f"{color_space_size}"
            )
        #: Size ``C`` of the global color space {0, ..., C-1}.
        self.color_space_size = color_space_size

    # ------------------------------------------------------------------
    # Per-node quantities
    # ------------------------------------------------------------------
    def list_of(self, node: Node) -> ColorList:
        """The color list ``L_v``."""
        return self.lists[node]

    def defect(self, node: Node, color: Color) -> int:
        """The allowed defect ``d_v(x)`` for ``color`` in the list."""
        return self.defects[node][color]

    def weight(self, node: Node) -> int:
        """``sum_{x in L_v} (d_v(x) + 1)`` -- the slack numerator."""
        defect_fn = self.defects[node]
        return sum(defect_fn[color] + 1 for color in self.lists[node])

    def list_size(self, node: Node) -> int:
        """``|L_v|``."""
        return len(self.lists[node])

    def max_list_size(self) -> int:
        """``Lambda``: the maximum list size over all nodes."""
        return max((len(colors) for colors in self.lists.values()), default=0)

    def total_list_entries(self) -> int:
        """Sum of all list sizes (instance size measure)."""
        return sum(len(colors) for colors in self.lists.values())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={len(self.lists)}, "
            f"C={self.color_space_size}, Lambda={self.max_list_size()})"
        )


class OLDCInstance(_ListInstanceBase):
    """Oriented list defective coloring: orientation is part of the input."""

    def __init__(self, graph,
                 lists: Mapping[Node, Iterable[Color]],
                 defects: Mapping[Node, Mapping[Color, int]],
                 color_space_size: Optional[int] = None):
        if not isinstance(graph, (OrientedGraph, BidirectedView)):
            raise InstanceError(
                "OLDCInstance needs an OrientedGraph (or BidirectedView)"
            )
        super().__init__(graph.nodes, lists, defects, color_space_size)
        self.graph = graph

    @property
    def network(self) -> Network:
        return self.graph.network

    def beta(self, node: Node) -> int:
        """``beta_v``: the node's outdegree, floored at 1."""
        return self.graph.beta(node)

    def satisfies_eq2(self, p: int, node: Node) -> bool:
        """Equation (2): ``weight(v) > max{p, |L_v|/p} * beta_v``."""
        threshold = max(p, self.list_size(node) / p) * self.beta(node)
        return self.weight(node) > threshold

    def satisfies_eq7(self, p: int, epsilon: float, node: Node) -> bool:
        """Equation (7): Eq. (2) with an extra ``(1 + epsilon)`` factor."""
        threshold = (
            (1.0 + epsilon)
            * max(p, self.list_size(node) / p)
            * self.beta(node)
        )
        return self.weight(node) > threshold

    def restrict(self, nodes: Iterable[Node]) -> "OLDCInstance":
        """Induced sub-instance (subgraph keeps the input orientation)."""
        keep = set(nodes)
        return OLDCInstance(
            self.graph.subgraph(keep),
            {node: self.lists[node] for node in keep},
            {node: self.defects[node] for node in keep},
            self.color_space_size,
        )


class _UndirectedInstanceBase(_ListInstanceBase):
    """Common slack machinery for the two undirected problem flavors."""

    def __init__(self, network: Network,
                 lists: Mapping[Node, Iterable[Color]],
                 defects: Mapping[Node, Mapping[Color, int]],
                 color_space_size: Optional[int] = None):
        if not isinstance(network, Network):
            raise InstanceError("expected a Network")
        super().__init__(network.nodes, lists, defects, color_space_size)
        self.network = network

    def degree(self, node: Node) -> int:
        """The node's degree in the instance's graph."""
        return self.network.degree(node)

    def slack(self, node: Node) -> float:
        """Largest ``S`` with ``weight(v) > S * deg(v)`` (Definition 1.1).

        Degree-0 nodes have unbounded slack; we report ``inf``.
        """
        degree = self.network.degree(node)
        if degree == 0:
            return float("inf")
        return self.weight(node) / degree

    def min_slack(self) -> float:
        """The instance's slack: the minimum over all nodes."""
        return min((self.slack(node) for node in self.network), default=float("inf"))

    def has_slack(self, s: float) -> bool:
        """Definition 1.1: ``weight(v) > s * deg(v)`` for every node."""
        return all(
            self.weight(node) > s * self.network.degree(node)
            for node in self.network
        )


class ListDefectiveInstance(_UndirectedInstanceBase):
    """``P_D``: defects are charged by all same-colored neighbors."""

    def restrict(self, nodes: Iterable[Node]) -> "ListDefectiveInstance":
        """The induced sub-instance on ``nodes``."""
        keep = set(nodes)
        return ListDefectiveInstance(
            self.network.subgraph(keep),
            {node: self.lists[node] for node in keep},
            {node: self.defects[node] for node in keep},
            self.color_space_size,
        )


class ArbdefectiveInstance(_UndirectedInstanceBase):
    """``P_A``: the solver also orients monochromatic edges."""

    def restrict(self, nodes: Iterable[Node]) -> "ArbdefectiveInstance":
        """The induced sub-instance on ``nodes``."""
        keep = set(nodes)
        return ArbdefectiveInstance(
            self.network.subgraph(keep),
            {node: self.lists[node] for node in keep},
            {node: self.defects[node] for node in keep},
            self.color_space_size,
        )


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def uniform_lists(nodes: Iterable[Node], colors: Iterable[Color],
                  defect: int = 0) -> Tuple[Dict[Node, ColorList],
                                            Dict[Node, DefectFn]]:
    """Every node gets the same list and the same per-color defect."""
    palette = tuple(dict.fromkeys(colors))
    lists = {node: palette for node in nodes}
    defects = {node: {color: defect for color in palette} for node in nodes}
    return lists, defects


def degree_plus_one_instance(network: Network,
                             lists: Mapping[Node, Iterable[Color]],
                             color_space_size: Optional[int] = None
                             ) -> ListDefectiveInstance:
    """A (deg+1)-list coloring instance: all defects zero.

    Raises :class:`InstanceError` if any list is smaller than ``deg + 1``.
    """
    for node in network:
        size = len(tuple(dict.fromkeys(lists[node])))
        if size < network.degree(node) + 1:
            raise InstanceError(
                f"node {node!r}: list of size {size} < deg+1 = "
                f"{network.degree(node) + 1}"
            )
    defects = {
        node: {color: 0 for color in dict.fromkeys(lists[node])}
        for node in network
    }
    return ListDefectiveInstance(network, lists, defects, color_space_size)
