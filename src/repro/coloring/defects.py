"""Slack arithmetic and Two-Sweep parameter selection.

Theorem 1.1 requires, for a parameter ``p >= 1`` and ``epsilon >= 0``,

    ``weight(v) = sum_{x in L_v}(d_v(x)+1) > (1+eps) * max{p, |L_v|/p} * beta_v``

for every node.  For a single node this carves out an open interval of
feasible ``p`` values; the instance-wide feasible set is the intersection.
This module computes that interval and picks parameters, and hosts small
helpers for rescaling defect functions in the reductions of Sections 3-4.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from .instance import OLDCInstance

Node = Hashable
Color = int


def feasible_p_interval(instance: OLDCInstance,
                        epsilon: float = 0.0
                        ) -> Tuple[float, float]:
    """The open interval of real ``p`` satisfying Eq. (2)/(7) at every node.

    Returns ``(low, high)``; integer parameters ``p`` with
    ``low < p < high`` are feasible.  An empty interval (``low >= high``)
    means no ``p`` works for this ``epsilon``.
    """
    low = 0.0
    high = math.inf
    scale = 1.0 + epsilon
    for node in instance.lists:
        weight = instance.weight(node)
        beta = instance.beta(node)
        size = instance.list_size(node)
        if weight <= 0:
            return (math.inf, 0.0)
        # weight > scale * p * beta        =>  p < weight / (scale * beta)
        # weight > scale * (size/p) * beta =>  p > scale * size * beta / weight
        node_high = weight / (scale * beta)
        node_low = scale * size * beta / weight
        if node_high < high:
            high = node_high
        if node_low > low:
            low = node_low
    return (low, high)


def feasible_p_values(instance: OLDCInstance,
                      epsilon: float = 0.0) -> Tuple[int, ...]:
    """All feasible integer parameters ``p >= 1`` (possibly empty)."""
    low, high = feasible_p_interval(instance, epsilon)
    first = max(1, int(math.floor(low)) + 1)
    # Strict upper bound: the largest integer strictly below `high`.
    if math.isinf(high):
        # Cap at the maximum list size: larger p never helps (S_v <= |L_v|).
        last = max(first, instance.max_list_size())
    else:
        last = int(math.ceil(high)) - 1
        if last >= high:  # pragma: no cover - guard for float edge cases
            last -= 1
    values = []
    p = first
    while p <= last:
        # Re-verify node by node; the interval used floats.
        if all(
            instance.satisfies_eq7(p, epsilon, node)
            for node in instance.lists
        ):
            values.append(p)
        p += 1
    return tuple(values)


def choose_p(instance: OLDCInstance,
             epsilon: float = 0.0) -> Optional[int]:
    """The smallest feasible ``p``, or ``None`` if Eq. (2)/(7) fails for all.

    A smaller ``p`` means smaller Phase-I messages (a sub-list of ``p``
    colors) and, for ``epsilon > 0``, fewer rounds (O((p/eps)^2)).
    """
    values = feasible_p_values(instance, epsilon)
    return values[0] if values else None


def balanced_p(instance: OLDCInstance) -> int:
    """``p = ceil(sqrt(Lambda))``: balances ``p`` and ``|L_v|/p``.

    This is the choice used in the proof of Theorem 1.2; it is feasible
    whenever ``weight(v) > (1+eps) * ceil(sqrt(Lambda)) * beta_v``.
    """
    return max(1, int(math.ceil(math.sqrt(max(1, instance.max_list_size())))))


def reduce_defects(defects: Mapping[Node, Mapping[Color, int]],
                   reduction: Mapping[Node, int]
                   ) -> Dict[Node, Dict[Color, int]]:
    """Subtract a per-node amount from every color's defect (may go negative)."""
    return {
        node: {
            color: value - reduction[node]
            for color, value in defect_fn.items()
        }
        for node, defect_fn in defects.items()
    }


def drop_negative_defects(lists: Mapping[Node, Iterable[Color]],
                          defects: Mapping[Node, Mapping[Color, int]]
                          ) -> Tuple[Dict[Node, Tuple[Color, ...]],
                                     Dict[Node, Dict[Color, int]]]:
    """Keep only colors whose (possibly reduced) defect is non-negative.

    This is the ``L'_v := {x in L_v | d'_v(x) >= 0}`` step of Algorithm 2
    and of the slack reductions in Section 4.2.
    """
    new_lists: Dict[Node, Tuple[Color, ...]] = {}
    new_defects: Dict[Node, Dict[Color, int]] = {}
    for node, colors in lists.items():
        defect_fn = defects[node]
        kept = tuple(
            color for color in colors if defect_fn.get(color, 0) >= 0
        )
        new_lists[node] = kept
        new_defects[node] = {color: defect_fn[color] for color in kept}
    return new_lists, new_defects
