"""Structured audits of coloring outputs.

Validators answer "is it correct?"; audits answer "how tight is it?" --
palette usage, defect-budget utilization, orientation balance.  Examples
and benchmarks print these to make the guarantees tangible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Tuple

from ..sim.network import Network
from .instance import _ListInstanceBase

Node = Hashable
Color = int


@dataclass
class ColoringAudit:
    """Aggregate statistics of a coloring against its instance."""

    nodes: int
    colors_used: int
    color_space_size: int
    #: Per-node same-colored-conflict counts (relevant neighbor notion).
    max_conflicts: int
    #: max over nodes of conflicts / allowed defect (0/0 counts as 0).
    worst_utilization: float
    #: Nodes whose conflicts equal their defect exactly (tight nodes).
    tight_nodes: int
    palette_histogram: Dict[Color, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.nodes} nodes, {self.colors_used}/"
            f"{self.color_space_size} colors used, max conflicts "
            f"{self.max_conflicts}, worst defect utilization "
            f"{self.worst_utilization:.2f}, {self.tight_nodes} tight nodes"
        )


def _histogram(colors: Mapping[Node, Color]) -> Dict[Color, int]:
    histogram: Dict[Color, int] = {}
    for color in colors.values():
        histogram[color] = histogram.get(color, 0) + 1
    return histogram


def audit_undirected(instance: _ListInstanceBase, network: Network,
                     colors: Mapping[Node, Color]) -> ColoringAudit:
    """Audit a ``P_D`` (all-neighbor) coloring."""
    max_conflicts = 0
    worst = 0.0
    tight = 0
    for node in network:
        color = colors[node]
        conflicts = sum(
            1 for neighbor in network.neighbors(node)
            if colors[neighbor] == color
        )
        allowed = instance.defects[node].get(color, 0)
        max_conflicts = max(max_conflicts, conflicts)
        if allowed > 0:
            worst = max(worst, conflicts / allowed)
        elif conflicts > 0:
            worst = float("inf")
        if conflicts == allowed and allowed > 0:
            tight += 1
    return ColoringAudit(
        nodes=len(network),
        colors_used=len(set(colors.values())),
        color_space_size=instance.color_space_size,
        max_conflicts=max_conflicts,
        worst_utilization=worst,
        tight_nodes=tight,
        palette_histogram=_histogram(colors),
    )


def audit_oriented(instance, colors: Mapping[Node, Color]) -> ColoringAudit:
    """Audit an OLDC coloring (out-neighbor conflicts)."""
    graph = instance.graph
    max_conflicts = 0
    worst = 0.0
    tight = 0
    for node in graph.nodes:
        color = colors[node]
        conflicts = sum(
            1 for neighbor in graph.out_neighbors(node)
            if colors[neighbor] == color
        )
        allowed = instance.defects[node].get(color, 0)
        max_conflicts = max(max_conflicts, conflicts)
        if allowed > 0:
            worst = max(worst, conflicts / allowed)
        elif conflicts > 0:
            worst = float("inf")
        if conflicts == allowed and allowed > 0:
            tight += 1
    return ColoringAudit(
        nodes=len(graph.nodes),
        colors_used=len(set(colors.values())),
        color_space_size=instance.color_space_size,
        max_conflicts=max_conflicts,
        worst_utilization=worst,
        tight_nodes=tight,
        palette_histogram=_histogram(colors),
    )


def orientation_balance(orientation: Mapping[Node, Tuple[Node, ...]]
                        ) -> Tuple[int, float]:
    """(max out-count, mean out-count) of an arbdefective orientation."""
    counts = [len(outs) for outs in orientation.values()]
    if not counts:
        return (0, 0.0)
    return (max(counts), sum(counts) / len(counts))
