"""JSON serialization of graphs, instances, and colorings.

Lets experiments be saved, shared and replayed: an instance file carries
the adjacency, the orientation (if any), the lists and defect functions,
and the declared color space; a solution file carries the colors and the
orientation of monochromatic edges.  Node identifiers are restricted to
JSON-representable scalars (int/str); everything round-trips exactly.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Hashable, Mapping, Union

from ..graphs.oriented import OrientedGraph
from ..sim.errors import InstanceError
from ..sim.network import Network
from .instance import (
    ArbdefectiveInstance,
    ListDefectiveInstance,
    OLDCInstance,
)
from .result import ColoringResult

Node = Hashable

_KINDS = {
    "oldc": OLDCInstance,
    "list_defective": ListDefectiveInstance,
    "arbdefective": ArbdefectiveInstance,
}


def _node_key(node: Node) -> str:
    """JSON object keys must be strings; prefix keeps int/str distinct."""
    if isinstance(node, bool) or not isinstance(node, (int, str)):
        raise InstanceError(
            f"only int/str node ids serialize; got {node!r}"
        )
    return f"i:{node}" if isinstance(node, int) else f"s:{node}"


def _node_from_key(key: str) -> Node:
    tag, _, raw = key.partition(":")
    return int(raw) if tag == "i" else raw


def instance_to_dict(instance: Union[OLDCInstance, ListDefectiveInstance,
                                     ArbdefectiveInstance]) -> Dict[str, Any]:
    """A JSON-ready dict capturing the full instance."""
    if isinstance(instance, OLDCInstance):
        kind = "oldc"
        network = instance.graph.network
        orientation = {
            _node_key(node): [
                _node_key(target)
                for target in instance.graph.out_neighbors(node)
            ]
            for node in network
        }
    else:
        kind = (
            "arbdefective"
            if isinstance(instance, ArbdefectiveInstance)
            else "list_defective"
        )
        network = instance.network
        orientation = None
    return {
        "kind": kind,
        "color_space_size": instance.color_space_size,
        "adjacency": {
            _node_key(node): [
                _node_key(neighbor)
                for neighbor in network.neighbors(node)
            ]
            for node in network
        },
        "orientation": orientation,
        "lists": {
            _node_key(node): list(colors)
            for node, colors in instance.lists.items()
        },
        "defects": {
            _node_key(node): {
                str(color): value for color, value in defect_fn.items()
            }
            for node, defect_fn in instance.defects.items()
        },
    }


def instance_from_dict(payload: Mapping[str, Any]
                       ) -> Union[OLDCInstance, ListDefectiveInstance,
                                  ArbdefectiveInstance]:
    """Rebuild an instance (validated by the instance constructors)."""
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise InstanceError(f"unknown instance kind {kind!r}")
    adjacency = {
        _node_from_key(key): [_node_from_key(value) for value in values]
        for key, values in payload["adjacency"].items()
    }
    network = Network(adjacency)
    lists = {
        _node_from_key(key): tuple(values)
        for key, values in payload["lists"].items()
    }
    defects = {
        _node_from_key(key): {
            int(color): value for color, value in defect_fn.items()
        }
        for key, defect_fn in payload["defects"].items()
    }
    color_space = payload["color_space_size"]
    if kind == "oldc":
        orientation = {
            _node_from_key(key): [
                _node_from_key(value) for value in values
            ]
            for key, values in payload["orientation"].items()
        }
        graph = OrientedGraph(network, orientation)
        return OLDCInstance(graph, lists, defects, color_space)
    return _KINDS[kind](network, lists, defects, color_space)


def result_to_dict(result: ColoringResult) -> Dict[str, Any]:
    """Serialize a coloring result (colors + orientation, no ledger)."""
    return {
        "colors": {
            _node_key(node): color for node, color in result.colors.items()
        },
        "orientation": None if result.orientation is None else {
            _node_key(node): [_node_key(target) for target in targets]
            for node, targets in result.orientation.items()
        },
    }


def result_from_dict(payload: Mapping[str, Any]) -> ColoringResult:
    """Rebuild a :class:`ColoringResult` from its JSON dict."""
    orientation = payload.get("orientation")
    return ColoringResult(
        colors={
            _node_from_key(key): color
            for key, color in payload["colors"].items()
        },
        orientation=None if orientation is None else {
            _node_from_key(key): tuple(
                _node_from_key(value) for value in values
            )
            for key, values in orientation.items()
        },
    )


def save_instance(instance, path) -> pathlib.Path:
    """Write the instance as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(instance_to_dict(instance), indent=1))
    return path


def load_instance(path):
    """Read an instance written by :func:`save_instance`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return instance_from_dict(payload)


def save_result(result: ColoringResult, path) -> pathlib.Path:
    """Write a coloring result as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path


def load_result(path) -> ColoringResult:
    """Read a result written by :func:`save_result`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return result_from_dict(payload)
