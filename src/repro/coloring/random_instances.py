"""Random feasible instances for tests and benchmarks.

The generators produce instances that provably satisfy the preconditions
of the algorithm under test (Eq. (2)/(7) for the Two-Sweep family, a slack
bound for the Section 4 recursions), with enough randomness in lists and
defects to exercise the general list-defective case rather than only the
uniform one.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional, Tuple

from ..graphs.oriented import OrientedGraph
from ..sim.network import Network
from .instance import (
    ArbdefectiveInstance,
    ListDefectiveInstance,
    OLDCInstance,
)

Node = Hashable
Color = int


def random_oldc_instance(graph: OrientedGraph, p: int, seed: int,
                         color_space_size: Optional[int] = None,
                         epsilon: float = 0.0,
                         jitter: bool = True) -> OLDCInstance:
    """A random OLDC instance satisfying Eq. (2) (or Eq. (7)) for ``p``.

    Each node receives a list of ``p**2`` colors (the paper's headline list
    size) sampled from the color space, with uniform base defects
    ``floor((1+eps) * beta_v / p)`` -- which makes
    ``weight(v) = p^2 * (d+1) > (1+eps) * p * beta_v`` -- plus optional
    random defect jitter (jitter only *adds* slack, never removes it).
    """
    rng = random.Random(seed)
    list_size = p * p
    if color_space_size is None:
        color_space_size = max(2 * list_size, list_size + 1)
    if color_space_size < list_size:
        raise ValueError("color space smaller than the required list size")
    lists: Dict[Node, Tuple[Color, ...]] = {}
    defects: Dict[Node, Dict[Color, int]] = {}
    for node in graph.nodes:
        beta = graph.beta(node)
        base = int((1.0 + epsilon) * beta / p)  # floor
        colors = tuple(sorted(rng.sample(range(color_space_size), list_size)))
        defect_fn = {}
        for color in colors:
            extra = rng.randint(0, max(1, base)) if jitter else 0
            defect_fn[color] = base + extra
        lists[node] = colors
        defects[node] = defect_fn
    instance = OLDCInstance(graph, lists, defects, color_space_size)
    for node in graph.nodes:
        assert instance.satisfies_eq7(p, epsilon, node), (
            "generator bug: instance misses Eq.(7) at node %r" % (node,)
        )
    return instance


def random_nonuniform_oldc_instance(graph: OrientedGraph, p: int, seed: int,
                                    color_space_size: Optional[int] = None
                                    ) -> OLDCInstance:
    """An OLDC instance with *heterogeneous* list sizes satisfying Eq. (2).

    Node ``v`` gets a list size drawn from ``[p, p**2]``; the defect mass is
    then topped up so that ``weight(v) > max(p, |L_v|/p) * beta_v`` holds
    with equality plus one.  Exercises the non-square-list branches of
    Lemma 3.1.
    """
    rng = random.Random(seed)
    if color_space_size is None:
        color_space_size = max(2 * p * p, 4)
    lists: Dict[Node, Tuple[Color, ...]] = {}
    defects: Dict[Node, Dict[Color, int]] = {}
    for node in graph.nodes:
        beta = graph.beta(node)
        size = rng.randint(max(1, p // 2), min(p * p, color_space_size))
        colors = tuple(sorted(rng.sample(range(color_space_size), size)))
        required = int(max(p, size / p) * beta) + 1  # weight must exceed this - 1
        # Distribute `required` units of (d+1) mass over the list randomly.
        mass = [1] * size
        remaining = max(0, required - size)
        for _ in range(remaining):
            mass[rng.randrange(size)] += 1
        defect_fn = {
            color: mass[index] - 1 for index, color in enumerate(colors)
        }
        lists[node] = colors
        defects[node] = defect_fn
    instance = OLDCInstance(graph, lists, defects, color_space_size)
    for node in graph.nodes:
        assert instance.satisfies_eq2(p, node), (
            "generator bug: instance misses Eq.(2) at node %r" % (node,)
        )
    return instance


def minimal_slack_oldc_instance(graph: OrientedGraph, p: int,
                                epsilon: float = 0.0) -> OLDCInstance:
    """The *tightest* uniform instance satisfying Eq. (2)/(7) for ``p``.

    Every node gets ``p**2`` colors whose defect mass is the minimal
    integer strictly above ``(1+eps) * max{p, p} * beta_v`` (never below
    one unit per color).  These instances sit exactly on the theorem's
    boundary -- the right workload for tightness tests and the rounding
    ablation (E14).
    """
    import math

    lists: Dict[Node, Tuple[Color, ...]] = {}
    defects: Dict[Node, Dict[Color, int]] = {}
    size = p * p
    for node in graph.nodes:
        beta = graph.beta(node)
        threshold = (1.0 + epsilon) * max(p, size / p) * beta
        need = max(size, int(math.floor(threshold)) + 1)
        base, extra = divmod(need, size)
        colors = tuple(range(size))
        lists[node] = colors
        defects[node] = {
            color: base - 1 + (1 if index < extra else 0)
            for index, color in enumerate(colors)
        }
    instance = OLDCInstance(graph, lists, defects, size)
    for node in graph.nodes:
        assert instance.satisfies_eq7(p, epsilon, node)
    return instance


def _random_slack_lists(network: Network, slack: float, seed: int,
                        color_space_size: int,
                        list_size_cap: Optional[int] = None
                        ) -> Tuple[Dict[Node, Tuple[Color, ...]],
                                   Dict[Node, Dict[Color, int]]]:
    rng = random.Random(seed)
    lists: Dict[Node, Tuple[Color, ...]] = {}
    defects: Dict[Node, Dict[Color, int]] = {}
    for node in network.nodes:
        degree = network.degree(node)
        cap = list_size_cap or color_space_size
        size = rng.randint(1, min(cap, color_space_size))
        colors = tuple(sorted(rng.sample(range(color_space_size), size)))
        required = int(slack * degree) + 1
        mass = [1] * size
        remaining = max(0, required - size)
        for _ in range(remaining):
            mass[rng.randrange(size)] += 1
        lists[node] = colors
        defects[node] = {
            color: mass[index] - 1 for index, color in enumerate(colors)
        }
    return lists, defects


def random_defective_instance(network: Network, slack: float, seed: int,
                              color_space_size: int,
                              list_size_cap: Optional[int] = None
                              ) -> ListDefectiveInstance:
    """A random ``P_D`` instance with slack strictly greater than ``slack``."""
    lists, defects = _random_slack_lists(
        network, slack, seed, color_space_size, list_size_cap
    )
    instance = ListDefectiveInstance(network, lists, defects, color_space_size)
    assert instance.has_slack(slack), "generator bug: slack too small"
    return instance


def random_arbdefective_instance(network: Network, slack: float, seed: int,
                                 color_space_size: int,
                                 list_size_cap: Optional[int] = None
                                 ) -> ArbdefectiveInstance:
    """A random ``P_A`` instance with slack strictly greater than ``slack``."""
    lists, defects = _random_slack_lists(
        network, slack, seed, color_space_size, list_size_cap
    )
    instance = ArbdefectiveInstance(network, lists, defects, color_space_size)
    assert instance.has_slack(slack), "generator bug: slack too small"
    return instance
