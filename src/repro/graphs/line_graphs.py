"""Line graphs of graphs and hypergraphs.

The line graph ``L(H)`` of a hypergraph ``H`` has one node per hyperedge;
two nodes are adjacent iff the hyperedges intersect.  For a rank-``r``
hypergraph, the neighborhood independence of ``L(H)`` is at most ``r``
(pairwise disjoint hyperedges through a common hyperedge must each use a
distinct one of its at most ``r`` vertices), which is how the paper's
Theorem 1.5 yields fast ``(2*Delta - 1)``-edge coloring.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

from ..sim.network import Network
from .hypergraphs import Hypergraph

Node = Hashable


def line_graph_of_network(network: Network
                          ) -> Tuple[Network, Dict[int, Tuple[Node, Node]]]:
    """The line graph of an ordinary graph.

    Returns the line graph (nodes ``0..m-1``) and the mapping from line
    graph node back to the original undirected edge it represents, so a
    vertex coloring of the line graph can be read back as an edge coloring.
    """
    edges = sorted(network.edges(), key=lambda edge: tuple(map(repr, edge)))
    edge_of: Dict[int, Tuple[Node, Node]] = {
        index: edge for index, edge in enumerate(edges)
    }
    incident: Dict[Node, List[int]] = {node: [] for node in network}
    for index, (u, v) in edge_of.items():
        incident[u].append(index)
        incident[v].append(index)
    adjacency: Dict[int, List[int]] = {index: [] for index in edge_of}
    for indices in incident.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                adjacency[a].append(b)
                adjacency[b].append(a)
    return Network(adjacency), edge_of


def line_graph_of_hypergraph(hypergraph: Hypergraph
                             ) -> Tuple[Network, Dict[int, FrozenSet[int]]]:
    """The line graph of a hypergraph (intersection graph of hyperedges).

    Returns the network (nodes ``0..m-1``) and the mapping from node index
    to the hyperedge it represents.  The neighborhood independence of the
    result is at most ``hypergraph.rank``.
    """
    edge_of: Dict[int, FrozenSet[int]] = dict(enumerate(hypergraph.edges))
    containing: Dict[int, List[int]] = {
        v: [] for v in range(hypergraph.n_vertices)
    }
    for index, edge in edge_of.items():
        for vertex in edge:
            containing[vertex].append(index)
    adjacency: Dict[int, set] = {index: set() for index in edge_of}
    for indices in containing.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return (
        Network({index: sorted(nbrs) for index, nbrs in adjacency.items()}),
        edge_of,
    )


def edge_coloring_from_line_coloring(
        colors: Dict[int, int],
        edge_of: Dict[int, Tuple[Node, Node]]
) -> Dict[Tuple[Node, Node], int]:
    """Translate a line graph vertex coloring back to an edge coloring."""
    return {edge_of[index]: color for index, color in colors.items()}


def is_proper_edge_coloring(network: Network,
                            edge_colors: Dict[Tuple[Node, Node], int]) -> bool:
    """Check that no two edges sharing an endpoint have the same color."""
    seen: Dict[Tuple[Node, int], Tuple[Node, Node]] = {}
    for edge, color in edge_colors.items():
        u, v = edge
        for endpoint in (u, v):
            key = (endpoint, color)
            if key in seen and frozenset(seen[key]) != frozenset(edge):
                return False
            seen[key] = edge
    # Every edge of the network must be colored.
    expected = {frozenset(edge) for edge in network.edges()}
    got = {frozenset(edge) for edge in edge_colors}
    return expected == got
