"""Streaming topology builders: edges straight into CSR buffers.

The materialized generators in :mod:`repro.graphs.generators` build a
:class:`~repro.sim.network.Network` -- per-node Python dicts, tuples and
frozensets -- and only then compile it to CSR arrays.  At n = 10^6 that
intermediate costs gigabytes and minutes before the first round runs.
The builders here skip it entirely: each family exposes an *edge stream*
(an iterator of ``(u, v)`` pairs over dense ids ``0..n-1``) that is
consumed once into flat ``array('q')`` CSR buffers, from which a
:class:`~repro.sim.compiled.CompiledNetwork` is constructed directly via
:meth:`~repro.sim.compiled.CompiledNetwork.from_csr`.  The compiled
network's Network facade then feeds the scheduler on every engine with
no ``Network`` object anywhere.

Equivalence contract (locked by ``tests/graphs/test_streaming.py``):

* :func:`csr_from_edges` reproduces **exactly** the adjacency order of
  ``Network.from_edges(range(n), edges).compile()`` -- each edge appends
  its endpoints to both rows in stream order -- so for any stream the
  streamed CSR is byte-identical to the materialized one;
* the deterministic streams (:func:`ring_edges`, :func:`grid_edges`,
  :func:`tree_edges`) emit edges in the same order as their materialized
  twins (``ring_graph``/``grid_graph``/``binary_tree``), making e.g.
  ``stream_ring(n)`` byte-identical to ``ring_graph(n).compile()``;
* the randomized streams are seeded distributions of their own:
  :func:`gnp_edges` draws G(n, p) with O(n + |E|) geometric edge
  skipping (one draw per *edge*, not per pair) and :func:`regular_edges`
  uses a pairing-model repair loop, so neither replays the per-pair draw
  sequence of ``gnp_graph``/networkx -- they are tested byte-identical
  against ``Network.from_edges`` over the same stream instead.

Large streamed topologies bypass the interning registry (see
:data:`~repro.graphs.generators.INTERN_NODE_LIMIT`) and are shared with
pool workers through :mod:`repro.sim.shm`: every ``stream_*`` builder
first consults the published-topology table, so a worker whose measure
function rebuilds "the same" graph gets the parent's single shared copy.
"""

from __future__ import annotations

import math
import random
from array import array
from typing import Iterable, Iterator, Tuple

from ..sim import arrays
from ..sim.compiled import CompiledNetwork, _ID_TYPECODE
from ..sim.errors import NetworkError
from .generators import _interned

Edge = Tuple[int, int]

#: Streams larger than this many edges take the NumPy counting-sort CSR
#: fill when the array backend is on; below it the Python loop wins.
_CSR_NUMPY_MIN_EDGES = 1 << 12


# ----------------------------------------------------------------------
# Edge streams (dense ids, no duplicates, no self-loops)
# ----------------------------------------------------------------------
def ring_edges(n: int) -> Iterator[Edge]:
    """The cycle's edges in ``ring_graph`` order."""
    if n < 3:
        raise NetworkError("a ring needs at least 3 nodes")
    for i in range(n):
        yield (i, (i + 1) % n)


def grid_edges(rows: int, cols: int) -> Iterator[Edge]:
    """The grid's edges in ``grid_graph`` order (right, then down)."""
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            node = base + c
            if c + 1 < cols:
                yield (node, node + 1)
            if r + 1 < rows:
                yield (node, node + cols)


def tree_edges(depth: int) -> Iterator[Edge]:
    """The complete binary tree's edges in ``binary_tree`` order."""
    n = 2 ** (depth + 1) - 1
    for i in range(1, n):
        yield (i, (i - 1) // 2)


def gnp_edges(n: int, p: float, seed: int) -> Iterator[Edge]:
    """G(n, p) edges by geometric skipping -- O(n + |E|) draws.

    Walks the lexicographic sequence of the ``n * (n - 1) / 2`` vertex
    pairs and jumps straight to the next present edge by sampling the
    geometric gap ``floor(log(U) / log(1 - p))``, so the cost is
    proportional to the number of edges rather than the number of pairs.
    A seeded distribution of its own: it does *not* replay
    ``gnp_graph``'s one-uniform-per-pair draws.
    """
    if not 0.0 <= p <= 1.0:
        raise NetworkError("edge probability must lie in [0, 1]")
    if n < 0:
        raise NetworkError("node count must be non-negative")
    total = n * (n - 1) // 2
    if total == 0 or p == 0.0:
        return
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                yield (u, v)
        return
    rng = random.Random(seed)
    log_skip = math.log(1.0 - p)
    # Unrank pair index t -> (u, v) incrementally: row u covers the
    # contiguous block [row_start, row_start + n - u - 1).
    u = 0
    row_start = 0
    t = -1
    while True:
        # 1 - random() lies in (0, 1], keeping the log finite.
        t += 1 + int(math.log(1.0 - rng.random()) / log_skip)
        if t >= total:
            return
        while t >= row_start + (n - u - 1):
            row_start += n - u - 1
            u += 1
        yield (u, u + 1 + (t - row_start))


def regular_edges(n: int, degree: int, seed: int) -> Iterator[Edge]:
    """A random ``degree``-regular simple graph via pairing with repair.

    Shuffles the ``n * degree`` stubs and pairs them consecutively;
    pairs forming self-loops or duplicate edges return to the pool and
    are re-shuffled.  When a pass makes no progress the construction
    restarts from scratch (vanishingly rare for ``degree << n``).  A
    seeded distribution of its own, independent of networkx's sampler.
    """
    if n * degree % 2 != 0:
        raise NetworkError("n * degree must be even")
    if degree >= n:
        raise NetworkError("degree must be smaller than n")
    if degree < 0:
        raise NetworkError("degree must be non-negative")
    if degree == 0:
        return
    rng = random.Random(seed)
    while True:
        edges = _try_pairing(n, degree, rng)
        if edges is not None:
            yield from edges
            return


def _try_pairing(n: int, degree: int, rng: random.Random):
    """One pairing-model attempt; ``None`` when it wedges."""
    edges = []
    seen = set()
    stubs = [node for node in range(n) for _ in range(degree)]
    while stubs:
        rng.shuffle(stubs)
        leftover = []
        progress = False
        for u, v in zip(stubs[0::2], stubs[1::2]):
            key = (u, v) if u < v else (v, u)
            if u == v or key in seen:
                leftover.append(u)
                leftover.append(v)
                continue
            seen.add(key)
            edges.append((u, v))
            progress = True
        if leftover and not progress:
            return None
        stubs = leftover
    return edges


# ----------------------------------------------------------------------
# CSR construction
# ----------------------------------------------------------------------
def csr_from_edges(n: int, edges: Iterable[Edge]):
    """Consume an edge stream into ``(indptr, indices)`` CSR arrays.

    Each edge ``(u, v)`` appends ``v`` to row ``u`` and ``u`` to row
    ``v``, in stream order -- exactly the adjacency order
    ``Network.from_edges`` produces -- so compiling the same stream
    through a materialized :class:`Network` yields byte-identical
    buffers.  The stream must be simple (no duplicates or self-loops);
    bounds and self-loops are checked, duplicates are the stream's
    contract.  Takes a NumPy counting-sort path for large streams when
    the array backend is enabled; both paths are bit-identical.
    """
    pairs = array(_ID_TYPECODE)
    append = pairs.append
    for u, v in edges:
        if u == v:
            raise NetworkError("self-loops are not allowed")
        if not (0 <= u < n and 0 <= v < n):
            raise NetworkError("edge endpoint out of range")
        append(u)
        append(v)
    np = arrays.get_numpy()
    if np is not None and len(pairs) >= 2 * _CSR_NUMPY_MIN_EDGES:
        return _csr_fill_numpy(np, n, pairs)
    return _csr_fill_python(n, pairs)


def _csr_fill_python(n: int, pairs: array):
    counts = array(_ID_TYPECODE, bytes(8 * n)) if n else array(_ID_TYPECODE)
    for node in pairs:
        counts[node] += 1
    indptr = array(_ID_TYPECODE, bytes(8 * (n + 1)))
    total = 0
    for i in range(n):
        indptr[i] = total
        total += counts[i]
    indptr[n] = total
    cursor = list(indptr[:n])
    indices = array(_ID_TYPECODE, bytes(8 * len(pairs)))
    for k in range(0, len(pairs), 2):
        u = pairs[k]
        v = pairs[k + 1]
        indices[cursor[u]] = v
        cursor[u] += 1
        indices[cursor[v]] = u
        cursor[v] += 1
    return indptr, indices


def _csr_fill_numpy(np, n: int, pairs: array):
    flat = np.frombuffer(pairs, dtype=np.int64)
    ends = flat.reshape(-1, 2)
    # Directed incidence in stream order: (u -> v, v -> u) per edge.
    src = np.empty(flat.shape[0], dtype=np.int64)
    dst = np.empty(flat.shape[0], dtype=np.int64)
    src[0::2] = ends[:, 0]
    src[1::2] = ends[:, 1]
    dst[0::2] = ends[:, 1]
    dst[1::2] = ends[:, 0]
    counts = np.bincount(src, minlength=n)
    indptr_np = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr_np[1:])
    # Stable sort by source keeps stream order within each row -- the
    # same insertion order Network.from_edges produces.
    order = np.argsort(src, kind="stable")
    indices_np = dst[order]
    indptr = array(_ID_TYPECODE)
    indptr.frombytes(indptr_np.tobytes())
    indices = array(_ID_TYPECODE)
    indices.frombytes(indices_np.tobytes())
    return indptr, indices


# ----------------------------------------------------------------------
# Streamed topologies (CompiledNetwork, no Network anywhere)
# ----------------------------------------------------------------------
def _stream_compiled(key, n: int, factory) -> CompiledNetwork:
    from ..sim import shm
    from ..substrates.cache import record_lookup

    shared = shm.lookup(key)
    # "topologies" counts shared-memory resolution (the daemon's warm
    # topology table); an shm miss may still hit the interned "networks"
    # registry below.
    record_lookup("topologies", shared is not None)
    if shared is not None:
        return shared

    def build() -> CompiledNetwork:
        indptr, indices = csr_from_edges(n, factory())
        return CompiledNetwork.from_csr(indptr, indices)

    return _interned(key, build, nodes=n)


def stream_ring(n: int) -> CompiledNetwork:
    """The cycle on ``n`` nodes, streamed straight to CSR."""
    return _stream_compiled(("ring-stream", n), n,
                            lambda: ring_edges(n))


def stream_grid(rows: int, cols: int) -> CompiledNetwork:
    """The rows x cols grid, streamed straight to CSR."""
    return _stream_compiled(("grid-stream", rows, cols), rows * cols,
                            lambda: grid_edges(rows, cols))


def stream_tree(depth: int) -> CompiledNetwork:
    """The complete binary tree, streamed straight to CSR."""
    n = 2 ** (depth + 1) - 1
    return _stream_compiled(("tree-stream", depth), n,
                            lambda: tree_edges(depth))


def stream_gnp(n: int, p: float, seed: int) -> CompiledNetwork:
    """G(n, p) via geometric skipping, streamed straight to CSR."""
    if not 0.0 <= p <= 1.0:
        raise NetworkError("edge probability must lie in [0, 1]")
    return _stream_compiled(("gnp-stream", n, p, seed), n,
                            lambda: gnp_edges(n, p, seed))


def stream_regular(n: int, degree: int, seed: int) -> CompiledNetwork:
    """A random regular graph (pairing model), streamed straight to CSR."""
    if n * degree % 2 != 0:
        raise NetworkError("n * degree must be even")
    if degree >= n:
        raise NetworkError("degree must be smaller than n")
    return _stream_compiled(("regular-stream", n, degree, seed), n,
                            lambda: regular_edges(n, degree, seed))


# ----------------------------------------------------------------------
# Seed colorings for scale workloads
# ----------------------------------------------------------------------
def greedy_seed_coloring(compiled: CompiledNetwork) -> array:
    """Sequential greedy coloring over dense ids -- O(n + m), <= Delta+1.

    The scale workloads need a proper input coloring without touching
    node objects or dicts; scanning nodes in dense order and taking the
    smallest color unused by lower-id neighbors gives one with at most
    ``max_degree + 1`` classes, returned as an ``array('q')``.
    """
    indptr = compiled.indptr
    indices = compiled.indices
    n = compiled.n
    colors = array(_ID_TYPECODE, bytes(8 * n)) if n else array(_ID_TYPECODE)
    for i in range(n):
        used = {
            colors[j]
            for j in indices[indptr[i]:indptr[i + 1]]
            if j < i
        }
        color = 0
        while color in used:
            color += 1
        colors[i] = color
    return colors


def inflated_seed_coloring(compiled: CompiledNetwork, q: int):
    """A proper q-coloring for scale runs: greedy classes blown up.

    Spreads the greedy seed classes over ``q`` colors by an interleaved
    blow-up (``color * factor + node mod factor``), preserving
    properness: adjacent nodes differ in the greedy class, hence in the
    inflated color.  Returns ``(colors_dict, q_used)`` where ``q_used =
    classes * factor <= q`` is the actual palette bound; requires ``q``
    at least the number of greedy classes.
    """
    seed = greedy_seed_coloring(compiled)
    classes = (max(seed) + 1) if len(seed) else 1
    if q < classes:
        raise NetworkError(
            f"palette q={q} smaller than the {classes} greedy classes"
        )
    factor = q // classes
    colors = {
        node: seed[i] * factor + (i % factor)
        for i, node in enumerate(compiled.order)
    }
    return colors, classes * factor


__all__ = [
    "csr_from_edges",
    "gnp_edges",
    "greedy_seed_coloring",
    "grid_edges",
    "inflated_seed_coloring",
    "regular_edges",
    "ring_edges",
    "stream_gnp",
    "stream_grid",
    "stream_regular",
    "stream_ring",
    "stream_tree",
    "tree_edges",
]
