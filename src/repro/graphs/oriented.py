"""Edge-oriented graphs and orientation constructors.

Oriented list defective coloring takes an *edge orientation* as part of
the input: every undirected edge carries a direction and a node's defect
budget is charged only by its *out*-neighbors.  Following the paper's
convention, ``beta(v)`` denotes the maximum of 1 and the outdegree of
``v``, and ``beta(G)`` is the maximum over all nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Mapping, Tuple

from ..sim.errors import NetworkError
from ..sim.network import Network

Node = Hashable


class OrientedGraph:
    """An undirected network plus a direction for each edge."""

    def __init__(self, network: Network,
                 out_neighbors: Mapping[Node, Iterable[Node]]):
        """``out_neighbors[v]`` must partition each edge consistently.

        For every undirected edge ``{u, v}`` exactly one of ``v in
        out_neighbors[u]`` / ``u in out_neighbors[v]`` must hold.
        """
        self.network = network
        outs: Dict[Node, Tuple[Node, ...]] = {}
        for node in network:
            declared = tuple(dict.fromkeys(out_neighbors.get(node, ())))
            for target in declared:
                if not network.has_edge(node, target):
                    raise NetworkError(
                        f"orientation uses non-edge {node!r}->{target!r}"
                    )
            outs[node] = declared
        out_sets = {node: frozenset(nbrs) for node, nbrs in outs.items()}
        for u, v in network.edges():
            u_to_v = v in out_sets[u]
            v_to_u = u in out_sets[v]
            if u_to_v == v_to_u:
                state = "both directions" if u_to_v else "no direction"
                raise NetworkError(f"edge {u!r}-{v!r} has {state}")
        self._out = outs
        self._out_sets = out_sets
        self._in: Dict[Node, Tuple[Node, ...]] = {node: () for node in network}
        incoming: Dict[Node, list] = {node: [] for node in network}
        for node, nbrs in outs.items():
            for target in nbrs:
                incoming[target].append(node)
        self._in = {node: tuple(nbrs) for node, nbrs in incoming.items()}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self.network.nodes

    def __len__(self) -> int:
        return len(self.network)

    def __contains__(self, node: Node) -> bool:
        return node in self.network

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        return self.network.neighbors(node)

    def out_neighbors(self, node: Node) -> Tuple[Node, ...]:
        return self._out[node]

    def in_neighbors(self, node: Node) -> Tuple[Node, ...]:
        return self._in[node]

    def points_to(self, u: Node, v: Node) -> bool:
        """True iff the edge ``{u, v}`` is oriented ``u -> v``."""
        return v in self._out_sets[u]

    def outdegree(self, node: Node) -> int:
        return len(self._out[node])

    def beta(self, node: Node) -> int:
        """``beta_v``: the outdegree of ``v``, floored at 1 (paper Sec. 2)."""
        return max(1, len(self._out[node]))

    def max_beta(self) -> int:
        """``beta(G) = max_v beta_v``."""
        return max((self.beta(node) for node in self.network), default=1)

    def max_outdegree(self) -> int:
        """The raw maximum outdegree (no floor)."""
        return max((len(self._out[node]) for node in self.network), default=0)

    def __repr__(self) -> str:
        return (
            f"OrientedGraph(n={len(self.network)}, "
            f"m={self.network.edge_count()}, beta={self.max_beta()})"
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "OrientedGraph":
        """Induced oriented subgraph on ``nodes``."""
        keep = set(nodes)
        sub_network = self.network.subgraph(keep)
        sub_out = {
            node: [u for u in self._out[node] if u in keep] for node in keep
        }
        return OrientedGraph(sub_network, sub_out)

    def without_edges(self, dropped: Iterable[Tuple[Node, Node]]
                      ) -> "OrientedGraph":
        """Copy with the given undirected edges removed (orientation kept)."""
        drop = {frozenset(edge) for edge in dropped}
        adjacency = {
            node: [
                u for u in self.network.neighbors(node)
                if frozenset((node, u)) not in drop
            ]
            for node in self.network
        }
        new_network = Network(adjacency)
        new_out = {
            node: [
                u for u in self._out[node]
                if frozenset((node, u)) not in drop
            ]
            for node in self.network
        }
        return OrientedGraph(new_network, new_out)


# ----------------------------------------------------------------------
# Orientation constructors
# ----------------------------------------------------------------------
def orient_by_key(network: Network,
                  key: Callable[[Node], object]) -> OrientedGraph:
    """Orient every edge from the larger to the smaller ``key`` value.

    With an injective key this yields an acyclic orientation -- the
    "towards the earlier node" orientation the paper's greedy arguments
    use.  Ties are broken by ``repr`` so the result is always a valid
    orientation.
    """
    def full_key(node: Node) -> Tuple[object, str]:
        return (key(node), repr(node))

    out = {
        node: [
            neighbor for neighbor in network.neighbors(node)
            if full_key(neighbor) < full_key(node)
        ]
        for node in network
    }
    return OrientedGraph(network, out)


def orient_by_id(network: Network) -> OrientedGraph:
    """Acyclic orientation from higher to lower node identifier."""
    return orient_by_key(network, lambda node: node)


def orient_by_coloring(network: Network,
                       coloring: Mapping[Node, int]) -> OrientedGraph:
    """Orient each edge towards the endpoint with the smaller color.

    Requires the coloring to be proper (adjacent nodes differ), which makes
    the orientation acyclic; a monochromatic edge raises
    :class:`~repro.sim.errors.NetworkError`.
    """
    for u, v in network.edges():
        if coloring[u] == coloring[v]:
            raise NetworkError(
                f"orient_by_coloring needs a proper coloring; edge "
                f"{u!r}-{v!r} is monochromatic"
            )
    return orient_by_key(network, lambda node: coloring[node])


def orient_random(network: Network, rng) -> OrientedGraph:
    """Orient each edge uniformly at random (``rng``: ``random.Random``)."""
    out: Dict[Node, list] = {node: [] for node in network}
    for u, v in network.edges():
        if rng.random() < 0.5:
            out[u].append(v)
        else:
            out[v].append(u)
    return OrientedGraph(network, out)


def orient_low_outdegree(network: Network) -> OrientedGraph:
    """A degeneracy orientation: outdegree at most the graph's degeneracy.

    Repeatedly removes a minimum-degree node and orients its remaining
    edges away from it.  For a ``d``-degenerate graph every node ends with
    outdegree at most ``d``.
    """
    import heapq

    remaining_degree = {node: network.degree(node) for node in network}
    heap = [(degree, repr(node), node) for node, degree in remaining_degree.items()]
    heapq.heapify(heap)
    removed = set()
    order = []
    while heap:
        _, __, node = heapq.heappop(heap)
        if node in removed:
            continue
        removed.add(node)
        order.append(node)
        for neighbor in network.neighbors(node):
            if neighbor not in removed:
                remaining_degree[neighbor] -= 1
                heapq.heappush(
                    heap,
                    (remaining_degree[neighbor], repr(neighbor), neighbor),
                )
    position = {node: index for index, node in enumerate(order)}
    out = {
        node: [
            neighbor for neighbor in network.neighbors(node)
            if position[neighbor] > position[node]
        ]
        for node in network
    }
    return OrientedGraph(network, out)


def orient_all_out(network: Network) -> "BidirectedView":
    """Treat *every* neighbor as an out-neighbor (``beta_v = deg(v)``).

    This is not a valid orientation of the edges, but several reductions
    (e.g. getting an *undirected* defective coloring out of Lemma 3.4)
    need the "defect counts all neighbors" view.  The returned object
    supports the same read interface as :class:`OrientedGraph`.
    """
    return BidirectedView(network)


class BidirectedView:
    """Read-only oriented-graph interface where every edge points both ways."""

    def __init__(self, network: Network):
        self.network = network

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self.network.nodes

    def __len__(self) -> int:
        return len(self.network)

    def __contains__(self, node: Node) -> bool:
        return node in self.network

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        return self.network.neighbors(node)

    def out_neighbors(self, node: Node) -> Tuple[Node, ...]:
        return self.network.neighbors(node)

    def in_neighbors(self, node: Node) -> Tuple[Node, ...]:
        return self.network.neighbors(node)

    def points_to(self, u: Node, v: Node) -> bool:
        return self.network.has_edge(u, v)

    def outdegree(self, node: Node) -> int:
        return self.network.degree(node)

    def beta(self, node: Node) -> int:
        return max(1, self.network.degree(node))

    def max_beta(self) -> int:
        return max((self.beta(node) for node in self.network), default=1)

    def max_outdegree(self) -> int:
        return max((self.outdegree(node) for node in self.network), default=0)

    def subgraph(self, nodes: Iterable[Node]) -> "BidirectedView":
        return BidirectedView(self.network.subgraph(nodes))

    def without_edges(self, dropped: Iterable[Tuple[Node, Node]]
                      ) -> "BidirectedView":
        """Copy with the given undirected edges removed.

        A bidirected "edge" appears once per direction in callers that
        enumerate ``(u, out_neighbor)`` pairs; dropping by the undirected
        key handles both.
        """
        drop = {frozenset(edge) for edge in dropped}
        adjacency = {
            node: [
                neighbor for neighbor in self.network.neighbors(node)
                if frozenset((node, neighbor)) not in drop
            ]
            for node in self.network
        }
        return BidirectedView(Network(adjacency))
