"""Contiguous CSR partitions for sharded single-graph execution.

The sharded engine (:mod:`repro.sim.sharded`) splits one compiled CSR
topology into ``k`` contiguous dense-id ranges and runs each range's
kernel columns in its own worker.  Contiguity is what makes the split
cheap and deterministic: a shard is fully described by two ints, shard
index order equals ascending node-id order (so merging per-shard
results in shard order reproduces the serial engine's global node
order byte-for-byte), and a node's owner is one ``bisect`` away.

Shards are balanced *by edges*, not by node count: per-round kernel
work is proportional to the CSR rows a shard touches, and on skewed
degree sequences an equal-node split can put almost all edges in one
shard.  The indptr array is exactly the edge-count prefix sum, so the
balanced cut points are ``k - 1`` binary searches -- no edge scan.

:func:`bfs_relabel` is a standalone, *opt-in* locality pass: a BFS
order tightens the CSR bandwidth so contiguous shards cut fewer edges.
It returns a relabeled copy and is never applied inside the engine --
relabeling changes node identities, which would break the byte-identity
contract with serial execution.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Sequence, Tuple

__all__ = [
    "Partition",
    "bfs_relabel",
    "partition_by_edges",
    "shard_boundaries",
]


class Partition:
    """``k`` contiguous shards over dense node ids ``0..n-1``.

    ``bounds`` has ``k + 1`` entries; shard ``s`` owns the half-open
    range ``[bounds[s], bounds[s + 1])``.  Empty shards are legal (more
    shards than nodes) and simply do nothing each round.
    """

    __slots__ = ("n", "bounds")

    def __init__(self, n: int, bounds: Sequence[int]):
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != n:
            raise ValueError("bounds must run from 0 to n")
        previous = 0
        for bound in bounds:
            if bound < previous:
                raise ValueError("bounds must be non-decreasing")
            previous = bound
        self.n = n
        self.bounds = tuple(bounds)

    @property
    def shards(self) -> int:
        return len(self.bounds) - 1

    def range_of(self, shard: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` dense-id range owned by ``shard``."""
        return self.bounds[shard], self.bounds[shard + 1]

    def owner_of(self, node: int) -> int:
        """The shard owning dense id ``node``."""
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} outside 0..{self.n - 1}")
        # bisect on the upper bounds: first shard whose hi exceeds node.
        return bisect_left(self.bounds, node + 1, 1) - 1

    def sizes(self) -> List[int]:
        bounds = self.bounds
        return [bounds[s + 1] - bounds[s] for s in range(self.shards)]

    def __repr__(self) -> str:
        return f"Partition(n={self.n}, bounds={list(self.bounds)})"


def partition_by_edges(indptr: Sequence[int], shards: int) -> Partition:
    """Split ``0..n-1`` into ``shards`` contiguous ranges of ~equal edges.

    ``indptr`` is the CSR row-pointer array (length ``n + 1``); its
    final entry is the total directed edge count ``nnz``.  Cut point
    ``s`` lands on the smallest node whose edge prefix reaches
    ``s * nnz / shards``, clamped so bounds stay non-decreasing.  Cost:
    ``O(shards * log n)``.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    n = len(indptr) - 1
    if n < 0:
        raise ValueError("indptr must have at least one entry")
    nnz = indptr[n]
    bounds = [0]
    for s in range(1, shards):
        if nnz:
            cut = bisect_left(indptr, (s * nnz) // shards, 0, n)
        else:
            cut = (s * n) // shards  # edgeless graph: balance by nodes
        bounds.append(min(n, max(bounds[-1], cut)))
    bounds.append(n)
    return Partition(n, bounds)


def shard_boundaries(indptr: Sequence[int], indices: Sequence[int],
                     partition: Partition, shard: int
                     ) -> Tuple[List[int], List[int], int]:
    """``(boundary, halo, cut_edges)`` of one shard, ids ascending.

    ``boundary`` lists the shard's own nodes with at least one neighbor
    owned by another shard -- the only nodes whose updates must be
    published each round.  ``halo`` lists the *foreign* nodes the shard
    reads (neighbors outside its range), and ``cut_edges`` counts the
    directed CSR entries crossing the range.  One pass over the shard's
    rows; no global state.
    """
    lo, hi = partition.range_of(shard)
    boundary: List[int] = []
    halo_set = set()
    cut = 0
    for i in range(lo, hi):
        external = False
        for k in range(indptr[i], indptr[i + 1]):
            j = indices[k]
            if j < lo or j >= hi:
                external = True
                cut += 1
                halo_set.add(j)
        if external:
            boundary.append(i)
    return boundary, sorted(halo_set), cut


def bfs_relabel(indptr: Sequence[int], indices: Sequence[int]
                ) -> List[int]:
    """A bandwidth-reducing BFS permutation: ``perm[old_id] = new_id``.

    Breadth-first order from the lowest-id node of each component keeps
    neighbors close in the new numbering, so contiguous edge-balanced
    shards of the *relabeled* CSR cut fewer edges.  Apply it before
    compiling a topology whose natural order scatters neighborhoods
    (e.g. a shuffled edge list); never inside a run -- relabeling
    changes node identities.
    """
    n = len(indptr) - 1
    perm = [-1] * n
    counter = 0
    for root in range(n):
        if perm[root] >= 0:
            continue
        perm[root] = counter
        counter += 1
        queue = [root]
        head = 0
        while head < len(queue):
            i = queue[head]
            head += 1
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if perm[j] < 0:
                    perm[j] = counter
                    counter += 1
                    queue.append(j)
    return perm
