"""Bounded-rank hypergraphs.

The paper's flagship family of bounded neighborhood independence graphs is
the family of *line graphs of bounded-rank hypergraphs*: in the line graph
of a rank-``r`` hypergraph, the neighborhood independence is at most ``r``.
This module provides the hypergraph side; :mod:`repro.graphs.line_graphs`
turns them into networks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from ..sim.errors import NetworkError


@dataclass(frozen=True)
class Hypergraph:
    """A hypergraph given by its vertex count and hyperedge list.

    Vertices are ``0 .. n_vertices - 1``; every hyperedge is a frozenset of
    at least two vertices.  ``rank`` is the maximum hyperedge size.
    """

    n_vertices: int
    edges: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        for edge in self.edges:
            if len(edge) < 2:
                raise NetworkError("hyperedges need at least two vertices")
            if any(v < 0 or v >= self.n_vertices for v in edge):
                raise NetworkError("hyperedge references unknown vertex")
        if len(set(self.edges)) != len(self.edges):
            raise NetworkError("duplicate hyperedges are not allowed")

    @property
    def rank(self) -> int:
        """Maximum hyperedge size (0 for an edgeless hypergraph)."""
        return max((len(edge) for edge in self.edges), default=0)

    def vertex_degree(self, vertex: int) -> int:
        """Number of hyperedges containing ``vertex``."""
        return sum(1 for edge in self.edges if vertex in edge)

    def max_vertex_degree(self) -> int:
        return max(
            (self.vertex_degree(v) for v in range(self.n_vertices)), default=0
        )


def graph_as_hypergraph(edges: Sequence[Tuple[int, int]],
                        n_vertices: int) -> Hypergraph:
    """Interpret an ordinary graph as a rank-2 hypergraph."""
    return Hypergraph(
        n_vertices, tuple(frozenset(edge) for edge in edges)
    )


def random_hypergraph(n_vertices: int, n_edges: int, rank: int,
                      seed: int) -> Hypergraph:
    """A random hypergraph with hyperedges of size 2..rank.

    Each hyperedge picks a uniform size in ``[2, rank]`` and a uniform
    vertex subset of that size; duplicates are rejected and resampled.
    """
    if rank < 2:
        raise NetworkError("rank must be at least 2")
    if n_vertices < rank:
        raise NetworkError("need at least `rank` vertices")
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < n_edges and attempts < 100 * n_edges + 100:
        attempts += 1
        size = rng.randint(2, rank)
        edge = frozenset(rng.sample(range(n_vertices), size))
        edges.add(edge)
    if len(edges) < n_edges:
        raise NetworkError("could not sample enough distinct hyperedges")
    return Hypergraph(n_vertices, tuple(sorted(edges, key=sorted)))


def random_uniform_hypergraph(n_vertices: int, n_edges: int, rank: int,
                              seed: int) -> Hypergraph:
    """A random ``rank``-uniform hypergraph (every hyperedge has size rank)."""
    if rank < 2:
        raise NetworkError("rank must be at least 2")
    if n_vertices < rank:
        raise NetworkError("need at least `rank` vertices")
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < n_edges and attempts < 100 * n_edges + 100:
        attempts += 1
        edges.add(frozenset(rng.sample(range(n_vertices), rank)))
    if len(edges) < n_edges:
        raise NetworkError("could not sample enough distinct hyperedges")
    return Hypergraph(n_vertices, tuple(sorted(edges, key=sorted)))


def complete_uniform_hypergraph(n_vertices: int, rank: int) -> Hypergraph:
    """All ``rank``-subsets of the vertex set as hyperedges."""
    edges = tuple(
        frozenset(combo)
        for combo in itertools.combinations(range(n_vertices), rank)
    )
    return Hypergraph(n_vertices, edges)


def partitioned_hypergraph(groups: int, group_size: int,
                           rank: int, seed: int) -> Hypergraph:
    """Hyperedges drawn inside vertex groups -- gives blocky line graphs."""
    rng = random.Random(seed)
    n_vertices = groups * group_size
    edges: List[FrozenSet[int]] = []
    seen = set()
    per_group = max(1, group_size)
    for g in range(groups):
        base = g * group_size
        members = list(range(base, base + group_size))
        for _ in range(per_group):
            size = rng.randint(2, min(rank, group_size))
            edge = frozenset(rng.sample(members, size))
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
    return Hypergraph(n_vertices, tuple(edges))
