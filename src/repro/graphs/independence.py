"""Neighborhood independence computation.

The neighborhood independence ``theta(G)`` is the maximum size of an
independent set inside a single one-hop neighborhood ``G[N(v)]``
(Section 2 of the paper).  Exact computation is exponential in the
neighborhood size, so we provide the exact routine for the small
neighborhoods used in tests plus a fast greedy *lower* bound and a
clique-cover *upper* bound for larger experiment graphs.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from ..sim.network import Network

Node = Hashable


def _independence_number_exact(network: Network,
                               vertices: Sequence[Node]) -> int:
    """Exact maximum independent set size of the induced subgraph.

    Branch and bound on (vertex in / vertex out); fine for the <= ~25
    vertex neighborhoods used in tests.
    """
    vertices = list(vertices)
    neighbor_sets = {
        v: network.neighbor_set(v) & set(vertices) for v in vertices
    }

    best = 0

    def branch(candidates: List[Node], size: int) -> None:
        nonlocal best
        if size + len(candidates) <= best:
            return
        if not candidates:
            if size > best:
                best = size
            return
        # Pick the highest-degree candidate to branch on for fast pruning.
        pivot = max(candidates, key=lambda v: len(neighbor_sets[v]))
        rest = [v for v in candidates if v != pivot]
        # Branch 1: include pivot.
        branch([v for v in rest if v not in neighbor_sets[pivot]], size + 1)
        # Branch 2: exclude pivot.
        branch(rest, size)

    branch(vertices, 0)
    return best


def _greedy_independent_set(network: Network,
                            vertices: Sequence[Node]) -> int:
    """Greedy (minimum-degree-first) independent set size: a lower bound."""
    vertex_set = set(vertices)
    neighbor_sets = {
        v: network.neighbor_set(v) & vertex_set for v in vertices
    }
    remaining = set(vertices)
    count = 0
    while remaining:
        v = min(
            remaining,
            key=lambda u: (len(neighbor_sets[u] & remaining), repr(u)),
        )
        count += 1
        remaining.discard(v)
        remaining -= neighbor_sets[v]
    return count


def neighborhood_independence(network: Network, exact: bool = True) -> int:
    """``theta(G)``; exact by default, greedy lower bound otherwise.

    Graphs without edges have ``theta = 0`` by convention (no neighborhood
    contains any vertex); the paper's algorithms treat ``theta >= 1``.
    """
    best = 0
    for node in network:
        neighbors = network.neighbors(node)
        if not neighbors:
            continue
        if exact:
            value = _independence_number_exact(network, neighbors)
        else:
            value = _greedy_independent_set(network, neighbors)
        if value > best:
            best = value
    return best


def neighborhood_independence_at(network: Network, node: Node,
                                 exact: bool = True) -> int:
    """Independence number of the single neighborhood ``G[N(node)]``."""
    neighbors = network.neighbors(node)
    if not neighbors:
        return 0
    if exact:
        return _independence_number_exact(network, neighbors)
    return _greedy_independent_set(network, neighbors)


def verify_independence_bound(network: Network, theta: int) -> bool:
    """Check (exactly) that every neighborhood has independence <= theta."""
    return neighborhood_independence(network, exact=True) <= theta


def _greedy_clique_cover(network: Network, vertices: Sequence[Node]) -> int:
    """Greedy clique cover size of the induced subgraph.

    Any independent set hits each clique at most once, so the cover size
    is an *upper* bound on the independence number.
    """
    vertex_set = set(vertices)
    neighbor_sets = {
        v: network.neighbor_set(v) & vertex_set for v in vertices
    }
    cliques: List[List[Node]] = []
    for v in sorted(vertices, key=lambda u: (-len(neighbor_sets[u]), repr(u))):
        for clique in cliques:
            if all(member in neighbor_sets[v] for member in clique):
                clique.append(v)
                break
        else:
            cliques.append([v])
    return len(cliques)


def neighborhood_independence_upper(network: Network) -> int:
    """A cheap certified *upper* bound on ``theta(G)``.

    Uses a greedy clique cover of every neighborhood -- safe to feed to
    the Theorem 1.4/1.5 algorithms (their guarantees need a true upper
    bound; a lower-bound estimate would silently void Claim 4.1).
    """
    best = 0
    for node in network:
        neighbors = network.neighbors(node)
        if not neighbors:
            continue
        best = max(best, _greedy_clique_cover(network, neighbors))
    return best


def safe_theta(network: Network, exact_threshold: int = 20) -> int:
    """The exact theta when neighborhoods are small, else the certified
    upper bound -- always valid as the ``theta`` parameter of the
    bounded-neighborhood-independence algorithms."""
    if network.raw_max_degree() <= exact_threshold:
        return neighborhood_independence(network, exact=True)
    return neighborhood_independence_upper(network)
