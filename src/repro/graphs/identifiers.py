"""Unique identifier assignment.

The model equips every node with a unique O(log n)-bit identifier; several
algorithms (Linial's coloring in particular) bootstrap from the IDs viewed
as an initial coloring with ``q = id-space size`` colors.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable

from ..sim.network import Network

Node = Hashable


def sequential_ids(network: Network) -> Dict[Node, int]:
    """IDs ``0 .. n-1`` in deterministic node order."""
    return {node: index for index, node in enumerate(network.nodes)}


def random_ids(network: Network, seed: int, bits: int = 0) -> Dict[Node, int]:
    """Unique random IDs from a space of size ``max(n, 2**bits)``.

    With ``bits = 0`` the space defaults to ``n**2`` (still O(log n) bits),
    mimicking sparse real-world identifier spaces.
    """
    n = len(network)
    space = max(n, 2 ** bits) if bits else max(n * n, n)
    rng = random.Random(seed)
    values = rng.sample(range(space), n)
    return {node: value for node, value in zip(network.nodes, values)}


def ids_as_coloring(ids: Dict[Node, int]) -> Dict[Node, int]:
    """View identifiers as a proper coloring with colors ``1..q``.

    Identifiers are unique, so shifting them into ``1..q`` gives a trivially
    proper coloring -- the standard bootstrap for Linial's algorithm.
    """
    return {node: value + 1 for node, value in ids.items()}


def id_space_size(ids: Dict[Node, int]) -> int:
    """The size ``q`` of the coloring induced by these identifiers."""
    return max(ids.values()) + 1 if ids else 1
