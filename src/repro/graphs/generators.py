"""Graph generators used by tests, examples and benchmarks.

All generators return :class:`~repro.sim.network.Network` instances with
integer node identifiers ``0 .. n-1`` (the unique O(log n)-bit IDs of the
model).  Randomized generators take an explicit seed so every experiment
is reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Tuple

from ..sim.errors import NetworkError
from ..sim.network import Network

#: The interned-network registry stays tiny: entries are whole networks
#: (with their compiled CSR topologies attached by ``Network.compile``),
#: not scalar derivations.
_NETWORK_REGISTRY_LIMIT = 64

#: Topologies above this many nodes are never interned.  The registry is
#: bounded by *entry count* (64), not bytes, and it rides along in the
#: substrate-cache snapshot shipped to every pool worker -- a handful of
#: million-node graphs would pin gigabytes in the parent and again in
#: each worker.  Above the gate, callers get a fresh build (scale work
#: shares topologies through ``repro.sim.shm`` instead).
INTERN_NODE_LIMIT = 1 << 16


def _interned(key: Tuple, build, nodes: int = 0):
    """Memoize deterministic generators in the substrate cache.

    Benchmark sweeps call the same generator with the same arguments for
    every parameter point (E2 builds one 60-node graph per cell; trial
    runners rebuild the topology per seed), then pay ``Network.compile``
    again on each fresh copy.  Interning returns one shared instance per
    argument tuple, so the compiled topology is built once per process --
    and, because the registry rides along in the substrate-cache snapshot
    shipped to pool workers, once per *worker* instead of once per trial.

    Networks are immutable by repository convention (adjacency is fixed
    at construction; ``compile()`` only attaches a cache), which is what
    makes sharing safe.  ``REPRO_SIM_CACHE=0`` disables interning along
    with every other process-level memo, and topologies larger than
    :data:`INTERN_NODE_LIMIT` nodes (``nodes`` is the caller's estimate)
    bypass the registry entirely so it cannot pin gigabytes.
    """
    if nodes > INTERN_NODE_LIMIT:
        return build()
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return build()
    if not substrate_cache.cache_enabled():
        return build()
    table = substrate_cache.registry(
        "networks", limit=_NETWORK_REGISTRY_LIMIT
    )
    network = table.get(key)
    substrate_cache.record_lookup("networks", network is not None)
    if network is None:
        network = table[key] = build()
    return network


def empty_graph(n: int) -> Network:
    """``n`` isolated nodes."""
    return Network({node: [] for node in range(n)})


def path_graph(n: int) -> Network:
    """A path on ``n`` nodes."""
    return Network.from_edges(range(n), [(i, i + 1) for i in range(n - 1)])


def ring_graph(n: int) -> Network:
    """A cycle on ``n >= 3`` nodes -- Linial's lower-bound topology."""
    if n < 3:
        raise NetworkError("a ring needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Network.from_edges(range(n), edges)


def complete_graph(n: int) -> Network:
    """The clique K_n."""
    return _interned(("complete", n), lambda: Network.from_edges(
        range(n), itertools.combinations(range(n), 2)
    ), nodes=n)


def complete_bipartite_graph(a: int, b: int) -> Network:
    """K_{a,b} with left part ``0..a-1`` and right part ``a..a+b-1``."""
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Network.from_edges(range(a + b), edges)


def star_graph(leaves: int) -> Network:
    """A star: center 0 joined to ``leaves`` leaves."""
    return _interned(("star", leaves), lambda: Network.from_edges(
        range(leaves + 1), [(0, i) for i in range(1, leaves + 1)]
    ), nodes=leaves + 1)


def grid_graph(rows: int, cols: int) -> Network:
    """The rows x cols grid with 4-neighbor adjacency."""
    def node_id(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node_id(r, c), node_id(r, c + 1)))
            if r + 1 < rows:
                edges.append((node_id(r, c), node_id(r + 1, c)))
    return Network.from_edges(range(rows * cols), edges)


def binary_tree(depth: int) -> Network:
    """A complete binary tree of the given depth (depth 0 = single node)."""
    def build() -> Network:
        n = 2 ** (depth + 1) - 1
        edges = []
        for i in range(1, n):
            edges.append((i, (i - 1) // 2))
        return Network.from_edges(range(n), edges)

    return _interned(("binary_tree", depth), build,
                     nodes=2 ** (depth + 1) - 1)


def gnp_graph(n: int, p: float, seed: int) -> Network:
    """Erdos-Renyi G(n, p) with a fixed seed."""
    if not 0.0 <= p <= 1.0:
        raise NetworkError("edge probability must lie in [0, 1]")

    def build() -> Network:
        rng = random.Random(seed)
        edges = [
            (u, v)
            for u, v in itertools.combinations(range(n), 2)
            if rng.random() < p
        ]
        return Network.from_edges(range(n), edges)

    return _interned(("gnp", n, p, seed), build, nodes=n)


def random_regular_graph(n: int, degree: int, seed: int) -> Network:
    """A random ``degree``-regular simple graph (networkx pairing model)."""
    if n * degree % 2 != 0:
        raise NetworkError("n * degree must be even")
    if degree >= n:
        raise NetworkError("degree must be smaller than n")
    import networkx

    graph = networkx.random_regular_graph(degree, n, seed=seed)
    return Network.from_edges(range(n), graph.edges())


def random_bounded_degree_graph(n: int, max_degree: int, seed: int,
                                edge_factor: float = 1.0) -> Network:
    """A random simple graph whose maximum degree stays below a cap.

    Samples ``edge_factor * n * max_degree / 2`` candidate edges and keeps
    those that do not push an endpoint past ``max_degree``.
    """
    def build() -> Network:
        rng = random.Random(seed)
        degree: Dict[int, int] = {node: 0 for node in range(n)}
        edges = set()
        target = int(edge_factor * n * max_degree / 2)
        attempts = 0
        while len(edges) < target and attempts < 20 * target + 100:
            attempts += 1
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            key = frozenset((u, v))
            if key in edges:
                continue
            if degree[u] >= max_degree or degree[v] >= max_degree:
                continue
            edges.add(key)
            degree[u] += 1
            degree[v] += 1
        return Network.from_edges(
            range(n), [tuple(sorted(edge)) for edge in edges]
        )

    return _interned(
        ("bounded_degree", n, max_degree, seed, edge_factor), build,
        nodes=n,
    )


def disjoint_cliques(count: int, size: int) -> Network:
    """``count`` disjoint cliques of the given size."""
    edges = []
    for block in range(count):
        base = block * size
        edges.extend(
            (base + i, base + j)
            for i, j in itertools.combinations(range(size), 2)
        )
    return Network.from_edges(range(count * size), edges)


def blow_up(network: Network, factor: int) -> Network:
    """Replace each node by ``factor`` copies; copies of adjacent nodes are
    fully joined, copies of the same node are independent.

    Blow-ups multiply the maximum degree by ``factor`` while multiplying the
    neighborhood independence by at most ``factor`` -- a handy family for
    stress-testing the bounded-theta algorithms.
    """
    nodes = list(network.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    new_nodes = range(len(nodes) * factor)
    edges = []
    for u, v in network.edges():
        for a in range(factor):
            for b in range(factor):
                edges.append((index[u] * factor + a, index[v] * factor + b))
    return Network.from_edges(new_nodes, edges)
