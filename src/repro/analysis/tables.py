"""ASCII table rendering for benchmark and example output.

Every benchmark in :mod:`benchmarks` prints its results as a table of
measured quantities next to the paper's theoretical bound, in the spirit
of an evaluation-section table.  Keeping the renderer here means all of
them share one format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_value(value: Any) -> str:
    """Render one table cell (floats trimmed, None/NaN as a dash)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in text_rows))
        if text_rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    ))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)


def render_records(records: Sequence[Dict[str, Any]],
                   columns: Sequence[str],
                   title: str = "") -> str:
    """Render a list of dict records, selecting and ordering columns."""
    rows = [[record.get(column) for column in columns] for record in records]
    return render_table(columns, rows, title=title)
