"""The Theorem 1.5 vs Theorem 1.3 crossover in theta.

The paper: "in terms of (Delta+1)-coloring in CONGEST, this result can
beat the O(sqrt(Delta) polylog Delta + log* n) state-of-the-art of
[FK23a] or Theorem 1.3 for certain values of theta.  If
theta = O~(Delta^{1/8}) we get such a round complexity and if
theta = O~(Delta^{1/8 - eps}) ... we even perform better."

Simulation cannot reach the scales where the asymptotics separate
(EXPERIMENTS.md E8), so this module evaluates the two round models and
locates the crossover *analytically* -- reproducing the Delta^{1/8}
claim as a computation instead of a plot.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .rounds import theorem_13_rounds, theorem_15_rounds


def theorem_15_beats_13(max_degree: int, theta: int,
                        n: Optional[int] = None) -> bool:
    """Does the Theorem 1.5 model undercut the Theorem 1.3 model here?"""
    if n is None:
        n = 4 * max_degree
    return theorem_15_rounds(max_degree, theta, n) < theorem_13_rounds(
        max_degree, n
    )


def crossover_theta(max_degree: int, n: Optional[int] = None) -> int:
    """The largest theta for which Theorem 1.5's model still wins.

    Returns 0 when it never wins at this degree (small Delta: the
    polylog^{loglog} factor has not amortized yet).
    """
    if n is None:
        n = 4 * max_degree
    if not theorem_15_beats_13(max_degree, 1, n):
        return 0
    # The Theorem 1.5 model is monotone increasing in theta, so the set
    # of winning thetas is a prefix: exponential + binary search.
    low = 1
    high = 2
    while high <= max_degree and theorem_15_beats_13(max_degree, high, n):
        low = high
        high *= 2
    high = min(high, max_degree + 1)
    while low + 1 < high:
        mid = (low + high) // 2
        if theorem_15_beats_13(max_degree, mid, n):
            low = mid
        else:
            high = mid
    return low


def crossover_exponent(max_degree: int, n: Optional[int] = None
                       ) -> Optional[float]:
    """``log_Delta(crossover theta)``: the paper predicts ~1/8.

    ``None`` when Theorem 1.5 never wins at this degree.
    """
    theta_star = crossover_theta(max_degree, n)
    if theta_star < 1:
        return None
    if theta_star == 1:
        return 0.0
    return math.log(theta_star) / math.log(max_degree)


def crossover_table(degrees: List[int]) -> List[Tuple[int, int, float]]:
    """(Delta, crossover theta, exponent) rows for a degree sweep."""
    rows = []
    for delta in degrees:
        theta_star = crossover_theta(delta)
        exponent = crossover_exponent(delta)
        rows.append((delta, theta_star, exponent))
    return rows
