"""Closed-form round bounds from the paper, printed next to measurements.

Each function evaluates one theorem's round (or resource) bound with the
constants our implementation realizes, so the benchmark tables can show a
"paper bound" column that is an actual number rather than O-notation.
"""

from __future__ import annotations

import math

from ..substrates.log_star import log_star


def theorem_11_rounds(q: int, p: int, epsilon: float) -> float:
    """Theorem 1.1: ``min{q, (p/eps)^2 + log* q}`` (2q+1 measured for eps=0)."""
    if epsilon <= 0.0:
        return float(q)
    return min(float(q), (p / epsilon) ** 2 + log_star(q))


def theorem_12_rounds(color_space: int, q: int) -> float:
    """Theorem 1.2: O(log^3 C + log* q); evaluated with constant 1."""
    log_c = math.log2(max(2, color_space))
    return log_c ** 3 + log_star(q)


def theorem_13_rounds(max_degree: int, n: int) -> float:
    """Theorem 1.3: O(sqrt(Delta) * log^4 Delta + log* n) (paper's claim)."""
    delta = max(2, max_degree)
    return math.sqrt(delta) * math.log2(delta) ** 4 + log_star(n)


def substituted_13_rounds(max_degree: int, n: int) -> float:
    """Our substituted framework: O(Delta * log^4 Delta + log* n).

    The [FK23a, Thm 4] black box is replaced by Lemma A.1 (DESIGN.md
    substitution 2), which costs a factor ~sqrt(Delta) more.
    """
    delta = max(2, max_degree)
    return delta * math.log2(delta) ** 4 + log_star(n)


def theorem_15_rounds(max_degree: int, theta: int, n: int) -> float:
    """Theorem 1.5: min{(theta log Delta)^O(loglog Delta),
    theta^2 Delta^{1/4} log^8 Delta} + log* n, constants set to 1."""
    delta = max(4, max_degree)
    log_d = math.log2(delta)
    loglog_d = max(1.0, math.log2(log_d))
    quasi = (max(1, theta) * log_d) ** loglog_d
    poly = theta * theta * delta ** 0.25 * log_d ** 8
    return min(quasi, poly) + log_star(n)


def theorem_14_round_factor(max_degree: int) -> int:
    """Theorem 1.4: the number of P_A invocations, ``ceil(log Delta) + 1``."""
    return math.ceil(math.log2(max(2, max_degree))) + 1


def lemma_44_factor(mu: float) -> float:
    """Lemma 4.4: the O(mu^2) sequential class factor."""
    return mu * mu


def lemma_a1_factor(mu: float, max_degree: int) -> float:
    """Lemma A.1: the O(mu^2 log Delta) sequential factor."""
    return mu * mu * math.log2(max(2, max_degree))


def defective_3coloring_threshold(max_degree: int) -> float:
    """Section 1.1: list d-defective 3-coloring needs ``d > (2 Delta - 3)/3``."""
    return (2.0 * max_degree - 3.0) / 3.0
